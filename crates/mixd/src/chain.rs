//! A mix chain driven over [`Mixer`] handles, with cross-round pipelining.
//!
//! [`RemoteMixChain`] mirrors the in-process
//! [`MixChain`](alpenhorn_mixnet::MixChain) API — begin, run, end — over a
//! row of [`Mixer`]s, each of which may be a loopback daemon or a TCP
//! connection to a `mixd` process. Because every mix server derives its
//! round bytes from (seed, round id), the remote chain's output for a given
//! round is byte-identical to the in-process chain's, regardless of
//! transport, retries, or pipelining depth.
//!
//! The pipelining is the point of distribution: with N machines, mixer k
//! can peel round r while mixer k+1 is still noising round r−1. [`mix_rounds`]
//! runs one stage thread per mixer connected by bounded channels, so up to
//! `pipeline_depth` rounds are in flight between adjacent stages and the
//! chain's throughput approaches one round per slowest-stage interval
//! instead of one round per whole-chain traversal.
//!
//! [`mix_rounds`]: RemoteMixChain::mix_rounds

use std::sync::mpsc;
use std::time::Instant;

use alpenhorn_ibe::dh::DhPublic;
use alpenhorn_mixnet::{AddFriendMailboxes, DialingMailboxes, NoiseConfig, RoundStats};
use alpenhorn_obs::SpanGuard;
use alpenhorn_wire::{Round, RoundKind};

use crate::error::MixdError;
use crate::mixer::{LoopbackMixer, Mixer};

/// Chain-driving phase timing, recorded from the coordinator's side of the
/// mixer boundary (the daemons time their own side under `mixd_*`).
fn phase_histogram(
    protocol: RoundKind,
    phase: &'static str,
) -> std::sync::Arc<alpenhorn_obs::Histogram> {
    alpenhorn_obs::global().histogram(
        "coordinator_mix_phase_us",
        &[("protocol", protocol.label()), ("phase", phase)],
    )
}

/// One round's result from [`RemoteMixChain::mix_rounds`]: the fully mixed
/// batch plus the same [`RoundStats`] the in-process chain would report.
pub type MixRoundOutput = (Vec<Vec<u8>>, RoundStats);

/// One round's worth of work for [`RemoteMixChain::mix_rounds`].
pub struct MixRoundInput {
    /// The round id (must already be open on every mixer).
    pub round: Round,
    /// The client onion batch.
    pub batch: Vec<Vec<u8>>,
    /// Mailbox count for noise generation.
    pub num_mailboxes: u32,
    /// The chain's onion keys for this round, in chain order — what
    /// [`RemoteMixChain::begin_round`] returned.
    pub publics: Vec<DhPublic>,
}

/// A chain of mix servers driven through [`Mixer`] handles.
///
/// One instance drives one protocol's chain (add-friend or dialing); the
/// coordinator holds one per protocol, exactly as it holds two in-process
/// `MixChain`s. Rounds are auto-numbered from 0 in begin order, matching
/// the in-process chain's implicit numbering, so the two deployments open
/// identical (protocol, round) pairs and therefore produce identical bytes.
pub struct RemoteMixChain {
    protocol: RoundKind,
    mixers: Vec<Box<dyn Mixer>>,
    noise: NoiseConfig,
    next_auto_round: u64,
    current_round: Option<u64>,
    pipeline_depth: usize,
}

impl RemoteMixChain {
    /// Default bound on rounds in flight between adjacent pipeline stages.
    pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

    /// Creates a chain over the given mixer handles, in chain order.
    /// Panics if `mixers` is empty, matching the in-process chain.
    pub fn new(protocol: RoundKind, mixers: Vec<Box<dyn Mixer>>, noise: NoiseConfig) -> Self {
        assert!(
            !mixers.is_empty(),
            "a mixnet chain needs at least one server"
        );
        RemoteMixChain {
            protocol,
            mixers,
            noise,
            next_auto_round: 0,
            current_round: None,
            pipeline_depth: Self::DEFAULT_PIPELINE_DEPTH,
        }
    }

    /// Creates an `n`-mixer loopback chain: in-process daemons, full wire
    /// codec, no sockets. Byte-equivalent to
    /// `MixChain::new(n, noise, chain_seed(cluster_seed, protocol))`.
    pub fn loopback(
        protocol: RoundKind,
        n: usize,
        noise: NoiseConfig,
        cluster_seed: [u8; 32],
    ) -> Self {
        let mixers = (0..n)
            .map(|i| Box::new(LoopbackMixer::for_position(cluster_seed, i)) as Box<dyn Mixer>)
            .collect();
        Self::new(protocol, mixers, noise)
    }

    /// The protocol this chain mixes.
    pub fn protocol(&self) -> RoundKind {
        self.protocol
    }

    /// Number of mixers in the chain.
    pub fn len(&self) -> usize {
        self.mixers.len()
    }

    /// Whether the chain is empty (never true; chains have at least one mixer).
    pub fn is_empty(&self) -> bool {
        self.mixers.is_empty()
    }

    /// The noise configuration in use.
    pub fn noise(&self) -> &NoiseConfig {
        &self.noise
    }

    /// Bounds how many rounds may be in flight between adjacent pipeline
    /// stages in [`mix_rounds`](Self::mix_rounds). Clamped to at least 1.
    /// Depth changes scheduling only, never bytes.
    pub fn set_pipeline_depth(&mut self, depth: usize) {
        self.pipeline_depth = depth.max(1);
    }

    /// Severs mixer `index`'s transport (the scenario engine's mixer-crash
    /// lever). The next call to that mixer reconnects and, because rounds
    /// replay byte-identically, recovery is invisible in the output.
    pub fn disconnect_mixer(&mut self, index: usize) {
        self.mixers[index].disconnect();
    }

    /// Opens the next auto-numbered round on every mixer and returns the
    /// onion public keys in chain order.
    pub fn begin_round(&mut self) -> Result<Vec<DhPublic>, MixdError> {
        let round = self.next_auto_round;
        self.next_auto_round += 1;
        self.current_round = Some(round);
        self.begin_round_for(Round(round))
    }

    /// Opens an explicit round id on every mixer. Idempotent: re-begin after
    /// a failure returns the identical keys.
    pub fn begin_round_for(&mut self, round: Round) -> Result<Vec<DhPublic>, MixdError> {
        let protocol = self.protocol;
        let _span = SpanGuard::begin(
            "coordinator",
            "mix_begin",
            alpenhorn_obs::correlation_id(protocol.code(), round.0),
        );
        let started = Instant::now();
        let keys = self
            .mixers
            .iter_mut()
            .map(|m| m.begin_round(protocol, round))
            .collect();
        phase_histogram(protocol, "begin").observe_since(started);
        keys
    }

    /// Ends the current auto-numbered round on every mixer.
    pub fn end_round(&mut self) -> Result<(), MixdError> {
        match self.current_round.take() {
            Some(round) => self.end_round_for(Round(round)),
            None => Ok(()),
        }
    }

    /// Ends an explicit round id on every mixer (idempotent).
    pub fn end_round_for(&mut self, round: Round) -> Result<(), MixdError> {
        let protocol = self.protocol;
        let _span = SpanGuard::begin(
            "coordinator",
            "mix_end",
            alpenhorn_obs::correlation_id(protocol.code(), round.0),
        );
        let started = Instant::now();
        for mixer in &mut self.mixers {
            mixer.end_round(protocol, round)?;
        }
        phase_histogram(protocol, "end").observe_since(started);
        Ok(())
    }

    /// Runs a complete add-friend round against the current round's keys and
    /// builds the add-friend mailboxes, mirroring
    /// [`MixChain::run_add_friend_round`](alpenhorn_mixnet::MixChain::run_add_friend_round).
    pub fn run_add_friend_round(
        &mut self,
        batch: Vec<Vec<u8>>,
        num_mailboxes: u32,
        publics: &[DhPublic],
    ) -> Result<(AddFriendMailboxes, RoundStats), MixdError> {
        let (finals, stats) = self.mix_current(batch, num_mailboxes, publics)?;
        Ok((
            AddFriendMailboxes::from_batch(&finals, num_mailboxes),
            stats,
        ))
    }

    /// Runs a complete dialing round against the current round's keys and
    /// builds the Bloom-filter mailboxes.
    pub fn run_dialing_round(
        &mut self,
        batch: Vec<Vec<u8>>,
        num_mailboxes: u32,
        publics: &[DhPublic],
    ) -> Result<(DialingMailboxes, RoundStats), MixdError> {
        let (finals, stats) = self.mix_current(batch, num_mailboxes, publics)?;
        Ok((DialingMailboxes::from_batch(&finals, num_mailboxes), stats))
    }

    fn mix_current(
        &mut self,
        batch: Vec<Vec<u8>>,
        num_mailboxes: u32,
        publics: &[DhPublic],
    ) -> Result<(Vec<Vec<u8>>, RoundStats), MixdError> {
        let round = self
            .current_round
            .expect("process called without begin_round");
        let mut out = self.mix_rounds(vec![MixRoundInput {
            round: Round(round),
            batch,
            num_mailboxes,
            publics: publics.to_vec(),
        }])?;
        Ok(out.pop().expect("one input yields one output"))
    }

    /// Pushes several rounds' batches through the chain concurrently: one
    /// stage thread per mixer, bounded channels between stages, so mixer k
    /// works on round r while mixer k+1 works on round r−1. Every round must
    /// already be open ([`begin_round_for`](Self::begin_round_for)) on every
    /// mixer. Results come back in input order, each with the same
    /// [`RoundStats`] the in-process chain would report.
    ///
    /// On any terminal mixer failure the whole call fails; because rounds
    /// replay byte-identically, the caller may simply call again with the
    /// same inputs.
    pub fn mix_rounds(
        &mut self,
        inputs: Vec<MixRoundInput>,
    ) -> Result<Vec<MixRoundOutput>, MixdError> {
        let rounds = inputs.len();
        if rounds == 0 {
            return Ok(Vec::new());
        }
        let protocol = self.protocol;
        let noise = self.noise;
        let depth = self.pipeline_depth.max(1);
        let stages = self.mixers.len();

        // One coordinator-side span per round in the call, all covering the
        // pipelined traversal (per-daemon timing lives in the mixd spans).
        let _round_spans: Vec<SpanGuard> = inputs
            .iter()
            .map(|input| {
                SpanGuard::begin(
                    "coordinator",
                    "mix_process",
                    alpenhorn_obs::correlation_id(protocol.code(), input.round.0),
                )
            })
            .collect();
        let process_started = Instant::now();
        let stall_histogram = alpenhorn_obs::global().histogram(
            "coordinator_mix_pipeline_stall_us",
            &[("protocol", protocol.label())],
        );

        let client_counts: Vec<usize> = inputs.iter().map(|i| i.batch.len()).collect();
        let mut meta = Vec::with_capacity(rounds);
        let mut batches = Vec::with_capacity(rounds);
        for (idx, input) in inputs.into_iter().enumerate() {
            meta.push((input.round, input.num_mailboxes, input.publics));
            batches.push((idx, input.batch));
        }
        let meta = &meta;

        type Item = (usize, Vec<Vec<u8>>);
        // Per-stage outcome: (round input index, noise added, dropped).
        type StageStats = Vec<(usize, u64, u64)>;

        let (finals, stage_results) = std::thread::scope(|scope| {
            let (first_tx, mut prev_rx) = mpsc::sync_channel::<Item>(depth);
            let mut handles = Vec::with_capacity(stages);
            for (k, mixer) in self.mixers.iter_mut().enumerate() {
                let (tx, rx) = mpsc::sync_channel::<Item>(depth);
                let rx_in = prev_rx;
                prev_rx = rx;
                let stage_stall = std::sync::Arc::clone(&stall_histogram);
                handles.push(scope.spawn(move || -> Result<StageStats, MixdError> {
                    let mut stats = StageStats::new();
                    // Time this stage spends starved for upstream input or
                    // blocked on downstream backpressure — the pipeline's
                    // wasted wall-clock, one observation per stage per call.
                    let mut stall_us = 0u64;
                    loop {
                        let waiting = Instant::now();
                        let Ok((idx, batch)) = rx_in.recv() else {
                            break;
                        };
                        stall_us += waiting.elapsed().as_micros() as u64;
                        let (round, num_mailboxes, publics) = &meta[idx];
                        // Tolerate short key lists (e.g. a round that was
                        // never opened): the daemon answers with its own
                        // typed error instead of this thread panicking.
                        let downstream = publics.get(k + 1..).unwrap_or(&[]);
                        let processed = mixer.process(
                            protocol,
                            *round,
                            *num_mailboxes,
                            &noise,
                            downstream,
                            batch,
                        )?;
                        stats.push((idx, processed.noise_added, processed.dropped));
                        let blocked = Instant::now();
                        if tx.send((idx, processed.batch)).is_err() {
                            // The downstream stage died; its error is the
                            // interesting one, reported at join time.
                            break;
                        }
                        stall_us += blocked.elapsed().as_micros() as u64;
                    }
                    stage_stall.observe(stall_us);
                    Ok(stats)
                }));
            }
            // Feed from a dedicated thread so the main thread can drain the
            // sink concurrently — with bounded channels everywhere, feeding
            // and draining from one thread would deadlock past `depth`.
            scope.spawn(move || {
                for item in batches {
                    if first_tx.send(item).is_err() {
                        return;
                    }
                }
            });
            let mut finals: Vec<Option<Vec<Vec<u8>>>> = vec![None; rounds];
            for (idx, batch) in prev_rx.iter() {
                finals[idx] = Some(batch);
            }
            let stage_results: Vec<Result<StageStats, MixdError>> = handles
                .into_iter()
                .map(|h| h.join().expect("mix pipeline stage panicked"))
                .collect();
            (finals, stage_results)
        });

        let mut per_stage = Vec::with_capacity(stages);
        for result in stage_results {
            per_stage.push(result?);
        }
        let mut out = Vec::with_capacity(rounds);
        for (idx, finals) in finals.into_iter().enumerate() {
            let finals = finals
                .ok_or_else(|| MixdError::Mixer("mix pipeline dropped a round".to_string()))?;
            let mut stats = RoundStats {
                client_messages: client_counts[idx],
                final_messages: finals.len(),
                ..RoundStats::default()
            };
            for stage in &per_stage {
                let &(i, noise_added, dropped) = stage
                    .iter()
                    .find(|(i, _, _)| *i == idx)
                    .ok_or_else(|| MixdError::Mixer("mix pipeline dropped a round".to_string()))?;
                debug_assert_eq!(i, idx);
                stats.noise_per_server.push(noise_added);
                stats.dropped_per_server.push(dropped);
            }
            out.push((finals, stats));
        }
        phase_histogram(protocol, "process").observe_since(process_started);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeds::chain_seed;
    use alpenhorn_mixnet::MixChain;

    const SEED: [u8; 32] = [42u8; 32];

    #[test]
    fn loopback_single_round_matches_in_process_chain() {
        let noise = NoiseConfig::deterministic(2.0);
        let mut local = MixChain::new(3, noise, chain_seed(SEED, RoundKind::AddFriend));
        let mut remote = RemoteMixChain::loopback(RoundKind::AddFriend, 3, noise, SEED);

        let local_publics = local.begin_round();
        let remote_publics = remote.begin_round().unwrap();
        assert_eq!(
            local_publics
                .iter()
                .map(|p| p.to_bytes())
                .collect::<Vec<_>>(),
            remote_publics
                .iter()
                .map(|p| p.to_bytes())
                .collect::<Vec<_>>()
        );

        let (local_boxes, local_stats) = local.run_add_friend_round(vec![], 2, &local_publics);
        let (remote_boxes, remote_stats) = remote
            .run_add_friend_round(vec![], 2, &remote_publics)
            .unwrap();
        assert_eq!(local_stats, remote_stats);
        assert_eq!(local_boxes.mailboxes, remote_boxes.mailboxes);
        local.end_round();
        remote.end_round().unwrap();
    }

    #[test]
    fn pipelined_rounds_match_sequential_rounds() {
        let noise = NoiseConfig::deterministic(1.0);
        let mut sequential = RemoteMixChain::loopback(RoundKind::Dialing, 4, noise, SEED);
        let mut pipelined = RemoteMixChain::loopback(RoundKind::Dialing, 4, noise, SEED);
        pipelined.set_pipeline_depth(3);

        // Open rounds 0..5 on both chains.
        let mut publics = Vec::new();
        for r in 0..5u64 {
            let p = sequential.begin_round_for(Round(r)).unwrap();
            assert_eq!(
                p.iter().map(|k| k.to_bytes()).collect::<Vec<_>>(),
                pipelined
                    .begin_round_for(Round(r))
                    .unwrap()
                    .iter()
                    .map(|k| k.to_bytes())
                    .collect::<Vec<_>>()
            );
            publics.push(p);
        }
        let input = |r: u64, publics: &[Vec<DhPublic>]| MixRoundInput {
            round: Round(r),
            batch: vec![],
            num_mailboxes: 3,
            publics: publics[r as usize].clone(),
        };
        // One call per round vs one pipelined call for all five.
        let mut one_by_one = Vec::new();
        for r in 0..5u64 {
            one_by_one.extend(sequential.mix_rounds(vec![input(r, &publics)]).unwrap());
        }
        let all_at_once = pipelined
            .mix_rounds((0..5u64).map(|r| input(r, &publics)).collect())
            .unwrap();
        assert_eq!(one_by_one, all_at_once);
    }

    #[test]
    fn mix_rounds_reports_closed_rounds_as_mixer_errors() {
        let noise = NoiseConfig::deterministic(0.0);
        let mut chain = RemoteMixChain::loopback(RoundKind::AddFriend, 2, noise, SEED);
        let err = chain.mix_rounds(vec![MixRoundInput {
            round: Round(7),
            batch: vec![],
            num_mailboxes: 1,
            publics: vec![],
        }]);
        assert!(
            matches!(&err, Err(MixdError::Mixer(d)) if d.contains("not open")),
            "{err:?}"
        );
    }

    #[test]
    fn auto_numbering_matches_the_in_process_chain() {
        let noise = NoiseConfig::deterministic(1.0);
        let mut local = MixChain::new(2, noise, chain_seed(SEED, RoundKind::Dialing));
        let mut remote = RemoteMixChain::loopback(RoundKind::Dialing, 2, noise, SEED);
        // Three begin/run/end cycles: implicit numbering must stay aligned.
        for _ in 0..3 {
            let lp = local.begin_round();
            let rp = remote.begin_round().unwrap();
            let (lb, ls) = local.run_dialing_round(vec![], 2, &lp);
            let (rb, rs) = remote.run_dialing_round(vec![], 2, &rp).unwrap();
            assert_eq!(ls, rs);
            assert_eq!(lb.mailboxes, rb.mailboxes);
            local.end_round();
            remote.end_round().unwrap();
        }
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let mut chain =
            RemoteMixChain::loopback(RoundKind::AddFriend, 1, NoiseConfig::light(), SEED);
        assert!(chain.mix_rounds(vec![]).unwrap().is_empty());
    }
}
