//! `mixd` — one Alpenhorn mix server as a standalone daemon.
//!
//! Hosts the add-friend and dialing mix servers for a single chain position
//! and answers framed [`MixerRequest`](alpenhorn_wire::MixerRequest)s from
//! the coordinator. Because every per-round byte is derived from
//! (`--seed`, `--index`, round id), a `mixd` fleet given the coordinator's
//! seed and distinct indices joins the chain byte-compatibly with an
//! in-process deployment — kill a daemon, restart it with the same flags,
//! and the coordinator's retried requests get the identical answers.
//!
//! ```text
//! mixd --index N [--listen ADDR] [--seed N] [--workers N] [--data-dir DIR]
//!      [--log-level LEVEL] [--metrics-dump-secs N]
//! ```
//!
//! `--data-dir` is accepted for deployment-script symmetry with the other
//! daemons but unused: `mixd` keeps no durable state, by design.

use alpenhorn_mixd::{serve, MixdServer};
use alpenhorn_obs::log::Level;
use alpenhorn_obs::{log_error, log_info};

/// The log/metrics target tag for this daemon.
const TARGET: &str = "mixd";

struct Options {
    listen: String,
    seed: u8,
    index: Option<usize>,
    workers: Option<usize>,
    log_level: Level,
    metrics_dump_secs: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: mixd --index N [--listen ADDR] [--seed N] [--workers N] [--data-dir DIR]\n\
         \x20           [--log-level off|error|warn|info|debug] [--metrics-dump-secs N]\n\
         \x20      --index N     chain position of this mix server (required)\n\
         \x20      --listen ADDR listen address (default 127.0.0.1:7207; port 0 for ephemeral)\n\
         \x20      --seed N      cluster seed byte, must match the coordinator's (default 0)\n\
         \x20      --workers N   worker threads per round (default: available parallelism)\n\
         \x20      --data-dir D  accepted and ignored: mixd is stateless by design\n\
         \x20      --log-level L log verbosity (default info)\n\
         \x20      --metrics-dump-secs N  dump the metrics exposition every N seconds"
    );
    std::process::exit(2)
}

fn parse_options() -> Options {
    let mut options = Options {
        listen: "127.0.0.1:7207".to_string(),
        seed: 0,
        index: None,
        workers: None,
        log_level: Level::Info,
        metrics_dump_secs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("mixd: {name} requires a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => options.listen = value("--listen"),
            "--seed" => options.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--index" => options.index = Some(value("--index").parse().unwrap_or_else(|_| usage())),
            "--workers" => {
                options.workers = Some(value("--workers").parse().unwrap_or_else(|_| usage()))
            }
            "--data-dir" => {
                let _ = value("--data-dir");
            }
            "--log-level" => {
                options.log_level = Level::parse(&value("--log-level")).unwrap_or_else(|| usage())
            }
            "--metrics-dump-secs" => {
                options.metrics_dump_secs = Some(
                    value("--metrics-dump-secs")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("mixd: unknown flag {other}");
                usage()
            }
        }
    }
    options
}

fn main() {
    let options = parse_options();
    alpenhorn_obs::log::set_level(options.log_level);
    if let Some(secs) = options.metrics_dump_secs {
        alpenhorn_obs::spawn_metrics_dump(TARGET, std::time::Duration::from_secs(secs.max(1)));
    }
    let Some(index) = options.index else {
        eprintln!("mixd: --index is required (which chain position am I?)");
        usage()
    };
    let mut server = MixdServer::new([options.seed; 32], index);
    if let Some(workers) = options.workers {
        server.set_workers(workers);
    }
    let handle = match serve(server, options.listen.as_str()) {
        Ok(handle) => handle,
        Err(e) => {
            log_error!(TARGET, "cannot listen on {}: {e}", options.listen);
            std::process::exit(1);
        }
    };
    log_info!(
        TARGET,
        "listening on {} (chain position {}, seed {})",
        handle.local_addr(),
        index,
        options.seed
    );
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
