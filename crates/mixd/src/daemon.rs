//! The `mixd` daemon: one chain position's mix servers behind framed TCP.

use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use alpenhorn_ibe::dh::DhPublic;
use alpenhorn_mixnet::{server_seed, MixServer, NoiseConfig, Protocol};
use alpenhorn_obs::SpanGuard;
use alpenhorn_wire::rpc::{SpanWire, TelemetryWire};
use alpenhorn_wire::{Frame, MixerRequest, MixerResponse, RoundKind};

use crate::seeds::chain_seed;

/// The span component tag for code running inside a mix daemon. One tag per
/// process type: in single-process tests it is what separates mixer-side
/// spans from coordinator- and CDN-side ones.
pub const SPAN_COMPONENT: &str = "mixd";

/// Daemon-side mixing counters (noise injected, malformed onions dropped),
/// mirrored into the shared registry for round reconciliation.
struct DaemonMetrics {
    noise_added: Arc<alpenhorn_obs::Counter>,
    dropped: Arc<alpenhorn_obs::Counter>,
}

fn daemon_metrics() -> &'static DaemonMetrics {
    static METRICS: std::sync::OnceLock<DaemonMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = alpenhorn_obs::global();
        DaemonMetrics {
            noise_added: r.counter("mixd_noise_added_total", &[]),
            dropped: r.counter("mixd_malformed_dropped_total", &[]),
        }
    })
}

/// Builds the daemon's [`MixerResponse::Telemetry`] payload: the global
/// metrics exposition plus every recent span recorded under
/// [`SPAN_COMPONENT`].
pub fn telemetry_wire() -> TelemetryWire {
    TelemetryWire {
        exposition: alpenhorn_obs::global().expose(),
        spans: alpenhorn_obs::spans_for(SPAN_COMPONENT)
            .into_iter()
            .map(|s| SpanWire {
                component: s.component.to_string(),
                name: s.name.to_string(),
                correlation: s.correlation,
                start_us: s.start_us,
                duration_us: s.duration_us,
            })
            .collect(),
    }
}

/// One mix daemon's state: the add-friend and dialing chain servers for a
/// single chain position, both derived from (cluster seed, index) exactly as
/// the coordinator's in-process chains derive them.
///
/// The daemon holds no per-request state beyond the open rounds' onion
/// secrets: every response is a pure function of (seed, index, request), so
/// a retried request — after a timeout, a dropped connection, or a daemon
/// restart plus re-begin — reproduces the byte-identical answer.
pub struct MixdServer {
    index: usize,
    add_friend: MixServer,
    dialing: MixServer,
}

impl MixdServer {
    /// Builds the daemon for chain position `index` of the cluster seeded
    /// with `cluster_seed`.
    pub fn new(cluster_seed: [u8; 32], index: usize) -> Self {
        MixdServer {
            index,
            add_friend: MixServer::new(
                index,
                server_seed(chain_seed(cluster_seed, RoundKind::AddFriend), index),
            ),
            dialing: MixServer::new(
                index,
                server_seed(chain_seed(cluster_seed, RoundKind::Dialing), index),
            ),
        }
    }

    /// The daemon's chain position.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Sets the worker-thread count both servers use for round processing
    /// (output bytes are worker-count independent).
    pub fn set_workers(&mut self, workers: usize) {
        self.add_friend.set_workers(workers);
        self.dialing.set_workers(workers);
    }

    fn server_mut(&mut self, protocol: RoundKind) -> &mut MixServer {
        match protocol {
            RoundKind::AddFriend => &mut self.add_friend,
            RoundKind::Dialing => &mut self.dialing,
        }
    }

    /// Dispatches one request. Failures come back as
    /// [`MixerResponse::Error`], never a panic: a hostile or confused
    /// coordinator must not kill the daemon.
    pub fn handle(&mut self, request: MixerRequest) -> MixerResponse {
        self.handle_with_correlation(request, None)
    }

    /// Like [`MixdServer::handle`], preferring the correlation id the
    /// coordinator attached to the request frame (when talking to an
    /// up-to-date peer) over the locally derived one. Both are the same pure
    /// function of (protocol, round), so a PR 9-era coordinator that sends
    /// plain frames still produces correctly linked spans.
    fn handle_with_correlation(
        &mut self,
        request: MixerRequest,
        wire_correlation: Option<u64>,
    ) -> MixerResponse {
        let metrics = daemon_metrics();
        let phase_timer = request.round_scope().map(|(protocol, round)| {
            let phase = request.name();
            let correlation = wire_correlation
                .unwrap_or_else(|| alpenhorn_obs::correlation_id(protocol.code(), round.0));
            (
                alpenhorn_obs::global().histogram(
                    "mixd_round_phase_us",
                    &[("protocol", protocol.label()), ("phase", phase)],
                ),
                SpanGuard::begin(SPAN_COMPONENT, phase, correlation),
                std::time::Instant::now(),
            )
        });
        let response = match request {
            MixerRequest::BeginRound { protocol, round } => {
                let public = self.server_mut(protocol).begin_round_for(round.0);
                MixerResponse::RoundKey(public.to_bytes())
            }
            MixerRequest::Process {
                protocol,
                round,
                num_mailboxes,
                noise_mu,
                noise_b,
                downstream,
                batch,
            } => {
                let mut publics = Vec::with_capacity(downstream.len());
                for key in &downstream {
                    match DhPublic::from_bytes(key) {
                        Ok(public) => publics.push(public),
                        Err(_) => {
                            return MixerResponse::Error(
                                "undecodable downstream onion key".to_string(),
                            )
                        }
                    }
                }
                let noise = NoiseConfig {
                    mu: f64::from_bits(noise_mu),
                    b: f64::from_bits(noise_b),
                };
                let mix_protocol = match protocol {
                    RoundKind::AddFriend => Protocol::AddFriend,
                    RoundKind::Dialing => Protocol::Dialing,
                };
                let server = self.server_mut(protocol);
                if !server.round_open_for(round.0) {
                    return MixerResponse::Error(format!(
                        "{protocol:?} round {} is not open",
                        round.0
                    ));
                }
                let batch = server.process_for(
                    round.0,
                    batch,
                    &publics,
                    mix_protocol,
                    &noise,
                    num_mailboxes,
                );
                metrics.noise_added.add(server.last_noise_added());
                metrics.dropped.add(server.last_malformed_dropped());
                MixerResponse::Processed {
                    batch,
                    noise_added: server.last_noise_added(),
                    dropped: server.last_malformed_dropped(),
                }
            }
            MixerRequest::EndRound { protocol, round } => {
                self.server_mut(protocol).end_round_for(round.0);
                MixerResponse::Ack
            }
            MixerRequest::GetTelemetry => MixerResponse::Telemetry(telemetry_wire()),
        };
        if let Some((histogram, _span, started)) = phase_timer {
            histogram.observe_since(started);
        }
        response
    }

    /// Handles one framed request payload, returning the encoded response.
    /// Undecodable payloads and oversized responses come back as encoded
    /// [`MixerResponse::Error`]s, keeping the connection alive and aligned.
    pub fn handle_request_bytes(&mut self, payload: &[u8]) -> Vec<u8> {
        self.handle_request_bytes_with_correlation(payload, None)
    }

    /// Like [`MixdServer::handle_request_bytes`], with the correlation id the
    /// peer attached to the request frame (if any).
    pub fn handle_request_bytes_with_correlation(
        &mut self,
        payload: &[u8],
        correlation: Option<u64>,
    ) -> Vec<u8> {
        let response = match MixerRequest::decode(payload) {
            Ok(request) => self.handle_with_correlation(request, correlation),
            Err(e) => MixerResponse::Error(format!("undecodable mixer request: {e}")),
        };
        let bytes = response.encode();
        if bytes.len() > Frame::MAX_PAYLOAD_LEN {
            return MixerResponse::Error("response exceeds the maximum frame size".to_string())
                .encode();
        }
        bytes
    }
}

/// A handle to a running [`serve`] loop.
pub struct MixdHandle {
    local_addr: std::net::SocketAddr,
    server: Arc<Mutex<MixdServer>>,
}

impl MixdHandle {
    /// The bound listen address (with the OS-assigned port for `:0` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The served daemon state, shared with the accept loop (tests and the
    /// binary's diagnostics).
    pub fn server(&self) -> Arc<Mutex<MixdServer>> {
        Arc::clone(&self.server)
    }
}

/// Serves `server` on `addr`: one framed [`MixerRequest`] →
/// [`MixerResponse`] exchange per frame, one thread per connection, requests
/// serialized through the daemon mutex (rounds are driven by a single
/// coordinator; contention is not the bottleneck, the mixing is).
///
/// Returns once the listener is bound; accepting runs on a background
/// thread for the life of the process.
pub fn serve(server: MixdServer, addr: &str) -> std::io::Result<MixdHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let server = Arc::new(Mutex::new(server));
    let accept_server = Arc::clone(&server);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let server = Arc::clone(&accept_server);
            std::thread::spawn(move || serve_connection(stream, server));
        }
    });
    Ok(MixdHandle { local_addr, server })
}

/// Read/write timeout per connection: generous enough for a full-round
/// batch, bounded so a wedged peer cannot pin a thread forever.
const CONNECTION_IO_TIMEOUT: Duration = Duration::from_secs(120);

fn serve_connection(mut stream: TcpStream, server: Arc<Mutex<MixdServer>>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(CONNECTION_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CONNECTION_IO_TIMEOUT));
    loop {
        let (payload, correlation) = match Frame::read_from_with_telemetry(&mut stream) {
            Ok(read) => read,
            // EOF or any framing/IO failure ends the connection; the
            // coordinator reconnects and retries (identical answers).
            Err(_) => return,
        };
        let response = {
            let mut server = server.lock().expect("mixd state mutex");
            server.handle_request_bytes_with_correlation(&payload, correlation)
        };
        match Frame::write_to(&mut stream, &response) {
            Ok(()) => {}
            Err(e) => {
                // A torn write desynchronizes the stream; drop it.
                let _ = e;
                let _ = stream.shutdown(std::net::Shutdown::Both);
                return;
            }
        }
    }
}

/// A connect helper with the daemon's defaults (used by [`RemoteMixer`]).
///
/// [`RemoteMixer`]: crate::mixer::RemoteMixer
pub(crate) fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last = None;
    for candidate in std::net::ToSocketAddrs::to_socket_addrs(addr)? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(CONNECTION_IO_TIMEOUT))?;
                stream.set_write_timeout(Some(CONNECTION_IO_TIMEOUT))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, "address resolved to no candidates")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_wire::Round;

    #[test]
    fn begin_is_idempotent_and_round_scoped() {
        let mut daemon = MixdServer::new([5u8; 32], 0);
        let MixerResponse::RoundKey(k1) = daemon.handle(MixerRequest::BeginRound {
            protocol: RoundKind::AddFriend,
            round: Round(3),
        }) else {
            panic!("begin returns a key");
        };
        // Retrying the same round returns the same key; a different round
        // and the other protocol's chain return different keys.
        let MixerResponse::RoundKey(again) = daemon.handle(MixerRequest::BeginRound {
            protocol: RoundKind::AddFriend,
            round: Round(3),
        }) else {
            panic!("retry returns a key");
        };
        assert_eq!(k1, again);
        let MixerResponse::RoundKey(k2) = daemon.handle(MixerRequest::BeginRound {
            protocol: RoundKind::AddFriend,
            round: Round(4),
        }) else {
            panic!("begin returns a key");
        };
        assert_ne!(k1, k2);
        let MixerResponse::RoundKey(dial) = daemon.handle(MixerRequest::BeginRound {
            protocol: RoundKind::Dialing,
            round: Round(3),
        }) else {
            panic!("begin returns a key");
        };
        assert_ne!(k1, dial);
    }

    #[test]
    fn process_before_begin_is_a_typed_error() {
        let mut daemon = MixdServer::new([5u8; 32], 0);
        let response = daemon.handle(MixerRequest::Process {
            protocol: RoundKind::Dialing,
            round: Round(9),
            num_mailboxes: 1,
            noise_mu: 0f64.to_bits(),
            noise_b: 0f64.to_bits(),
            downstream: vec![],
            batch: vec![],
        });
        assert!(
            matches!(&response, MixerResponse::Error(d) if d.contains("not open")),
            "{response:?}"
        );
    }

    #[test]
    fn process_retries_are_byte_identical() {
        let mut daemon = MixdServer::new([6u8; 32], 0);
        daemon.set_workers(1);
        daemon.handle(MixerRequest::BeginRound {
            protocol: RoundKind::AddFriend,
            round: Round(1),
        });
        let request = MixerRequest::Process {
            protocol: RoundKind::AddFriend,
            round: Round(1),
            num_mailboxes: 2,
            noise_mu: 3f64.to_bits(),
            noise_b: 0f64.to_bits(),
            downstream: vec![],
            batch: vec![],
        };
        let first = daemon.handle(request.clone());
        let second = daemon.handle(request);
        assert!(matches!(first, MixerResponse::Processed { .. }));
        assert_eq!(first, second, "retried Process must replay identically");
    }

    #[test]
    fn undecodable_requests_keep_the_daemon_alive() {
        let mut daemon = MixdServer::new([7u8; 32], 1);
        let bytes = daemon.handle_request_bytes(&[0xff, 0x00, 0x01]);
        let response = MixerResponse::decode(&bytes).unwrap();
        assert!(matches!(response, MixerResponse::Error(_)));
    }

    #[test]
    fn end_round_is_idempotent() {
        let mut daemon = MixdServer::new([8u8; 32], 0);
        daemon.handle(MixerRequest::BeginRound {
            protocol: RoundKind::Dialing,
            round: Round(2),
        });
        for _ in 0..2 {
            assert_eq!(
                daemon.handle(MixerRequest::EndRound {
                    protocol: RoundKind::Dialing,
                    round: Round(2),
                }),
                MixerResponse::Ack
            );
        }
    }
}
