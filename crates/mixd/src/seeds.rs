//! Seed derivation shared by the coordinator and standalone daemons.
//!
//! A distributed deployment hands each `mixd` process only the cluster seed
//! and its chain position; the daemon re-derives the same per-chain and
//! per-server seeds the coordinator's in-process
//! [`MixChain`](alpenhorn_mixnet::MixChain) uses, so the two deployments
//! produce byte-identical rounds.

use alpenhorn_wire::RoundKind;

/// Derives the per-protocol chain seed from the cluster seed — the same
/// tweak the coordinator applies when building its in-process chains, kept
/// here as the single source of truth for both deployments.
pub fn chain_seed(cluster_seed: [u8; 32], protocol: RoundKind) -> [u8; 32] {
    let mut seed = cluster_seed;
    seed[29] ^= match protocol {
        RoundKind::AddFriend => 0x11,
        RoundKind::Dialing => 0x22,
    };
    seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocols_get_distinct_chain_seeds() {
        let seed = [7u8; 32];
        let add = chain_seed(seed, RoundKind::AddFriend);
        let dial = chain_seed(seed, RoundKind::Dialing);
        assert_ne!(add, dial);
        assert_ne!(add, seed);
        assert_ne!(dial, seed);
        // The tweak touches exactly one byte, so independent server-index
        // tweaks (bytes 0..2) cannot collide with it.
        assert_eq!(
            add.iter().zip(seed.iter()).filter(|(a, b)| a != b).count(),
            1
        );
    }
}
