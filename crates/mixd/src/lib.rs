//! Networked mix-server daemons and the coordinator-side chain driving them.
//!
//! The paper deploys the mixnet as N independent servers on separate
//! machines (§7); this crate is that deployment surface:
//!
//! * [`MixdServer`] — one daemon's state: the add-friend and dialing
//!   [`MixServer`](alpenhorn_mixnet::MixServer)s for one chain position,
//!   dispatching [`MixerRequest`](alpenhorn_wire::MixerRequest)s. Because
//!   every per-round byte a mix server produces is derived from
//!   (seed, chain position, round id), the daemon is **stateless across
//!   requests**: retried RPCs reproduce identical responses and no replay
//!   cache exists.
//! * [`serve`] — the framed TCP accept loop (`mixd` binary).
//! * [`Mixer`] — the coordinator's view of one mix server, with two
//!   implementations: [`LoopbackMixer`] (in-process, still routed through
//!   the wire codec) and [`RemoteMixer`] (framed TCP with
//!   reconnect-and-retry, mirroring the client transport's recovery
//!   policy).
//! * [`RemoteMixChain`] — mirrors the in-process
//!   [`MixChain`](alpenhorn_mixnet::MixChain) API over a row of [`Mixer`]s
//!   and adds cross-round pipelining: mixer k peels round r while mixer
//!   k+1 noises round r−1. Outputs are byte-identical to `MixChain` for
//!   every mixer count and pipelining depth (`tests/loopback_equivalence`).
//!
//! Seed derivation for daemons is shared with the coordinator via
//! [`chain_seed`] and [`alpenhorn_mixnet::server_seed`], so a daemon given
//! only (cluster seed, index) joins the chain byte-compatibly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod daemon;
pub mod error;
pub mod mixer;
pub mod seeds;

pub use chain::{MixRoundInput, MixRoundOutput, RemoteMixChain};
pub use daemon::{serve, MixdHandle, MixdServer};
pub use error::MixdError;
pub use mixer::{LoopbackMixer, MixRetryPolicy, Mixer, ProcessedBatch, RemoteMixer};
pub use seeds::chain_seed;
