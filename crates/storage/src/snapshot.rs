//! Atomically-replaced full-state snapshots.
//!
//! A snapshot file holds exactly one [`record`](crate::record) frame, so the
//! same checksum machinery that guards the WAL guards the snapshot: a torn or
//! bit-flipped snapshot is detected on read, and recovery falls back to the
//! previous generation (see [`crate::durable`]).
//!
//! Writes are crash-safe by construction: the record is written to a `.tmp`
//! sibling, fsynced, and atomically renamed over the final name; the
//! directory is then fsynced so the rename itself is durable. At no point is
//! a partially-written file visible under the final name.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use crate::record::{self, LogRecord};
use crate::StorageError;

/// The record kind used for snapshot frames.
pub const SNAPSHOT_RECORD_KIND: u8 = 0xff;

/// Fsyncs the directory containing `path`, making a completed rename durable.
/// Best-effort on platforms where directories cannot be opened for sync.
fn sync_dir(path: &Path) -> Result<(), StorageError> {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            dir.sync_all()?;
        }
    }
    Ok(())
}

/// Atomically writes `payload` as the snapshot at `path`
/// (write-temp → fsync → rename → fsync-dir).
pub fn write_atomic(path: impl AsRef<Path>, payload: &[u8]) -> Result<(), StorageError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    let encoded = record::encode(SNAPSHOT_RECORD_KIND, payload);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&encoded)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_dir(path)
}

/// Reads and validates the snapshot at `path`, returning its payload.
///
/// Returns `Ok(None)` if the file does not exist; a file that exists but
/// fails validation is an error the caller may treat as "fall back to an
/// older generation".
pub fn read(path: impl AsRef<Path>) -> Result<Option<Vec<u8>>, StorageError> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let LogRecord { kind, payload } = record::decode_exact(&bytes)?;
    if kind != SNAPSHOT_RECORD_KIND {
        return Err(StorageError::BadPayload {
            context: "reading a snapshot record",
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("alpenhorn-snap-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_read_round_trip() {
        let dir = tmpdir("rt");
        let path = dir.join("state.snap");
        assert!(read(&path).unwrap().is_none());
        write_atomic(&path, b"the full state").unwrap();
        assert_eq!(read(&path).unwrap().unwrap(), b"the full state");
        // Overwrite is atomic-by-rename, so the new content fully replaces.
        write_atomic(&path, b"newer state").unwrap();
        assert_eq!(read(&path).unwrap().unwrap(), b"newer state");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_detected() {
        let dir = tmpdir("corrupt");
        let path = dir.join("state.snap");
        write_atomic(&path, b"important").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let byte = bytes.len() / 2;
        bytes[byte] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read(&path).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn leftover_tmp_file_does_not_shadow_snapshot() {
        // A crash between writing .tmp and the rename leaves only the tmp
        // file; the snapshot name itself reads as absent, not corrupt.
        let dir = tmpdir("tmpfile");
        let path = dir.join("state.snap");
        std::fs::write(path.with_extension("tmp"), b"half-written garbage").unwrap();
        assert!(read(&path).unwrap().is_none());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
