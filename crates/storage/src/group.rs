//! Group commit: concurrent appenders share one WAL and batch their fsyncs.
//!
//! A [`Wal`] is single-writer: every append takes `&mut self`, and with
//! `sync_every = 1` every append pays a full fsync (~100 µs on commodity
//! disks). That is fine while the coordinator serializes all mutations behind
//! one lock, but once submission intake is sharded across worker threads the
//! per-append fsync would re-serialize exactly the path the sharding freed.
//!
//! [`GroupWal`] keeps the same durability contract while letting appends
//! overlap:
//!
//! * appends interleave under a short mutex hold (buffered write, no fsync);
//! * the first appender that needs durability becomes the **leader**: it
//!   clones the file handle, drops the lock, and issues one `fsync` that
//!   covers every record appended so far — including records that landed
//!   *while it was waiting to become leader*;
//! * the other appenders park on a condvar until the leader's fsync covers
//!   their record's end offset, then return without ever touching the disk.
//!
//! Under concurrency, N appenders pay ~1 fsync instead of N. Under a single
//! thread, behaviour is byte-identical to a plain `Wal` with the same
//! `sync_every`.
//!
//! **Failure contract** (same as [`Wal::append`]): `Err` means *this record
//! is not in the log*. When a group fsync fails, the file is truncated back
//! to the last durable offset and every parked appender whose record was
//! rolled back gets an `Err`, so each caller can undo the in-memory mutation
//! its record described. With `sync_every > 1`, records acknowledged before
//! reaching the batching threshold are rolled back too — the same exposure
//! window the plain `Wal` documents for a crash.
//!
//! **Checkpoint barrier**: [`GroupWal::checkpoint_swap`] replaces the WAL
//! with a fresh one for the next snapshot generation *under the group lock*,
//! after waiting out any in-flight leader fsync. The snapshot is encoded
//! inside that critical section, so every record appended before the barrier
//! has its effect captured by the snapshot (appenders apply the in-memory
//! mutation before appending, and the mutex orders the append before the
//! encode). Parked appenders from the old generation are released with `Ok`:
//! the snapshot that superseded their record is already durable.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use alpenhorn_obs::{Counter, Histogram};

use crate::wal::Wal;
use crate::StorageError;

/// Group-commit telemetry: how big the batches are and how long the leader's
/// fsync takes. Cached so the append path never hits the registry lock.
struct GroupMetrics {
    fsync_us: Arc<Histogram>,
    batch_records: Arc<Histogram>,
    fsyncs_total: Arc<Counter>,
    rollbacks_total: Arc<Counter>,
}

fn group_metrics() -> &'static GroupMetrics {
    static METRICS: OnceLock<GroupMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = alpenhorn_obs::global();
        GroupMetrics {
            fsync_us: r.histogram("storage_group_fsync_us", &[]),
            batch_records: r.histogram("storage_group_commit_batch_records", &[]),
            fsyncs_total: r.counter("storage_group_fsyncs_total", &[]),
            rollbacks_total: r.counter("storage_group_rollbacks_total", &[]),
        }
    })
}

struct Inner {
    wal: Wal,
    /// Group-commit threshold: fsync once this many records are pending.
    sync_every: u32,
    /// End offsets of records appended but not yet durable, in append order.
    pending: VecDeque<u64>,
    /// File length known to be on stable storage.
    durable_len: u64,
    /// A leader fsync is in flight outside the lock.
    leader: bool,
    /// Bumped by [`GroupWal::checkpoint_swap`]; a parked appender that
    /// observes a bump returns `Ok` — the new snapshot supersedes its record.
    generation: u64,
    /// Appends since the last checkpoint swap (drives auto-checkpointing).
    appends_since_swap: u64,
}

/// A [`Wal`] shared by concurrent appenders with leader-based fsync batching.
pub struct GroupWal {
    inner: Mutex<Inner>,
    cond: Condvar,
}

fn group_io_error(detail: &'static str) -> StorageError {
    StorageError::Io(std::io::Error::other(detail))
}

impl GroupWal {
    /// Wraps an open WAL. `wal` should have been opened with a batching
    /// threshold it never reaches (`u32::MAX`): the group owns all fsync
    /// scheduling. `replayed` seeds the append counter that drives
    /// auto-checkpointing (the records recovered into the current WAL).
    pub fn new(wal: Wal, sync_every: u32, replayed: u64) -> Self {
        let durable_len = wal.len_bytes();
        GroupWal {
            inner: Mutex::new(Inner {
                wal,
                sync_every: sync_every.max(1),
                pending: VecDeque::new(),
                durable_len,
                leader: false,
                generation: 0,
                appends_since_swap: replayed,
            }),
            cond: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // Inner state is kept consistent at every await point, so a panic
        // elsewhere does not invalidate it.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Records appended since the last checkpoint swap (or open).
    pub fn appends_since_swap(&self) -> u64 {
        self.lock().appends_since_swap
    }

    /// Appends one record and returns once it is durable (or, below the
    /// `sync_every` threshold, once it is buffered). See the module docs for
    /// the group-commit protocol and failure contract.
    pub fn append(&self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
        let mut g = self.lock();
        g.wal.append(kind, payload)?;
        g.appends_since_swap += 1;
        let my_end = g.wal.len_bytes();
        let my_gen = g.generation;
        g.pending.push_back(my_end);
        if (g.pending.len() as u32) < g.sync_every {
            return Ok(());
        }
        loop {
            if g.generation != my_gen {
                // A checkpoint snapshot captured this record's effect and is
                // already durable; the record itself died with the old WAL.
                return Ok(());
            }
            if g.durable_len >= my_end {
                return Ok(());
            }
            if g.wal.len_bytes() < my_end {
                // A failed group fsync truncated this record away.
                return Err(group_io_error(
                    "group fsync failed; record rolled back from the WAL",
                ));
            }
            if !g.leader {
                g.leader = true;
                let target = g.wal.len_bytes();
                match g.wal.try_clone_file() {
                    Ok(file) => {
                        drop(g);
                        let started = Instant::now();
                        let result = file.sync_data();
                        group_metrics().fsync_us.observe_since(started);
                        g = self.lock();
                        g.leader = false;
                        Self::finish_sync(&mut g, target, result.map_err(StorageError::from));
                    }
                    Err(_) => {
                        // Cannot fsync outside the lock; do it inline. Still
                        // one fsync for the whole pending batch.
                        let started = Instant::now();
                        let result = g.wal.sync();
                        group_metrics().fsync_us.observe_since(started);
                        let target = g.wal.len_bytes();
                        g.leader = false;
                        Self::finish_sync(&mut g, target, result);
                    }
                }
                self.cond.notify_all();
                continue;
            }
            g = self.cond.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Applies the outcome of a leader fsync that targeted file length
    /// `target`. On failure, rolls the file back to the last durable offset
    /// so every in-flight appender sees its record gone and returns `Err`.
    fn finish_sync(g: &mut Inner, target: u64, result: Result<(), StorageError>) {
        match result {
            Ok(()) => {
                if target > g.durable_len {
                    g.durable_len = target;
                }
                let mut covered = 0u64;
                while matches!(g.pending.front(), Some(&end) if end <= target) {
                    g.pending.pop_front();
                    covered += 1;
                }
                if g.wal.len_bytes() == target {
                    g.wal.mark_synced();
                }
                let m = group_metrics();
                m.fsyncs_total.inc();
                m.batch_records.observe(covered);
            }
            Err(_) => {
                let durable = g.durable_len;
                g.wal.truncate_to(durable);
                g.pending.clear();
                group_metrics().rollbacks_total.inc();
            }
        }
    }

    /// Forces every pending record to stable storage.
    pub fn sync(&self) -> Result<(), StorageError> {
        let mut g = self.lock();
        while g.leader {
            g = self.cond.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        if g.pending.is_empty() {
            return Ok(());
        }
        let target = g.wal.len_bytes();
        let result = g.wal.sync();
        let failed = result.is_err();
        Self::finish_sync(&mut g, target, result);
        drop(g);
        self.cond.notify_all();
        if failed {
            return Err(group_io_error("sync failed; pending records rolled back"));
        }
        Ok(())
    }

    /// Replaces the WAL under the group lock (the checkpoint barrier).
    ///
    /// Waits out any in-flight leader fsync, then calls `f` with the old WAL
    /// while holding the lock — `f` encodes the snapshot, writes it
    /// atomically, and opens the next generation's WAL. On `Ok`, the old WAL
    /// is dropped, pending appenders are released (their effects live in the
    /// snapshot `f` just made durable), and the append counter resets. On
    /// `Err`, nothing changes.
    pub fn checkpoint_swap<F>(&self, f: F) -> Result<(), StorageError>
    where
        F: FnOnce(&mut Wal) -> Result<Wal, StorageError>,
    {
        let mut g = self.lock();
        while g.leader {
            g = self.cond.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        let new_wal = f(&mut g.wal)?;
        g.wal = new_wal;
        g.durable_len = g.wal.len_bytes();
        g.pending.clear();
        g.generation += 1;
        g.appends_since_swap = 0;
        drop(g);
        self.cond.notify_all();
        Ok(())
    }
}

/// A cloneable handle for appending effect records to a [`Durable`] store's
/// WAL without holding a reference to the store itself.
///
/// This is the concurrent fast path: a reader thread that mutated shared
/// interior-mutable state (e.g. a striped spent-token set) journals the
/// effect through its `Journal` while other threads do the same, and the
/// group commit batches their fsyncs. A handle from an ephemeral store
/// accepts and discards every record, so call sites need not branch on
/// whether durability is configured.
///
/// [`Durable`]: crate::Durable
#[derive(Clone, Default)]
pub struct Journal {
    wal: Option<Arc<GroupWal>>,
}

impl Journal {
    /// A journal that discards every record (ephemeral stores).
    pub fn ephemeral() -> Self {
        Journal { wal: None }
    }

    pub(crate) fn backed(wal: Arc<GroupWal>) -> Self {
        Journal { wal: Some(wal) }
    }

    /// Appends one effect record; `Err` means the record is **not** durable
    /// and the caller should undo the in-memory mutation it described.
    pub fn append(&self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
        match &self.wal {
            Some(wal) => wal.append(kind, payload),
            None => Ok(()),
        }
    }

    /// Whether records actually reach a disk (false for ephemeral handles).
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("durable", &self.is_durable())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("alpenhorn-group-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn open_group(path: &PathBuf, sync_every: u32) -> GroupWal {
        let (wal, _) = Wal::open(path, u32::MAX).unwrap();
        GroupWal::new(wal, sync_every, 0)
    }

    #[test]
    fn concurrent_appends_are_all_recovered() {
        let dir = tmpdir("concurrent");
        let path = dir.join("wal.log");
        let group = Arc::new(open_group(&path, 1));
        std::thread::scope(|s| {
            for t in 0..8u8 {
                let group = Arc::clone(&group);
                s.spawn(move || {
                    for i in 0..50u8 {
                        group.append(t, &[t, i]).unwrap();
                    }
                });
            }
        });
        drop(group);
        let (_, recovery) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.records.len(), 8 * 50);
        let mut per_thread = [0u8; 8];
        for record in &recovery.records {
            // Appends from one thread stay in that thread's order.
            let t = record.payload[0] as usize;
            assert_eq!(record.payload[1], per_thread[t]);
            per_thread[t] += 1;
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sync_every_batches_and_explicit_sync_flushes() {
        let dir = tmpdir("batch");
        let path = dir.join("wal.log");
        let group = open_group(&path, 8);
        for i in 0..20u8 {
            group.append(0, &[i]).unwrap();
        }
        // 20 appends with sync_every=8 leaves 4 pending; explicit sync
        // flushes them.
        assert_eq!(group.lock().pending.len(), 4);
        group.sync().unwrap();
        assert_eq!(group.lock().pending.len(), 0);
        drop(group);
        let (_, recovery) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovery.records.len(), 20);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_swap_redirects_appends_to_the_new_wal() {
        let dir = tmpdir("swap");
        let old_path = dir.join("wal-0.log");
        let new_path = dir.join("wal-1.log");
        let group = open_group(&old_path, 1);
        group.append(1, b"old-a").unwrap();
        group.append(1, b"old-b").unwrap();
        group
            .checkpoint_swap(|_old| Ok(Wal::open(&new_path, u32::MAX)?.0))
            .unwrap();
        assert_eq!(group.appends_since_swap(), 0);
        group.append(2, b"new-a").unwrap();
        drop(group);
        let (_, old) = Wal::open(&old_path, 1).unwrap();
        let (_, new) = Wal::open(&new_path, 1).unwrap();
        assert_eq!(old.records.len(), 2);
        assert_eq!(new.records.len(), 1);
        assert_eq!(new.records[0].payload, b"new-a");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn failed_checkpoint_swap_leaves_the_group_usable() {
        let dir = tmpdir("swapfail");
        let path = dir.join("wal.log");
        let group = open_group(&path, 1);
        group.append(1, b"before").unwrap();
        let err = group.checkpoint_swap(|_old| {
            Err(StorageError::BadPayload {
                context: "injected",
            })
        });
        assert!(err.is_err());
        group.append(1, b"after").unwrap();
        drop(group);
        let (_, recovery) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovery.records.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn ephemeral_journal_is_inert() {
        let journal = Journal::ephemeral();
        assert!(!journal.is_durable());
        journal.append(1, b"nowhere").unwrap();
        let cloned = journal.clone();
        cloned.append(2, b"still nowhere").unwrap();
    }
}
