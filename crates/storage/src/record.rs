//! The on-disk record format shared by the WAL and snapshots.
//!
//! Layout (all integers big-endian), mirroring the framing discipline of
//! `alpenhorn_wire::codec::Frame`:
//!
//! ```text
//! +-------+---------+------+-----------+----------------+------------+
//! | magic | version | kind |  length   |    payload     |  checksum  |
//! | "AL"  | 1 B     | 1 B  | 4 B (u32) | `length` bytes | 4 B        |
//! +-------+---------+------+-----------+----------------+------------+
//! ```
//!
//! The checksum is the first four bytes of SHA-256 over header + payload, so
//! truncation, bit flips, and a lying length prefix are all caught.
//! Versioning rule: any change to this layout or to the meaning of a `kind`'s
//! payload encoding bumps [`VERSION`]; a reader rejects every other version
//! (there is no negotiation — recovery tooling migrates old files offline).
//!
//! Decoding is *positional*: [`decode_at`] distinguishes "this prefix is not
//! a whole record yet" ([`RecordError::Truncated`]) from "these bytes can
//! never be a record" (corruption), which is what lets the WAL treat a torn
//! tail as clean end-of-log while still refusing mid-log corruption.

/// Magic bytes every record starts with ("AL" for Alpenhorn Log).
pub const MAGIC: [u8; 2] = *b"AL";
/// The record format version this implementation reads and writes.
pub const VERSION: u8 = 1;
/// Header length: magic + version + kind + length prefix.
pub const HEADER_LEN: usize = 2 + 1 + 1 + 4;
/// Trailing checksum length.
pub const CHECKSUM_LEN: usize = 4;
/// Maximum payload one record may carry (64 MiB). A length prefix beyond
/// this is rejected before any allocation: a corrupt length byte cannot make
/// recovery reserve unbounded memory. Snapshots of very large deployments
/// are the biggest records; 64 MiB bounds ~500k registered accounts per
/// snapshot record, beyond which state must shard across stores.
pub const MAX_PAYLOAD_LEN: usize = 1 << 26;

/// One decoded record: a kind tag and its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The record kind (meaning assigned by the consumer's `Persist` impl).
    pub kind: u8,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl LogRecord {
    /// Creates a record.
    pub fn new(kind: u8, payload: Vec<u8>) -> Self {
        LogRecord { kind, payload }
    }

    /// The encoded on-disk size of this record.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len() + CHECKSUM_LEN
    }
}

/// Why a byte range failed to decode as a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordError {
    /// The buffer ends before the record does (a torn tail, or simply not
    /// enough bytes yet). The WAL treats this at end-of-file as a clean stop.
    Truncated,
    /// The first two bytes are not the record magic.
    BadMagic,
    /// The version byte is not [`VERSION`].
    UnsupportedVersion {
        /// The version byte found.
        version: u8,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD_LEN`].
    TooLarge {
        /// The claimed payload length.
        claimed: usize,
    },
    /// The trailing checksum does not match header + payload.
    ChecksumMismatch,
}

impl core::fmt::Display for RecordError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "record truncated"),
            RecordError::BadMagic => write!(f, "bad record magic"),
            RecordError::UnsupportedVersion { version } => {
                write!(f, "unsupported record version {version}")
            }
            RecordError::TooLarge { claimed } => {
                write!(f, "record payload of {claimed} bytes exceeds the maximum")
            }
            RecordError::ChecksumMismatch => write!(f, "record checksum mismatch"),
        }
    }
}

impl std::error::Error for RecordError {}

fn checksum(header: &[u8], payload: &[u8]) -> [u8; CHECKSUM_LEN] {
    let mut hasher = alpenhorn_crypto::sha256::Sha256::new();
    hasher.update(header);
    hasher.update(payload);
    let digest = hasher.finalize();
    let mut out = [0u8; CHECKSUM_LEN];
    out.copy_from_slice(&digest[..CHECKSUM_LEN]);
    out
}

/// Encodes one record into its on-disk form.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_PAYLOAD_LEN`]; writers size payloads
/// (the storage crate's own snapshot/WAL callers never come close).
pub fn encode(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD_LEN,
        "record payload of {} bytes exceeds the maximum",
        payload.len()
    );
    let mut header = [0u8; HEADER_LEN];
    header[..2].copy_from_slice(&MAGIC);
    header[2] = VERSION;
    header[3] = kind;
    header[4..].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&header);
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(&header, payload));
    out
}

/// Decodes the record starting at `offset` in `buf`, returning the record and
/// the number of bytes it occupied.
///
/// Total: every malformed input maps to a typed [`RecordError`]; nothing
/// panics, and no allocation happens before the length prefix is validated.
pub fn decode_at(buf: &[u8], offset: usize) -> Result<(LogRecord, usize), RecordError> {
    let buf = buf.get(offset..).ok_or(RecordError::Truncated)?;
    if buf.len() < HEADER_LEN {
        return Err(RecordError::Truncated);
    }
    if buf[..2] != MAGIC {
        return Err(RecordError::BadMagic);
    }
    if buf[2] != VERSION {
        return Err(RecordError::UnsupportedVersion { version: buf[2] });
    }
    let kind = buf[3];
    let claimed = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if claimed > MAX_PAYLOAD_LEN {
        return Err(RecordError::TooLarge { claimed });
    }
    let total = HEADER_LEN + claimed + CHECKSUM_LEN;
    if buf.len() < total {
        return Err(RecordError::Truncated);
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + claimed];
    if buf[total - CHECKSUM_LEN..total] != checksum(&buf[..HEADER_LEN], payload) {
        return Err(RecordError::ChecksumMismatch);
    }
    Ok((
        LogRecord {
            kind,
            payload: payload.to_vec(),
        },
        total,
    ))
}

/// Decodes a buffer that must contain exactly one record (snapshot files).
pub fn decode_exact(buf: &[u8]) -> Result<LogRecord, RecordError> {
    let (record, consumed) = decode_at(buf, 0)?;
    if consumed != buf.len() {
        // Trailing bytes after a snapshot record mean the file was not
        // written by us; treat as corruption, not as a second record.
        return Err(RecordError::ChecksumMismatch);
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let encoded = encode(7, b"hello durable world");
        let (record, consumed) = decode_at(&encoded, 0).unwrap();
        assert_eq!(consumed, encoded.len());
        assert_eq!(record.kind, 7);
        assert_eq!(record.payload, b"hello durable world");
        assert_eq!(record.encoded_len(), encoded.len());
    }

    #[test]
    fn empty_payload_round_trips() {
        let encoded = encode(0, b"");
        let (record, consumed) = decode_at(&encoded, 0).unwrap();
        assert_eq!(consumed, HEADER_LEN + CHECKSUM_LEN);
        assert!(record.payload.is_empty());
    }

    #[test]
    fn every_truncation_is_reported_as_truncated() {
        let encoded = encode(3, b"payload bytes");
        for cut in 0..encoded.len() {
            assert_eq!(
                decode_at(&encoded[..cut], 0),
                Err(RecordError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let encoded = encode(3, b"payload bytes");
        for byte in 0..encoded.len() {
            for bit in 0..8 {
                let mut bad = encoded.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_at(&bad, 0).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut encoded = encode(1, b"x");
        encoded[4..8].copy_from_slice(&(u32::MAX).to_be_bytes());
        assert!(matches!(
            decode_at(&encoded, 0),
            Err(RecordError::TooLarge { .. })
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut encoded = encode(1, b"x");
        encoded[2] = VERSION + 1;
        assert_eq!(
            decode_at(&encoded, 0),
            Err(RecordError::UnsupportedVersion {
                version: VERSION + 1
            })
        );
    }

    #[test]
    fn decode_exact_rejects_trailing_bytes() {
        let mut encoded = encode(1, b"x");
        encoded.push(0);
        assert!(decode_exact(&encoded).is_err());
    }
}
