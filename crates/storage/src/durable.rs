//! The generic snapshot + log-suffix replay engine.
//!
//! [`Durable<T>`] wraps a state object implementing [`Persist`] and keeps it
//! recoverable on disk as *one snapshot generation plus a WAL suffix*:
//!
//! ```text
//! data-dir/
//!   snapshot-<gen>.snap   one checksummed record: T::encode_snapshot()
//!   wal-<gen>.log         effect records appended since that snapshot
//! ```
//!
//! Mutation protocol (a write-behind redo log): the caller mutates the live
//! state through [`Durable::state_mut`], then appends an *effect record*
//! describing the completed mutation with [`Durable::record`]. During
//! recovery the snapshot is restored and each logged record is re-applied via
//! [`Persist::apply_record`]; effect records therefore must capture the
//! mutation's result (inserted account, advanced ratchet, spent token), never
//! non-deterministic inputs.
//!
//! Checkpointing bumps the generation: the new snapshot is written atomically
//! (temp + fsync + rename), a fresh WAL is started, and only then are the old
//! generation's files deleted. A crash at any point leaves at least one
//! recoverable generation on disk:
//!
//! * crash mid-snapshot-write → only a `.tmp` file; the previous generation's
//!   snapshot + WAL are untouched;
//! * crash after the rename but before cleanup → both generations valid; the
//!   newest wins and the stale one is deleted on open;
//! * torn WAL tail → truncated to the last valid record (see [`crate::wal`]).
//!
//! Checkpoints are also the compaction *and erasure* mechanism: once the old
//! generation is deleted, secrets that were rotated out of the state (e.g.
//! superseded PKG ratchet positions) no longer exist anywhere on disk —
//! which is why the coordinator forces a checkpoint on every ratchet advance.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::group::{GroupWal, Journal};
use crate::record::LogRecord;
use crate::wal::Wal;
use crate::{snapshot, StorageError};

/// State that can be made durable by [`Durable`].
pub trait Persist {
    /// Encodes the complete current state for a snapshot.
    fn encode_snapshot(&self) -> Vec<u8>;

    /// Restores the complete state from a snapshot payload, replacing the
    /// receiver's contents.
    fn restore_snapshot(&mut self, payload: &[u8]) -> Result<(), StorageError>;

    /// Re-applies one logged effect record during recovery. Records arrive in
    /// append order, after the snapshot (if any) has been restored.
    fn apply_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError>;
}

/// Tuning for a durable store.
#[derive(Debug, Clone, Copy)]
pub struct StorageConfig {
    /// Fsync the WAL after this many appends (1 = every append). A crash
    /// loses at most the unsynced suffix.
    pub sync_every: u32,
    /// Automatically checkpoint after this many records accumulate in the
    /// WAL. Explicit [`Durable::checkpoint`] calls reset the counter too.
    pub checkpoint_every_records: u64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            sync_every: 1,
            checkpoint_every_records: 4096,
        }
    }
}

/// What recovery found on disk when opening a durable store.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryReport {
    /// Whether any prior state (snapshot or records) was recovered.
    pub recovered: bool,
    /// The snapshot generation in use after open.
    pub generation: u64,
    /// Whether a snapshot was loaded.
    pub snapshot_loaded: bool,
    /// Number of WAL records replayed on top of the snapshot.
    pub records_replayed: usize,
    /// Bytes discarded from a torn or corrupt WAL tail.
    pub truncated_bytes: u64,
    /// Number of corrupt newer snapshot generations that were skipped before
    /// a valid one was found.
    pub snapshot_fallbacks: u32,
}

struct Backing {
    dir: PathBuf,
    wal: Arc<GroupWal>,
    generation: u64,
    config: StorageConfig,
}

/// A state object kept recoverable as snapshot + WAL suffix.
///
/// The ephemeral mode ([`Durable::ephemeral`]) keeps the exact same API with
/// no backing files, so call sites need not branch on whether durability is
/// configured.
pub struct Durable<T: Persist> {
    state: T,
    backing: Option<Backing>,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation}.snap"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation}.log"))
}

/// Parses `<stem>-<gen>.<ext>` file names, returning the generation.
fn parse_generation(name: &str, stem: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(stem)?
        .strip_prefix('-')?
        .strip_suffix(ext)?
        .strip_suffix('.')?
        .parse()
        .ok()
}

impl<T: Persist> Durable<T> {
    /// Wraps `state` with no backing storage: `record` and `checkpoint` are
    /// no-ops. Used by deployments that opt out of durability (tests, the
    /// in-process simulator).
    pub fn ephemeral(state: T) -> Self {
        Durable {
            state,
            backing: None,
        }
    }

    /// Opens (creating if needed) the durable store in `dir`, recovering any
    /// existing state into `initial` as snapshot + log suffix.
    pub fn open(
        mut initial: T,
        dir: impl AsRef<Path>,
        config: StorageConfig,
    ) -> Result<(Self, RecoveryReport), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        let mut snapshot_gens = Vec::new();
        let mut wal_gens = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(gen) = parse_generation(name, "snapshot", "snap") {
                snapshot_gens.push(gen);
            } else if let Some(gen) = parse_generation(name, "wal", "log") {
                wal_gens.push(gen);
            }
        }
        snapshot_gens.sort_unstable_by(|a, b| b.cmp(a));

        let mut report = RecoveryReport::default();
        let mut generation = None;
        for &gen in &snapshot_gens {
            match snapshot::read(snapshot_path(&dir, gen)) {
                Ok(Some(payload)) => {
                    initial.restore_snapshot(&payload)?;
                    report.snapshot_loaded = true;
                    generation = Some(gen);
                    break;
                }
                // A corrupt newer generation: fall back to the previous one
                // (its files are still present — cleanup only runs after a
                // newer snapshot is durable).
                Ok(None) | Err(StorageError::Corrupt(_)) => report.snapshot_fallbacks += 1,
                Err(e) => return Err(e),
            }
        }
        // No valid snapshot. That is only legitimate before the first
        // checkpoint (a bare `wal-0.log` over the initial state); if
        // snapshot files exist but none decodes, the WAL suffix alone is NOT
        // the state — refuse to "recover" into a silently emptied deployment
        // (and leave every file untouched for offline repair).
        if generation.is_none() && !snapshot_gens.is_empty() {
            return Err(StorageError::BadPayload {
                context: "every snapshot generation is corrupt; refusing to recover from the \
                          WAL suffix alone (files left in place for offline repair)",
            });
        }
        let generation = generation.unwrap_or_else(|| wal_gens.iter().copied().max().unwrap_or(0));
        report.generation = generation;

        // The inner WAL never reaches its own batching threshold: all fsync
        // scheduling belongs to the group-commit layer.
        let (wal, wal_recovery) = Wal::open(wal_path(&dir, generation), u32::MAX)?;
        for LogRecord { kind, payload } in &wal_recovery.records {
            initial.apply_record(*kind, payload)?;
        }
        report.records_replayed = wal_recovery.records.len();
        report.truncated_bytes = wal_recovery.truncated_bytes;
        report.recovered = report.snapshot_loaded || report.records_replayed > 0;

        let replayed = wal_recovery.records.len() as u64;
        let mut durable = Durable {
            state: initial,
            backing: Some(Backing {
                dir,
                wal: Arc::new(GroupWal::new(wal, config.sync_every, replayed)),
                generation,
                config,
            }),
        };
        durable.cleanup_stale_generations();
        Ok((durable, report))
    }

    /// Removes files from generations *older* than the live one, plus
    /// leftover snapshot temp files. Files from newer generations are kept:
    /// after a corrupt-snapshot fallback, the newer generation's WAL holds
    /// valid records that exist nowhere else, and deleting them would
    /// foreclose offline repair. (A later checkpoint into that generation
    /// number atomically replaces its snapshot and clears its WAL anyway.)
    /// Best-effort: a failure here only costs disk.
    fn cleanup_stale_generations(&mut self) {
        let Some(backing) = &self.backing else { return };
        let Ok(entries) = std::fs::read_dir(&backing.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = match (
                parse_generation(name, "snapshot", "snap"),
                parse_generation(name, "wal", "log"),
            ) {
                (Some(gen), _) | (_, Some(gen)) => gen < backing.generation,
                _ => name.ends_with(".tmp"),
            };
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// The wrapped state.
    pub fn state(&self) -> &T {
        &self.state
    }

    /// Mutable access to the wrapped state. Callers that change durable state
    /// must follow the mutation with a [`Durable::record`] describing it, or
    /// the change will not survive a restart.
    pub fn state_mut(&mut self) -> &mut T {
        &mut self.state
    }

    /// Whether this store has backing files (false for ephemeral).
    pub fn is_durable(&self) -> bool {
        self.backing.is_some()
    }

    /// The live snapshot generation (0 for ephemeral stores).
    pub fn generation(&self) -> u64 {
        self.backing.as_ref().map_or(0, |b| b.generation)
    }

    /// Appends one effect record describing an already-applied mutation,
    /// checkpointing if the WAL has grown past the configured threshold.
    ///
    /// An `Err` means the record is **not** durable (the WAL rolls a failed
    /// append back), so callers may undo the in-memory mutation and have the
    /// client retry. A *checkpoint* failure after a successful append is
    /// deliberately not surfaced here: the record is already durable, so
    /// reporting failure would trigger exactly the wrong rollback; the
    /// compaction retries on the next append (the counter stays above the
    /// threshold until a checkpoint succeeds).
    pub fn record(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
        let Some(backing) = &self.backing else {
            return Ok(());
        };
        backing.wal.append(kind, payload)?;
        // The counter also covers records appended through Journal handles
        // on concurrent fast paths; those cannot checkpoint themselves (a
        // checkpoint needs exclusive access to encode the state), so the
        // next exclusive-path record compacts for them.
        if backing.wal.appends_since_swap() >= backing.config.checkpoint_every_records {
            let _ = self.checkpoint();
        }
        Ok(())
    }

    /// A cloneable handle for appending effect records from concurrent fast
    /// paths without borrowing this store. Records from all handles and from
    /// [`Durable::record`] share one group-committed WAL; handles from
    /// ephemeral stores discard every record.
    pub fn journal(&self) -> Journal {
        match &self.backing {
            Some(backing) => Journal::backed(Arc::clone(&backing.wal)),
            None => Journal::ephemeral(),
        }
    }

    /// Writes a fresh snapshot generation and starts an empty WAL, then
    /// deletes the previous generation's files (compaction + erasure of
    /// rotated-out secrets). No-op for ephemeral stores.
    ///
    /// Failure-atomic: if starting the new generation's WAL fails after its
    /// snapshot was written, the snapshot is removed again before returning,
    /// so a process that keeps journalling to the old generation can never
    /// be shadowed by a newer frozen snapshot at the next recovery.
    /// Concurrency: the snapshot is encoded inside the group-commit barrier
    /// (see [`GroupWal::checkpoint_swap`]), so effect records journalled by
    /// concurrent [`Journal`] handles are never lost across a generation
    /// swap — a record appended before the barrier has its effect captured
    /// by the snapshot; one appended after lands in the new WAL and replays
    /// idempotently.
    pub fn checkpoint(&mut self) -> Result<(), StorageError> {
        let Some(backing) = &mut self.backing else {
            return Ok(());
        };
        let state = &self.state;
        let next = backing.generation + 1;
        let dir = backing.dir.clone();
        backing.wal.checkpoint_swap(|_old| {
            let payload = state.encode_snapshot();
            let next_snapshot_path = snapshot_path(&dir, next);
            snapshot::write_atomic(&next_snapshot_path, &payload)?;
            // A crashed earlier attempt at this generation may have left a
            // WAL; it contains nothing the fresh snapshot does not, so
            // clear it.
            let next_wal_path = wal_path(&dir, next);
            let _ = std::fs::remove_file(&next_wal_path);
            match Wal::open(next_wal_path, u32::MAX) {
                Ok((wal, _)) => Ok(wal),
                Err(e) => {
                    let _ = std::fs::remove_file(&next_snapshot_path);
                    Err(e)
                }
            }
        })?;
        let old = backing.generation;
        backing.generation = next;
        let _ = std::fs::remove_file(wal_path(&backing.dir, old));
        let _ = std::fs::remove_file(snapshot_path(&backing.dir, old));
        Ok(())
    }

    /// Forces the WAL to stable storage (see [`StorageConfig::sync_every`]).
    pub fn sync(&mut self) -> Result<(), StorageError> {
        match &self.backing {
            Some(backing) => backing.wal.sync(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_wire::{Decoder, Encoder};

    /// A toy durable state: an append-only tally of (key, amount) additions.
    #[derive(Default, Debug, PartialEq)]
    struct Tally {
        totals: std::collections::BTreeMap<u8, u64>,
    }

    const ADD: u8 = 1;

    impl Tally {
        fn add(&mut self, key: u8, amount: u64) -> (u8, Vec<u8>) {
            *self.totals.entry(key).or_default() += amount;
            let mut e = Encoder::new();
            e.put_u8(key).put_u64(amount);
            (ADD, e.finish())
        }
    }

    impl Persist for Tally {
        fn encode_snapshot(&self) -> Vec<u8> {
            let mut e = Encoder::new();
            e.put_u32(self.totals.len() as u32);
            for (key, total) in &self.totals {
                e.put_u8(*key).put_u64(*total);
            }
            e.finish()
        }

        fn restore_snapshot(&mut self, payload: &[u8]) -> Result<(), StorageError> {
            let mut d = Decoder::new(payload);
            let count = d.get_u32("tally count")?;
            let mut totals = std::collections::BTreeMap::new();
            for _ in 0..count {
                let key = d.get_u8("tally key")?;
                let total = d.get_u64("tally total")?;
                totals.insert(key, total);
            }
            d.finish()?;
            self.totals = totals;
            Ok(())
        }

        fn apply_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
            if kind != ADD {
                return Err(StorageError::UnknownRecordKind { kind });
            }
            let mut d = Decoder::new(payload);
            let key = d.get_u8("add key")?;
            let amount = d.get_u64("add amount")?;
            d.finish()?;
            *self.totals.entry(key).or_default() += amount;
            Ok(())
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alpenhorn-durable-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn commit(d: &mut Durable<Tally>, key: u8, amount: u64) {
        let (kind, payload) = d.state_mut().add(key, amount);
        d.record(kind, &payload).unwrap();
    }

    #[test]
    fn recovery_replays_snapshot_plus_suffix() {
        let dir = tmpdir("replay");
        {
            let (mut d, report) =
                Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
            assert!(!report.recovered);
            commit(&mut d, 1, 10);
            commit(&mut d, 2, 20);
            d.checkpoint().unwrap();
            commit(&mut d, 1, 5); // suffix after the snapshot
        }
        let (d, report) = Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
        assert!(report.recovered);
        assert!(report.snapshot_loaded);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(d.state().totals.get(&1), Some(&15));
        assert_eq!(d.state().totals.get(&2), Some(&20));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_without_snapshot_replays_bare_wal() {
        let dir = tmpdir("bare");
        {
            let (mut d, _) =
                Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
            commit(&mut d, 7, 7);
        }
        let (d, report) = Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(d.state().totals.get(&7), Some(&7));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn auto_checkpoint_compacts_the_wal() {
        let dir = tmpdir("auto");
        let config = StorageConfig {
            sync_every: 1,
            checkpoint_every_records: 4,
        };
        let (mut d, _) = Durable::open(Tally::default(), &dir, config).unwrap();
        for i in 0..10 {
            commit(&mut d, 1, i);
        }
        assert!(d.generation() >= 2, "two auto-checkpoints expected");
        drop(d);
        let (d, report) = Durable::open(Tally::default(), &dir, config).unwrap();
        assert_eq!(d.state().totals.get(&1), Some(&45));
        assert!(report.records_replayed < 4);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous_generation() {
        let dir = tmpdir("fallback");
        let (mut d, _) = Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
        commit(&mut d, 1, 100);
        d.checkpoint().unwrap(); // generation 1
        let gen1_snap = snapshot_path(&dir, 1);
        let gen1_bytes = std::fs::read(&gen1_snap).unwrap();
        commit(&mut d, 2, 200);
        d.checkpoint().unwrap(); // generation 2
        drop(d);
        // Corrupt generation 2's snapshot and resurrect generation 1's files
        // (as if cleanup had not run before the corruption hit).
        let gen2_snap = snapshot_path(&dir, 2);
        let mut bytes = std::fs::read(&gen2_snap).unwrap();
        let byte = bytes.len() - 1;
        bytes[byte] ^= 0xff;
        std::fs::write(&gen2_snap, &bytes).unwrap();
        std::fs::write(&gen1_snap, &gen1_bytes).unwrap();
        std::fs::write(wal_path(&dir, 1), b"").unwrap();

        let (d, report) = Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
        assert_eq!(report.snapshot_fallbacks, 1);
        assert_eq!(report.generation, 1);
        assert_eq!(d.state().totals.get(&1), Some(&100));
        assert_eq!(d.state().totals.get(&2), None);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn all_snapshots_corrupt_refuses_to_recover_and_preserves_files() {
        // With every snapshot generation corrupt, the WAL suffix alone is
        // not the state: open must fail (not serve an emptied deployment)
        // and must leave the files in place for offline repair.
        let dir = tmpdir("allcorrupt");
        {
            let (mut d, _) =
                Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
            commit(&mut d, 1, 10);
            d.checkpoint().unwrap();
            commit(&mut d, 1, 5);
        }
        let snap = snapshot_path(&dir, 1);
        let mut bytes = std::fs::read(&snap).unwrap();
        let byte = bytes.len() / 2;
        bytes[byte] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();

        assert!(matches!(
            Durable::open(Tally::default(), &dir, StorageConfig::default()),
            Err(StorageError::BadPayload { .. })
        ));
        assert!(snap.exists(), "corrupt snapshot preserved for repair");
        assert!(
            wal_path(&dir, 1).exists(),
            "WAL suffix preserved for repair"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn mid_snapshot_crash_leaves_previous_generation_intact() {
        let dir = tmpdir("midsnap");
        {
            let (mut d, _) =
                Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
            commit(&mut d, 3, 30);
            d.checkpoint().unwrap();
            commit(&mut d, 3, 3);
        }
        // Simulate a crash mid-checkpoint: a half-written snapshot temp file
        // for the next generation, rename never happened.
        std::fs::write(dir.join("snapshot-2.tmp"), b"AL\x01\xffgarbage").unwrap();
        let (d, report) = Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(d.state().totals.get(&3), Some(&33));
        assert!(!dir.join("snapshot-2.tmp").exists(), "tmp cleaned up");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn ephemeral_mode_is_inert() {
        let mut d = Durable::ephemeral(Tally::default());
        commit(&mut d, 1, 1);
        d.checkpoint().unwrap();
        d.sync().unwrap();
        assert!(!d.is_durable());
        assert_eq!(d.state().totals.get(&1), Some(&1));
        assert!(!d.journal().is_durable());
    }

    #[test]
    fn journal_handle_records_survive_restart() {
        let dir = tmpdir("journal");
        {
            let (mut d, _) =
                Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
            let journal = d.journal();
            let (kind, payload) = d.state_mut().add(4, 40);
            journal.append(kind, &payload).unwrap();
        }
        let (d, report) = Durable::open(Tally::default(), &dir, StorageConfig::default()).unwrap();
        assert_eq!(report.records_replayed, 1);
        assert_eq!(d.state().totals.get(&4), Some(&40));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A set of serials mutated through shared references, mirroring how the
    /// coordinator's striped spent-token set is spent by concurrent fast
    /// paths: insert first, then journal the (idempotent) effect record.
    #[derive(Default)]
    struct SerialSet {
        serials: std::sync::Mutex<std::collections::BTreeSet<u64>>,
    }

    const INSERT: u8 = 9;

    impl SerialSet {
        fn insert(&self, serial: u64) -> (u8, Vec<u8>) {
            self.serials.lock().unwrap().insert(serial);
            let mut e = Encoder::new();
            e.put_u64(serial);
            (INSERT, e.finish())
        }
    }

    impl Persist for SerialSet {
        fn encode_snapshot(&self) -> Vec<u8> {
            let serials = self.serials.lock().unwrap();
            let mut e = Encoder::new();
            e.put_u32(serials.len() as u32);
            for serial in serials.iter() {
                e.put_u64(*serial);
            }
            e.finish()
        }

        fn restore_snapshot(&mut self, payload: &[u8]) -> Result<(), StorageError> {
            let mut d = Decoder::new(payload);
            let count = d.get_u32("serial count")?;
            let mut serials = std::collections::BTreeSet::new();
            for _ in 0..count {
                serials.insert(d.get_u64("serial")?);
            }
            d.finish()?;
            *self.serials.get_mut().unwrap() = serials;
            Ok(())
        }

        fn apply_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
            if kind != INSERT {
                return Err(StorageError::UnknownRecordKind { kind });
            }
            let mut d = Decoder::new(payload);
            let serial = d.get_u64("serial")?;
            d.finish()?;
            self.serials.get_mut().unwrap().insert(serial);
            Ok(())
        }
    }

    /// The checkpoint barrier: effects journalled by concurrent fast-path
    /// handles are never lost across generation swaps — each one is either
    /// captured by a snapshot or replayed from the live WAL suffix.
    #[test]
    fn concurrent_journal_with_checkpoints_recovers_every_effect() {
        let dir = tmpdir("barrier");
        let shared: Arc<SerialSet> = Arc::new(SerialSet::default());
        // `Durable` owns its state; wrap the Arc so fast-path threads and
        // the recovery machinery mutate the same shared set, the way the
        // coordinator shares its striped spent-token set.
        struct SharedSet(Arc<SerialSet>);
        impl Persist for SharedSet {
            fn encode_snapshot(&self) -> Vec<u8> {
                self.0.encode_snapshot()
            }
            fn restore_snapshot(&mut self, payload: &[u8]) -> Result<(), StorageError> {
                let mut inner = SerialSet::default();
                inner.restore_snapshot(payload)?;
                let restored = std::mem::take(inner.serials.get_mut().unwrap());
                *self.0.serials.lock().unwrap() = restored;
                Ok(())
            }
            fn apply_record(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
                let mut inner = SerialSet::default();
                inner.apply_record(kind, payload)?;
                let applied = std::mem::take(inner.serials.get_mut().unwrap());
                self.0.serials.lock().unwrap().extend(applied);
                Ok(())
            }
        }
        {
            let (mut d, _) = Durable::open(
                SharedSet(Arc::clone(&shared)),
                &dir,
                StorageConfig::default(),
            )
            .unwrap();
            let journal = d.journal();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let journal = journal.clone();
                    let shared = Arc::clone(&shared);
                    s.spawn(move || {
                        for i in 0..25u64 {
                            let (kind, payload) = shared.insert(t * 1000 + i);
                            journal.append(kind, &payload).unwrap();
                        }
                    });
                }
                // Checkpoint repeatedly while the appenders run.
                for _ in 0..5 {
                    d.checkpoint().unwrap();
                }
            });
            d.checkpoint().unwrap();
        }
        let recovered: Arc<SerialSet> = Arc::new(SerialSet::default());
        let (_, report) = Durable::open(
            SharedSet(Arc::clone(&recovered)),
            &dir,
            StorageConfig::default(),
        )
        .unwrap();
        assert!(report.recovered);
        let serials = recovered.serials.lock().unwrap();
        assert_eq!(serials.len(), 100, "every journalled effect recovered");
        for t in 0..4u64 {
            for i in 0..25u64 {
                assert!(serials.contains(&(t * 1000 + i)));
            }
        }
        drop(serials);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
