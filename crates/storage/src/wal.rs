//! The append-only write-ahead log.
//!
//! A WAL file is a concatenation of [`record`](crate::record) frames.
//! Opening a log scans it front to back; the scan stops at the first byte
//! range that fails validation and *truncates the file there* — a torn tail
//! from a crash mid-append (the only corruption an append-only discipline can
//! produce on an honest disk) costs exactly the records that had not finished
//! writing, never the prefix. Mid-file corruption (a bit flip under the torn
//! tail) truncates the same way: everything after the flip is gone, but the
//! validated prefix is recovered intact, and the caller learns how many bytes
//! were dropped.
//!
//! Durability is batched: [`Wal::append`] buffers through the OS and fsyncs
//! every `sync_every` records (1 = sync on every append). A crash loses at
//! most the appends since the last sync — the standard group-commit tradeoff,
//! surfaced here as an explicit knob instead of a hidden default.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use alpenhorn_obs::{Counter, Histogram};

use crate::record::{self, LogRecord, RecordError};
use crate::StorageError;

/// Cached handles into the global registry so the append hot path never
/// touches the registry lock. Durations observed here are wall-clock side
/// channels only — nothing deterministic reads them back.
struct WalMetrics {
    append_us: Arc<Histogram>,
    fsync_us: Arc<Histogram>,
    appends_total: Arc<Counter>,
    append_errors_total: Arc<Counter>,
    fsyncs_total: Arc<Counter>,
}

fn wal_metrics() -> &'static WalMetrics {
    static METRICS: OnceLock<WalMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = alpenhorn_obs::global();
        WalMetrics {
            append_us: r.histogram("storage_wal_append_us", &[]),
            fsync_us: r.histogram("storage_wal_fsync_us", &[]),
            appends_total: r.counter("storage_wal_appends_total", &[]),
            append_errors_total: r.counter("storage_wal_append_errors_total", &[]),
            fsyncs_total: r.counter("storage_wal_fsyncs_total", &[]),
        }
    })
}

/// What `Wal::open` found on disk.
#[derive(Debug)]
pub struct WalRecovery {
    /// Every valid record, in append order.
    pub records: Vec<LogRecord>,
    /// Bytes discarded from the tail (0 for a clean log).
    pub truncated_bytes: u64,
    /// The validation failure that ended the scan, if the log did not end
    /// cleanly. [`RecordError::Truncated`] is the benign torn-tail case.
    pub tail_error: Option<RecordError>,
}

/// An open, append-only log.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Bytes of validated/appended records currently in the file.
    len: u64,
    /// Appends since the last fsync.
    unsynced: u32,
    /// Fsync after this many appends (minimum 1).
    sync_every: u32,
    /// Set when a failed append may have left a partial record that could
    /// not be rolled back; every later append is refused (appending after
    /// mid-file garbage would be silently discarded at the next recovery).
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, validating and returning
    /// its contents. A torn or corrupt tail is truncated away so the file
    /// ends at the last valid record before any new append.
    pub fn open(
        path: impl AsRef<Path>,
        sync_every: u32,
    ) -> Result<(Self, WalRecovery), StorageError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        let mut records = Vec::new();
        let mut offset = 0usize;
        let mut tail_error = None;
        while offset < bytes.len() {
            match record::decode_at(&bytes, offset) {
                Ok((record, consumed)) => {
                    records.push(record);
                    offset += consumed;
                }
                Err(e) => {
                    tail_error = Some(e);
                    break;
                }
            }
        }
        let truncated_bytes = (bytes.len() - offset) as u64;

        let mut options = OpenOptions::new();
        options.create(true).append(true);
        let file = options.open(&path)?;
        if truncated_bytes > 0 {
            // Drop the bad tail so future appends start at a record boundary.
            file.set_len(offset as u64)?;
            file.sync_all()?;
        }
        let wal = Wal {
            file,
            path,
            len: offset as u64,
            unsynced: 0,
            sync_every: sync_every.max(1),
            poisoned: false,
        };
        Ok((
            wal,
            WalRecovery {
                records,
                truncated_bytes,
                tail_error,
            },
        ))
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes of records currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Whether a failed append has poisoned this log (reopen to recover).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Appends one record, fsyncing if the batching threshold is reached.
    ///
    /// `Err` means *this record is not in the log*: a failed write — or a
    /// failed fsync when this append crossed the batching threshold — is
    /// rolled back by truncating the file to the previous record boundary,
    /// so callers can safely undo the in-memory mutation the record
    /// described, and a partial record never sits mid-file where it would
    /// silently discard every later append at the next recovery. If the
    /// rollback itself fails, the log poisons itself and refuses further
    /// appends (reopening revalidates and truncates).
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<(), StorageError> {
        if self.poisoned {
            wal_metrics().append_errors_total.inc();
            return Err(StorageError::Io(std::io::Error::other(
                "WAL poisoned by an earlier failed append; reopen to recover",
            )));
        }
        let started = Instant::now();
        let encoded = record::encode(kind, payload);
        if let Err(e) = self.file.write_all(&encoded) {
            if self.file.set_len(self.len).is_err() {
                self.poisoned = true;
            }
            wal_metrics().append_errors_total.inc();
            return Err(e.into());
        }
        self.len += encoded.len() as u64;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            if let Err(e) = self.sync() {
                // The record reached the OS but not stable storage, and the
                // caller is about to be told it failed: take it back out so
                // a crash cannot replay an effect the caller rolled back.
                // (Earlier records in the batch stay: they were acknowledged
                // under the documented group-commit exposure.)
                let rollback = self.len - encoded.len() as u64;
                if self.file.set_len(rollback).is_ok() {
                    self.len = rollback;
                    self.unsynced -= 1;
                } else {
                    self.poisoned = true;
                }
                wal_metrics().append_errors_total.inc();
                return Err(e);
            }
        }
        let m = wal_metrics();
        m.appends_total.inc();
        m.append_us.observe_since(started);
        Ok(())
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), StorageError> {
        if self.unsynced > 0 {
            let started = Instant::now();
            self.file.sync_data()?;
            self.unsynced = 0;
            let m = wal_metrics();
            m.fsyncs_total.inc();
            m.fsync_us.observe_since(started);
        }
        Ok(())
    }

    /// Clones the underlying file handle so a group-commit leader can fsync
    /// outside the lock that guards this `Wal`.
    pub(crate) fn try_clone_file(&self) -> std::io::Result<File> {
        self.file.try_clone()
    }

    /// Marks every appended record as synced (a group-commit leader fsynced
    /// the whole file through a cloned handle).
    pub(crate) fn mark_synced(&mut self) {
        self.unsynced = 0;
    }

    /// Truncates the file back to `len`, which must be a record boundary at
    /// or below the last durable offset (group-commit rollback after a
    /// failed batched fsync). Poisons the log if the truncation itself
    /// fails, exactly like a failed append rollback.
    pub(crate) fn truncate_to(&mut self, len: u64) {
        debug_assert!(len <= self.len);
        if self.file.set_len(len).is_ok() {
            self.len = len;
            self.unsynced = 0;
        } else {
            self.poisoned = true;
        }
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best-effort final sync; an explicit `sync` is the reliable path.
        let _ = self.sync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("alpenhorn-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_reopen() {
        let dir = tmpdir("reopen");
        let path = dir.join("wal.log");
        {
            let (mut wal, recovery) = Wal::open(&path, 1).unwrap();
            assert!(recovery.records.is_empty());
            wal.append(1, b"first").unwrap();
            wal.append(2, b"second").unwrap();
            wal.sync().unwrap();
        }
        let (_, recovery) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(recovery.tail_error, None);
        assert_eq!(
            recovery.records,
            vec![
                LogRecord::new(1, b"first".to_vec()),
                LogRecord::new(2, b"second".to_vec()),
            ]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let full_len;
        {
            let (mut wal, _) = Wal::open(&path, 1).unwrap();
            wal.append(1, b"keep me").unwrap();
            wal.append(2, b"torn away").unwrap();
            wal.sync().unwrap();
            full_len = wal.len_bytes();
        }
        // Tear the second record mid-payload.
        let keep = record::encode(1, b"keep me").len() as u64;
        let file = OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(keep + 5).unwrap();
        drop(file);
        assert!(keep + 5 < full_len);

        let (mut wal, recovery) = Wal::open(&path, 1).unwrap();
        assert_eq!(
            recovery.records,
            vec![LogRecord::new(1, b"keep me".to_vec())]
        );
        assert_eq!(recovery.truncated_bytes, 5);
        assert_eq!(recovery.tail_error, Some(RecordError::Truncated));
        // New appends land cleanly after the truncated tail.
        wal.append(3, b"after recovery").unwrap();
        drop(wal);
        let (_, recovery) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovery.truncated_bytes, 0);
        assert_eq!(
            recovery.records,
            vec![
                LogRecord::new(1, b"keep me".to_vec()),
                LogRecord::new(3, b"after recovery".to_vec()),
            ]
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn bit_flip_truncates_from_the_flip() {
        let dir = tmpdir("flip");
        let path = dir.join("wal.log");
        {
            let (mut wal, _) = Wal::open(&path, 1).unwrap();
            for i in 0..5u8 {
                wal.append(i, &[i; 9]).unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let one = record::encode(0, &[0; 9]).len();
        // Flip a bit inside the third record's payload.
        bytes[2 * one + 10] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, recovery) = Wal::open(&path, 1).unwrap();
        assert_eq!(recovery.records.len(), 2);
        assert_eq!(recovery.tail_error, Some(RecordError::ChecksumMismatch));
        assert_eq!(recovery.truncated_bytes, 3 * one as u64);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sync_batching_counts_appends() {
        let dir = tmpdir("batch");
        let path = dir.join("wal.log");
        let (mut wal, _) = Wal::open(&path, 8).unwrap();
        for i in 0..20u8 {
            wal.append(0, &[i]).unwrap();
        }
        // 20 appends with sync_every=8 leaves 4 unsynced; explicit sync
        // flushes them.
        assert_eq!(wal.unsynced, 4);
        wal.sync().unwrap();
        assert_eq!(wal.unsynced, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
