//! # Durable state for Alpenhorn: log-structured WAL + snapshots
//!
//! Alpenhorn's servers and clients are long-lived: keywheels, registrations,
//! rate-limit budgets, and PKG key ratchets must survive process restarts, or
//! one crash deregisters the entire user base. This crate provides the
//! on-disk substrate:
//!
//! * [`record`] — the checksummed, versioned record format shared by the log
//!   and the snapshots. It reuses the magic + version + length + SHA-256
//!   framing discipline of `alpenhorn_wire::codec::Frame`, so torn writes,
//!   truncation, and bit flips are all caught before a byte of payload is
//!   trusted.
//! * [`wal`] — an append-only write-ahead log of records with configurable
//!   fsync batching. Opening a log replays it and *truncates at the first bad
//!   record*: a torn tail from a crash mid-append costs at most the records
//!   after the last sync, never the whole log.
//! * [`snapshot`] — atomically-renamed full-state snapshots. A snapshot is
//!   one record in its own file, written to a temp path, fsynced, then
//!   renamed, so a crash mid-snapshot leaves the previous generation intact.
//! * [`durable`] — [`Durable<T: Persist>`](durable::Durable), the generic
//!   replay engine tying the two together: state is recovered as
//!   *snapshot + log suffix*, mutations append effect records, and periodic
//!   checkpoints compact the log into a fresh snapshot generation.
//! * [`group`] — [`GroupWal`](group::GroupWal), leader-based group commit
//!   over one WAL so concurrent appenders batch their fsyncs, plus the
//!   cloneable [`Journal`](group::Journal) handle that lets fast-path
//!   threads journal effects without borrowing the `Durable` store.
//!
//! The design follows the append-only, sequential-write discipline of
//! log-structured storage (cf. LogRAID, arXiv:2402.17963): all writes are
//! appends or whole-file replacements, the on-disk contract is explicit and
//! versioned, and recovery is a single forward scan.
//!
//! Consumers: the coordinator (`alpenhorn-coordinator`) journals cluster
//! registrations, round counters, PKG ratchet positions, and rate-limit
//! budgets; the client (`alpenhorn`) saves and loads its full state (see
//! `Client::save_state`). See `docs/ARCHITECTURE.md` § "Durability &
//! recovery" for the format and compatibility rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod durable;
pub mod group;
pub mod record;
pub mod snapshot;
pub mod wal;

/// Shared payload codec helpers for [`Persist`] implementations, so every
/// consumer (coordinator journal, client saves) encodes common protocol
/// types the same way.
pub mod codec {
    use alpenhorn_wire::{Decoder, Encoder, Identity};

    use crate::StorageError;

    /// Appends an identity as length-prefixed UTF-8 bytes.
    pub fn put_identity(e: &mut Encoder, identity: &Identity) {
        e.put_var_bytes(identity.as_bytes());
    }

    /// Reads an identity written by [`put_identity`], re-validating it.
    pub fn get_identity(
        d: &mut Decoder<'_>,
        context: &'static str,
    ) -> Result<Identity, StorageError> {
        let bytes = d.get_var_bytes(context)?;
        let s = core::str::from_utf8(bytes).map_err(|_| StorageError::BadPayload { context })?;
        Identity::new(s).map_err(|_| StorageError::BadPayload { context })
    }
}

pub use durable::{Durable, Persist, RecoveryReport, StorageConfig};
pub use group::{GroupWal, Journal};
pub use record::{LogRecord, RecordError};
pub use wal::Wal;

/// Errors from the storage subsystem.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A record or snapshot failed structural validation (bad magic, version,
    /// length, or checksum). Recovery treats this as end-of-log; direct
    /// readers surface it.
    Corrupt(RecordError),
    /// A snapshot or record payload decoded structurally but its contents
    /// were not a valid encoding of the expected state.
    BadPayload {
        /// What was being decoded.
        context: &'static str,
    },
    /// A record kind that the replaying state does not understand. Replay
    /// stops: newer-format logs are not silently skipped over.
    UnknownRecordKind {
        /// The unrecognised kind byte.
        kind: u8,
    },
}

impl core::fmt::Display for StorageError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(e) => write!(f, "corrupt record: {e}"),
            StorageError::BadPayload { context } => {
                write!(f, "invalid payload while {context}")
            }
            StorageError::UnknownRecordKind { kind } => {
                write!(f, "unknown record kind {kind:#04x}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<RecordError> for StorageError {
    fn from(e: RecordError) -> Self {
        StorageError::Corrupt(e)
    }
}

impl From<alpenhorn_wire::WireError> for StorageError {
    fn from(_: alpenhorn_wire::WireError) -> Self {
        StorageError::BadPayload {
            context: "decoding a record payload",
        }
    }
}
