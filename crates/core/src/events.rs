//! Events surfaced to the application.
//!
//! The paper's prototype delivers `NewFriend` and `IncomingCall` callbacks;
//! this crate returns the equivalent information as values from the
//! round-processing methods, which an application drains after each round.

use alpenhorn_keywheel::SessionKey;
use alpenhorn_wire::{Identity, Round, SIGNING_PK_LEN};

/// Something that happened while processing a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A new friend request arrived (the paper's `NewFriend` callback).
    ///
    /// If the client's auto-accept policy is enabled (the default, matching
    /// the paper's walkthrough where Bob accepts because the PKGs vouched for
    /// the sender), a confirmation request is queued automatically; otherwise
    /// the application must call [`crate::Client::accept_friend_request`] or
    /// [`crate::Client::reject_friend_request`].
    FriendRequestReceived {
        /// The sender's email address.
        from: Identity,
        /// The sender's long-term signing key, attested by the PKGs.
        their_key: [u8; SIGNING_PK_LEN],
        /// Whether the request was accepted automatically.
        auto_accepted: bool,
    },
    /// A friendship is confirmed: both sides now share a keywheel.
    FriendConfirmed {
        /// The friend's email address.
        friend: Identity,
        /// The dialing round at which the shared keywheel starts.
        dialing_round: Round,
    },
    /// A friend request was discarded because it failed verification.
    FriendRequestRejected {
        /// The claimed sender.
        from: Identity,
        /// Human-readable reason (bad PKG multi-signature, bad sender
        /// signature, key mismatch with an out-of-band or TOFU key).
        reason: String,
    },
    /// The client placed an outgoing call this round (the return value of the
    /// paper's `Call`).
    OutgoingCallPlaced {
        /// The friend being called.
        friend: Identity,
        /// The application intent attached to the call.
        intent: u32,
        /// The session key both sides will derive.
        session_key: SessionKey,
        /// The dialing round the call was placed in.
        round: Round,
    },
    /// An incoming call was found in the round's Bloom filter (the paper's
    /// `IncomingCall` callback).
    IncomingCall {
        /// The calling friend.
        from: Identity,
        /// The application intent attached to the call.
        intent: u32,
        /// The session key both sides derive.
        session_key: SessionKey,
        /// The dialing round the call was received in.
        round: Round,
    },
}

impl ClientEvent {
    /// Convenience: whether this event is an incoming call.
    pub fn is_incoming_call(&self) -> bool {
        matches!(self, ClientEvent::IncomingCall { .. })
    }

    /// Convenience: whether this event is a confirmed friendship.
    pub fn is_friend_confirmed(&self) -> bool {
        matches!(self, ClientEvent::FriendConfirmed { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_predicates() {
        let confirmed = ClientEvent::FriendConfirmed {
            friend: Identity::new("a@b.co").unwrap(),
            dialing_round: Round(3),
        };
        assert!(confirmed.is_friend_confirmed());
        assert!(!confirmed.is_incoming_call());

        let call = ClientEvent::IncomingCall {
            from: Identity::new("a@b.co").unwrap(),
            intent: 1,
            session_key: SessionKey([0u8; 32]),
            round: Round(9),
        };
        assert!(call.is_incoming_call());
        assert!(!call.is_friend_confirmed());
    }
}
