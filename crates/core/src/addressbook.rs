//! The client's address book.
//!
//! §3.1 of the paper: each client maintains an address book of friends,
//! consisting primarily of the keywheel table. This module tracks the
//! per-friend metadata around the keywheel: the friend's long-term signing
//! key (learned out-of-band or by trust-on-first-use) and the state of the
//! friendship handshake.

use std::collections::BTreeMap;

use alpenhorn_wire::{Identity, SIGNING_PK_LEN};

/// State of a friendship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FriendStatus {
    /// We sent an add-friend request and are waiting for the reply.
    OutgoingPending,
    /// We received a request and have not yet accepted or rejected it.
    IncomingPending,
    /// Both sides exchanged requests; the keywheel is established.
    Confirmed,
}

/// One address book entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FriendEntry {
    /// The friend's email address.
    pub identity: Identity,
    /// The friend's long-term signing key, if known. Populated out-of-band
    /// (business card), by trust-on-first-use from their first friend
    /// request, or both (in which case they must agree).
    pub long_term_key: Option<[u8; SIGNING_PK_LEN]>,
    /// Whether the key was provided out-of-band (stronger than TOFU).
    pub key_out_of_band: bool,
    /// Current handshake status.
    pub status: FriendStatus,
}

/// The address book: per-friend metadata (the keywheels themselves live in
/// [`alpenhorn_keywheel::KeywheelTable`]).
#[derive(Debug, Default)]
pub struct AddressBook {
    entries: BTreeMap<Identity, FriendEntry>,
}

impl AddressBook {
    /// Creates an empty address book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the entry for `identity`, if present.
    pub fn get(&self, identity: &Identity) -> Option<&FriendEntry> {
        self.entries.get(identity)
    }

    /// Returns a mutable entry for `identity`, if present.
    pub fn get_mut(&mut self, identity: &Identity) -> Option<&mut FriendEntry> {
        self.entries.get_mut(identity)
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, entry: FriendEntry) {
        self.entries.insert(entry.identity.clone(), entry);
    }

    /// Removes an entry (the paper's recommendation when a user wants to be
    /// able to deny a past friendship). Returns whether it existed.
    pub fn remove(&mut self, identity: &Identity) -> bool {
        self.entries.remove(identity).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the address book is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &FriendEntry> {
        self.entries.values()
    }

    /// All confirmed friends.
    pub fn confirmed(&self) -> impl Iterator<Item = &FriendEntry> {
        self.entries
            .values()
            .filter(|e| e.status == FriendStatus::Confirmed)
    }

    /// Records a key for `identity` using trust-on-first-use semantics:
    ///
    /// * if no key is known, the new key is stored and `true` is returned;
    /// * if a key is already known (out-of-band or TOFU), the new key must
    ///   match it; a mismatch returns `false` and leaves the stored key
    ///   untouched.
    pub fn observe_key(&mut self, identity: &Identity, key: &[u8; SIGNING_PK_LEN]) -> bool {
        match self.entries.get_mut(identity) {
            Some(entry) => match &entry.long_term_key {
                Some(known) => known == key,
                None => {
                    entry.long_term_key = Some(*key);
                    true
                }
            },
            None => {
                self.insert(FriendEntry {
                    identity: identity.clone(),
                    long_term_key: Some(*key),
                    key_out_of_band: false,
                    status: FriendStatus::IncomingPending,
                });
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Identity {
        Identity::new(s).unwrap()
    }

    fn entry(s: &str, status: FriendStatus) -> FriendEntry {
        FriendEntry {
            identity: id(s),
            long_term_key: None,
            key_out_of_band: false,
            status,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut book = AddressBook::new();
        assert!(book.is_empty());
        book.insert(entry("bob@gmail.com", FriendStatus::OutgoingPending));
        assert_eq!(book.len(), 1);
        assert_eq!(
            book.get(&id("bob@gmail.com")).unwrap().status,
            FriendStatus::OutgoingPending
        );
        assert!(book.remove(&id("bob@gmail.com")));
        assert!(!book.remove(&id("bob@gmail.com")));
    }

    #[test]
    fn confirmed_filter() {
        let mut book = AddressBook::new();
        book.insert(entry("a@x.com", FriendStatus::Confirmed));
        book.insert(entry("b@x.com", FriendStatus::OutgoingPending));
        book.insert(entry("c@x.com", FriendStatus::Confirmed));
        let confirmed: Vec<_> = book.confirmed().map(|e| e.identity.clone()).collect();
        assert_eq!(confirmed, vec![id("a@x.com"), id("c@x.com")]);
    }

    #[test]
    fn tofu_first_key_accepted_second_must_match() {
        let mut book = AddressBook::new();
        let alice = id("alice@example.com");
        assert!(book.observe_key(&alice, &[1u8; SIGNING_PK_LEN]));
        // Same key again: fine.
        assert!(book.observe_key(&alice, &[1u8; SIGNING_PK_LEN]));
        // Different key: rejected, original kept.
        assert!(!book.observe_key(&alice, &[2u8; SIGNING_PK_LEN]));
        assert_eq!(
            book.get(&alice).unwrap().long_term_key,
            Some([1u8; SIGNING_PK_LEN])
        );
    }

    #[test]
    fn out_of_band_key_respected_by_observe() {
        let mut book = AddressBook::new();
        let bob = id("bob@gmail.com");
        book.insert(FriendEntry {
            identity: bob.clone(),
            long_term_key: Some([7u8; SIGNING_PK_LEN]),
            key_out_of_band: true,
            status: FriendStatus::OutgoingPending,
        });
        assert!(!book.observe_key(&bob, &[8u8; SIGNING_PK_LEN]));
        assert!(book.observe_key(&bob, &[7u8; SIGNING_PK_LEN]));
    }

    #[test]
    fn existing_entry_without_key_learns_key() {
        let mut book = AddressBook::new();
        let carol = id("carol@x.org");
        book.insert(entry("carol@x.org", FriendStatus::OutgoingPending));
        assert!(book.observe_key(&carol, &[3u8; SIGNING_PK_LEN]));
        assert_eq!(
            book.get(&carol).unwrap().long_term_key,
            Some([3u8; SIGNING_PK_LEN])
        );
        // Status was not clobbered.
        assert_eq!(
            book.get(&carol).unwrap().status,
            FriendStatus::OutgoingPending
        );
    }
}
