//! The Alpenhorn client.
//!
//! Implements Algorithm 1 (the add-friend round) and the dialing protocol of
//! §5 against a coordinator reached through a [`Transport`] — the in-process
//! [`crate::transport::LoopbackTransport`] for tests and simulation, or
//! [`crate::transport::TcpTransport`] against a networked `alpenhornd`
//! daemon. The client is round driven:
//!
//! * **Add-friend round**: [`Client::participate_add_friend`] fetches the
//!   open round's parameters, extracts the round's IBE identity keys from
//!   every PKG, verifies their attestations, and submits exactly one
//!   fixed-size request (a real friend request if one is queued, cover
//!   traffic otherwise). After the coordinator closes the round,
//!   [`Client::process_add_friend_mailbox`] downloads the client's mailbox,
//!   trial-decrypts every ciphertext, verifies signatures, updates the
//!   address book and keywheels, and erases the round's identity keys.
//! * **Dialing round**: [`Client::participate_dialing`] submits one (possibly
//!   cover) dial token; [`Client::process_dialing_mailbox`] downloads the
//!   round's Bloom filter, tests every (friend, intent) token, surfaces
//!   incoming calls, and advances the keywheels (forward secrecy).
//!
//! When the coordinator enforces rate limiting (§9), the client transparently
//! obtains one blind-signed token per submission via
//! [`Request::IssueRateLimitToken`]; issuance is authenticated, spending is
//! unlinkable.

use std::collections::{HashMap, VecDeque};

use alpenhorn_bloom::BloomFilter;
use alpenhorn_coordinator::ratelimit;
use alpenhorn_crypto::ChaChaRng;
use alpenhorn_ibe::anytrust::{aggregate_identity_keys, aggregate_master_publics};
use alpenhorn_ibe::bf::{
    decrypt as ibe_decrypt, encrypt as ibe_encrypt, IdentityPrivateKey, MasterPublic,
};
use alpenhorn_ibe::blind::{blind, unblind, BlindedSignature};
use alpenhorn_ibe::dh::{DhPublic, DhSecret};
use alpenhorn_ibe::sig::{
    aggregate_signatures, aggregate_verifying_keys, Signature, SigningKey, VerifyingKey,
};
use alpenhorn_keywheel::{KeywheelTable, SessionKey};
use alpenhorn_mixnet::onion::wrap_onion;
use alpenhorn_pkg::server::extraction_request_message;
use alpenhorn_wire::rpc::RATE_LIMIT_SERIAL_LEN;
use alpenhorn_wire::{
    AddFriendEnvelope, DialRequest, DialToken, FriendRequest, Identity, MailboxId, RateLimitToken,
    Request, Response, Round, RoundKind, SIGNING_PK_LEN,
};
use rand::RngCore;

use crate::addressbook::{AddressBook, FriendEntry, FriendStatus};
use crate::error::ClientError;
use crate::events::ClientEvent;
use crate::retry::RetryPolicy;
use crate::transport::Transport;

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Number of application intents (§5.3). The client enumerates
    /// `0..num_intents` tokens per friend when scanning dialing mailboxes.
    pub num_intents: u32,
    /// Whether to automatically accept incoming friend requests (the paper's
    /// walkthrough behaviour). When false, requests wait for
    /// [`Client::accept_friend_request`].
    pub auto_accept_friends: bool,
    /// How many dialing rounds in the future a newly proposed keywheel should
    /// start (gives both sides time to finish the add-friend exchange).
    pub dialing_round_slack: u64,
    /// Retry/backoff/deadline policy applied to every coordinator RPC (see
    /// [`crate::retry`]). The default, [`RetryPolicy::none`], makes exactly
    /// one attempt and surfaces failures raw. Not persisted by
    /// [`Client::save_state`] — it is an operational knob, not protocol
    /// state; re-apply it after loading.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            num_intents: 10,
            auto_accept_friends: true,
            dialing_round_slack: 2,
            retry: RetryPolicy::none(),
        }
    }
}

/// A queued outgoing add-friend transmission.
enum OutgoingAddFriend {
    /// We are initiating: first request to a new friend.
    Initiate { to: Identity },
    /// We are replying to (confirming) a received request.
    Reply {
        to: Identity,
        their_dh_key: [u8; alpenhorn_wire::DH_PK_LEN],
        their_round: Round,
    },
}

/// State about a request we sent and for which we await the confirmation.
struct PendingOutgoing {
    dh_secret: DhSecret,
    proposed_round: Round,
}

/// A received friend request awaiting an accept/reject decision.
struct PendingIncoming {
    their_key: [u8; SIGNING_PK_LEN],
    their_dh_key: [u8; alpenhorn_wire::DH_PK_LEN],
    their_round: Round,
}

/// A queued outgoing call.
struct OutgoingCall {
    friend: Identity,
    intent: u32,
}

/// The client's typed view of an open add-friend round, reconstructed from
/// the wire-form round info.
struct AddFriendRoundView {
    round: Round,
    onion_keys: Vec<DhPublic>,
    master_public: MasterPublic,
    num_mailboxes: u32,
    rate_limited: bool,
}

/// The client's typed view of an open dialing round.
struct DialingRoundView {
    round: Round,
    onion_keys: Vec<DhPublic>,
    num_mailboxes: u32,
    rate_limited: bool,
}

/// Derives the retry-jitter RNG from 32 bytes of seed material. Domain
/// separated from every protocol use of the seed, so drawing jitter never
/// shifts the protocol randomness (a retried run stays byte-identical to a
/// fault-free one).
fn derive_retry_rng(seed: &[u8]) -> ChaChaRng {
    let mut input = Vec::with_capacity(seed.len() + 26);
    input.extend_from_slice(seed);
    input.extend_from_slice(b"alpenhorn retry jitter rng");
    ChaChaRng::from_seed_bytes(alpenhorn_crypto::sha256::digest(&input))
}

/// Decodes the onion keys announced in a round info. An empty chain is
/// rejected: submitting through zero mixnet hops would put the request on
/// the wire unwrapped.
fn decode_onion_keys(bytes: &[[u8; alpenhorn_wire::G1_LEN]]) -> Result<Vec<DhPublic>, ClientError> {
    if bytes.is_empty() {
        return Err(ClientError::UnexpectedResponse {
            context: "validating the round's onion key chain",
        });
    }
    bytes
        .iter()
        .map(|key| DhPublic::from_bytes(key))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|_| ClientError::UnexpectedResponse {
            context: "decoding round onion keys",
        })
}

/// The Alpenhorn client for one user.
pub struct Client {
    identity: Identity,
    config: ClientConfig,
    signing_key: SigningKey,
    /// The PKGs' long-term verification keys (ship with the software, §3.3).
    pkg_keys: Vec<VerifyingKey>,
    registered: bool,

    address_book: AddressBook,
    keywheels: KeywheelTable,

    /// Outgoing add-friend transmissions, one sent per round.
    outgoing_add_friend: VecDeque<OutgoingAddFriend>,
    /// Sent requests awaiting the friend's confirmation.
    pending_outgoing: HashMap<Identity, PendingOutgoing>,
    /// Received requests awaiting an application decision.
    pending_incoming: HashMap<Identity, PendingIncoming>,
    /// Outgoing calls, one placed per dialing round.
    outgoing_calls: VecDeque<OutgoingCall>,

    /// Identity key and mailbox count for the currently open add-friend round
    /// (erased after the mailbox is scanned, §4.4).
    round_identity_key: Option<(Round, u32, IdentityPrivateKey)>,
    /// The PKG multi-signature over (identity, signing key, round) for the
    /// current round, included in outgoing requests.
    round_attestation: Option<(Round, Signature)>,
    /// Round and mailbox count of the dialing round last participated in
    /// (consumed by mailbox processing).
    dialing_round_state: Option<(Round, u32)>,
    /// The client's view of the next dialing round (used to propose keywheel
    /// start rounds).
    next_dialing_round: Round,
    /// The dial token this client itself sent in the current dialing round.
    /// Dial tokens carry no direction, so when caller and callee happen to
    /// share a mailbox the caller would otherwise see its own token and
    /// report a phantom incoming call.
    sent_dial_token: Option<(Round, DialToken)>,
    /// An issued-but-unspent rate-limit token, kept across a failed
    /// participation so the retry reuses it instead of burning another unit
    /// of the daily issuance budget.
    unspent_rate_limit_token: Option<(RoundKind, Round, RateLimitToken)>,

    /// Scratch for the innermost request bytes of the per-round submission,
    /// reused across rounds; [`wrap_onion`] then builds the onion around it
    /// in place, in one buffer of the exact final size.
    payload_scratch: Vec<u8>,

    rng: ChaChaRng,
    /// Jitter stream for retry backoff, deliberately independent of (and
    /// never persisted with) the protocol RNG `rng`: retries must not
    /// perturb the deterministic event stream a seed produces.
    retry_rng: ChaChaRng,
}

impl Client {
    /// Creates a client for `identity`, generating a fresh long-term signing
    /// key. `pkg_keys` are the PKG verification keys distributed with the
    /// application.
    pub fn new(
        identity: Identity,
        pkg_keys: Vec<VerifyingKey>,
        config: ClientConfig,
        seed: [u8; 32],
    ) -> Self {
        let mut rng = ChaChaRng::from_seed_bytes(seed);
        let signing_key = SigningKey::generate(&mut rng);
        let retry_rng = derive_retry_rng(&seed);
        Client {
            identity,
            config,
            signing_key,
            pkg_keys,
            registered: false,
            address_book: AddressBook::new(),
            keywheels: KeywheelTable::new(),
            outgoing_add_friend: VecDeque::new(),
            pending_outgoing: HashMap::new(),
            pending_incoming: HashMap::new(),
            outgoing_calls: VecDeque::new(),
            round_identity_key: None,
            round_attestation: None,
            dialing_round_state: None,
            next_dialing_round: Round::FIRST,
            sent_dial_token: None,
            unspent_rate_limit_token: None,
            payload_scratch: Vec::new(),
            rng,
            retry_rng,
        }
    }

    /// Issues `request` through the transport under the configured
    /// [`RetryPolicy`], surfacing server-reported errors as typed
    /// [`ClientError`]s. Every client RPC funnels through here, so the
    /// policy uniformly covers registration, token issuance, submissions,
    /// and mailbox fetches.
    fn rpc<T: Transport + ?Sized>(
        &mut self,
        net: &mut T,
        request: Request,
    ) -> Result<Response, ClientError> {
        crate::retry::execute(&self.config.retry, &mut self.retry_rng, net, request)
    }

    /// Replaces the retry/backoff/deadline policy applied to every RPC.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.config.retry = policy;
    }

    /// The retry policy currently applied to every RPC.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.config.retry
    }

    /// The client's own identity.
    pub fn identity(&self) -> &Identity {
        &self.identity
    }

    /// The client's long-term signing public key (the paper's
    /// `MySigningKey()`), for sharing with friends out-of-band.
    pub fn signing_public_key(&self) -> VerifyingKey {
        self.signing_key.verifying_key()
    }

    /// The address book (read-only view).
    pub fn address_book(&self) -> &AddressBook {
        &self.address_book
    }

    /// The keywheel table (read-only view).
    pub fn keywheels(&self) -> &KeywheelTable {
        &self.keywheels
    }

    /// Whether registration has completed.
    pub fn is_registered(&self) -> bool {
        self.registered
    }

    /// Registers this client's identity and signing key with every PKG (the
    /// paper's `Register(email)`), completing the email confirmation
    /// round-trip.
    pub fn register<T: Transport>(&mut self, net: &mut T) -> Result<(), ClientError> {
        if self.registered {
            // Registration is idempotent from the client's point of view; the
            // PKGs already hold this key and re-running the email round trip
            // would be a no-op.
            return Ok(());
        }
        match self.rpc(
            net,
            Request::Register {
                identity: self.identity.clone(),
                signing_key: self.signing_key.verifying_key().to_bytes(),
            },
        )? {
            Response::Ack => {}
            _ => {
                return Err(ClientError::UnexpectedResponse {
                    context: "registering",
                })
            }
        }
        match self.rpc(
            net,
            Request::CompleteRegistration {
                identity: self.identity.clone(),
            },
        )? {
            Response::Ack => {}
            _ => {
                return Err(ClientError::UnexpectedResponse {
                    context: "completing registration",
                })
            }
        }
        self.registered = true;
        Ok(())
    }

    /// Deregisters this identity at every PKG (signed with the long-term
    /// key). The client keeps its local state; pair with
    /// [`Client::reset_after_compromise`] for the §9 recovery flow.
    pub fn deregister<T: Transport>(&mut self, net: &mut T) -> Result<(), ClientError> {
        let signature = self.sign_deregistration();
        match self.rpc(
            net,
            Request::Deregister {
                identity: self.identity.clone(),
                signature: signature.to_bytes(),
            },
        )? {
            Response::Ack => {
                self.registered = false;
                Ok(())
            }
            _ => Err(ClientError::UnexpectedResponse {
                context: "deregistering",
            }),
        }
    }

    /// Queues an add-friend request to `friend` (the paper's
    /// `AddFriend(email, theirKey)`), optionally pinning the friend's
    /// long-term key if it was obtained out-of-band.
    pub fn add_friend(&mut self, friend: Identity, their_key: Option<VerifyingKey>) {
        self.address_book.insert(FriendEntry {
            identity: friend.clone(),
            long_term_key: their_key.map(|k| k.to_bytes()),
            key_out_of_band: their_key.is_some(),
            status: FriendStatus::OutgoingPending,
        });
        self.outgoing_add_friend
            .push_back(OutgoingAddFriend::Initiate { to: friend });
    }

    /// Queues a call to `friend` with the application-specific `intent` (the
    /// paper's `Call(email, intent)`). The session key is surfaced in an
    /// [`ClientEvent::OutgoingCallPlaced`] event when the call is actually
    /// transmitted in the next dialing round.
    pub fn call(&mut self, friend: Identity, intent: u32) -> Result<(), ClientError> {
        if intent >= self.config.num_intents {
            return Err(ClientError::InvalidIntent {
                intent,
                num_intents: self.config.num_intents,
            });
        }
        if !self.keywheels.contains(&friend) {
            return Err(ClientError::NotAFriend(friend));
        }
        self.outgoing_calls
            .push_back(OutgoingCall { friend, intent });
        Ok(())
    }

    /// Accepts a pending incoming friend request, queueing the confirmation
    /// request for the next add-friend round.
    pub fn accept_friend_request(&mut self, from: &Identity) -> Result<(), ClientError> {
        let pending = self
            .pending_incoming
            .remove(from)
            .ok_or_else(|| ClientError::NoPendingRequest(from.clone()))?;
        self.queue_reply(from.clone(), pending);
        Ok(())
    }

    /// Rejects (drops) a pending incoming friend request.
    pub fn reject_friend_request(&mut self, from: &Identity) -> Result<(), ClientError> {
        self.pending_incoming
            .remove(from)
            .ok_or_else(|| ClientError::NoPendingRequest(from.clone()))?;
        self.address_book.remove(from);
        Ok(())
    }

    /// Removes a friend entirely: address book entry and keywheel are erased
    /// (§3.2: after removal, Alpenhorn's guarantees again hide whether the
    /// two users were ever friends).
    pub fn remove_friend(&mut self, friend: &Identity) {
        self.address_book.remove(friend);
        self.keywheels.remove(friend);
        self.pending_outgoing.remove(friend);
        self.pending_incoming.remove(friend);
    }

    /// Wipes all per-friend secrets and pending state, and rotates the
    /// long-term signing key. This is the client-compromise recovery path
    /// (§9): after calling this the user must re-register (after
    /// deregistering with the old key) and re-run add-friend with each friend.
    pub fn reset_after_compromise(&mut self) {
        let friends: Vec<Identity> = self
            .address_book
            .iter()
            .map(|e| e.identity.clone())
            .collect();
        for friend in friends {
            self.keywheels.remove(&friend);
        }
        self.address_book = AddressBook::new();
        self.pending_outgoing.clear();
        self.pending_incoming.clear();
        self.outgoing_add_friend.clear();
        self.outgoing_calls.clear();
        self.round_identity_key = None;
        self.round_attestation = None;
        self.unspent_rate_limit_token = None;
        self.signing_key = SigningKey::generate(&mut self.rng);
        self.registered = false;
    }

    /// Signs a deregistration request for this identity (sent to the PKGs via
    /// [`Request::Deregister`]).
    pub fn sign_deregistration(&self) -> Signature {
        self.signing_key
            .sign(&alpenhorn_pkg::server::deregistration_message(
                &self.identity,
            ))
    }

    // ------------------------------------------------------------------
    // Rate limiting (§9)
    // ------------------------------------------------------------------

    /// Obtains one spendable rate-limit token for a submission to `round`:
    /// blinds a fresh serial's spend message, has the coordinator blind-sign
    /// it (authenticated, budgeted), and unblinds the signature. The
    /// coordinator cannot link the spent token back to this issuance.
    fn acquire_rate_limit_token<T: Transport>(
        &mut self,
        net: &mut T,
        kind: RoundKind,
        round: Round,
    ) -> Result<RateLimitToken, ClientError> {
        // Reuse a token acquired for this round by a participation attempt
        // that later failed: the budget was already charged for it.
        if let Some((cached_kind, cached_round, token)) = self.unspent_rate_limit_token {
            if cached_kind == kind && cached_round == round {
                return Ok(token);
            }
        }
        let mut serial = [0u8; RATE_LIMIT_SERIAL_LEN];
        self.rng.fill_bytes(&mut serial);
        let message = ratelimit::spend_message(kind, round, &serial);
        let (blinded, factor) = blind(&message, &mut self.rng);
        let blinded_bytes = blinded.to_bytes();
        let auth = self
            .signing_key
            .sign(&ratelimit::issue_message(&self.identity, &blinded_bytes));
        let response = self.rpc(
            net,
            Request::IssueRateLimitToken {
                identity: self.identity.clone(),
                blinded: blinded_bytes,
                auth: auth.to_bytes(),
            },
        )?;
        let Response::TokenIssued { blind_signature } = response else {
            return Err(ClientError::UnexpectedResponse {
                context: "requesting a rate-limit token",
            });
        };
        let blind_signature = BlindedSignature::from_bytes(&blind_signature).map_err(|_| {
            ClientError::UnexpectedResponse {
                context: "unblinding a rate-limit token",
            }
        })?;
        let token = RateLimitToken {
            serial,
            signature: unblind(&blind_signature, &factor).to_bytes(),
        };
        // Remember the token until it is actually spent, so a failure later
        // in this participation does not strand a unit of budget.
        self.unspent_rate_limit_token = Some((kind, round, token));
        Ok(token)
    }

    // ------------------------------------------------------------------
    // Add-friend rounds (Algorithm 1)
    // ------------------------------------------------------------------

    /// Fetches and validates the open add-friend round's parameters.
    fn fetch_add_friend_round<T: Transport>(
        &mut self,
        net: &mut T,
    ) -> Result<AddFriendRoundView, ClientError> {
        let Response::AddFriendRoundInfo(info) = self.rpc(net, Request::GetAddFriendRoundInfo)?
        else {
            return Err(ClientError::UnexpectedResponse {
                context: "fetching add-friend round info",
            });
        };
        let onion_keys = decode_onion_keys(&info.onion_keys)?;
        let pkg_publics = info
            .pkg_publics
            .iter()
            .map(|bytes| MasterPublic::from_bytes(bytes))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| ClientError::UnexpectedResponse {
                context: "decoding PKG master publics",
            })?;
        if pkg_publics.is_empty() || info.num_mailboxes == 0 {
            return Err(ClientError::UnexpectedResponse {
                context: "validating add-friend round info",
            });
        }
        let master_public = aggregate_master_publics(&pkg_publics);
        Ok(AddFriendRoundView {
            round: info.round,
            onion_keys,
            master_public,
            num_mailboxes: info.num_mailboxes,
            rate_limited: info.rate_limited,
        })
    }

    /// Participates in the open add-friend round: fetches the round
    /// parameters, extracts identity keys from the PKGs (step 1), then signs,
    /// encrypts, onion-wraps and submits one request — real if one is queued,
    /// cover otherwise (steps 2-3). Returns the round participated in.
    pub fn participate_add_friend<T: Transport>(
        &mut self,
        net: &mut T,
    ) -> Result<Round, ClientError> {
        if !self.registered {
            return Err(ClientError::NotRegistered);
        }
        let view = self.fetch_add_friend_round(net)?;

        // Acquire the rate-limit token before any state is mutated: a
        // budget failure here must leave queued friend requests queued, not
        // silently degrade them into cover traffic.
        let token = if view.rate_limited {
            Some(self.acquire_rate_limit_token(net, RoundKind::AddFriend, view.round)?)
        } else {
            None
        };

        // Step 1: acquire identity keys and PKG attestations.
        let auth = self
            .signing_key
            .sign(&extraction_request_message(&self.identity, view.round));
        let Response::IdentityKeys(shares) = self.rpc(
            net,
            Request::ExtractIdentityKeys {
                identity: self.identity.clone(),
                round: view.round,
                auth: auth.to_bytes(),
            },
        )?
        else {
            return Err(ClientError::UnexpectedResponse {
                context: "extracting identity keys",
            });
        };
        // Verify each PKG's attestation with its long-term key before
        // trusting the aggregate (a malicious PKG returning garbage would
        // otherwise break our own outgoing requests).
        let attestation_msg = FriendRequest::pkg_attestation_message(
            &self.identity,
            &self.signing_key.verifying_key().to_bytes(),
            view.round,
        );
        let mut identity_keys = Vec::with_capacity(shares.len());
        let mut attestations = Vec::with_capacity(shares.len());
        for share in &shares {
            let identity_key =
                IdentityPrivateKey::from_bytes(&share.identity_key).map_err(|_| {
                    ClientError::UnexpectedResponse {
                        context: "decoding an identity key share",
                    }
                })?;
            let attestation = Signature::from_bytes(&share.attestation).map_err(|_| {
                ClientError::UnexpectedResponse {
                    context: "decoding a PKG attestation",
                }
            })?;
            identity_keys.push(identity_key);
            attestations.push(attestation);
        }
        // Every response must be covered by a configured verification key —
        // an extra, unverifiable response folded into the aggregate would
        // defeat the anytrust check. (An empty `pkg_keys` is the explicit
        // verification opt-out.)
        if !self.pkg_keys.is_empty() {
            if shares.len() != self.pkg_keys.len() {
                return Err(ClientError::PkgResponseCount {
                    expected: self.pkg_keys.len(),
                    actual: shares.len(),
                });
            }
            for (i, attestation) in attestations.iter().enumerate() {
                if !self.pkg_keys[i].verify(&attestation_msg, attestation) {
                    return Err(ClientError::Coordinator(
                        alpenhorn_coordinator::CoordinatorError::CommitmentMismatch {
                            pkg_index: i,
                        },
                    ));
                }
            }
        }
        let identity_key = aggregate_identity_keys(&identity_keys);
        let attestation = aggregate_signatures(&attestations);
        self.round_identity_key = Some((view.round, view.num_mailboxes, identity_key));
        self.round_attestation = Some((view.round, attestation));

        // Steps 2-3: build and submit exactly one fixed-size request. The
        // envelope is encoded into a reused scratch buffer and the onion is
        // built in place around it, at its exact final size. The queued item
        // is held aside so a failed submission can put it back at the head
        // of the queue for the next round (over TCP the submit can fail for
        // reasons the old in-process API could not hit); a build failure
        // means the item itself is malformed and it is dropped instead.
        let queued = self.outgoing_add_friend.pop_front();
        let envelope = self.build_add_friend_envelope(queued.as_ref(), &view)?;
        envelope.encode_into(&mut self.payload_scratch);
        let onion = wrap_onion(&self.payload_scratch, &view.onion_keys, &mut self.rng);
        let submitted = self.rpc(
            net,
            Request::SubmitAddFriend {
                round: view.round,
                onion,
                token,
            },
        );
        match submitted {
            Ok(Response::Ack) => {
                self.unspent_rate_limit_token = None;
                Ok(view.round)
            }
            Ok(_) => {
                if let Some(item) = queued {
                    self.outgoing_add_friend.push_front(item);
                }
                Err(ClientError::UnexpectedResponse {
                    context: "submitting an add-friend request",
                })
            }
            Err(e) => {
                if let Some(item) = queued {
                    self.outgoing_add_friend.push_front(item);
                }
                Err(e)
            }
        }
    }

    /// Builds this round's add-friend envelope: a real request if one is
    /// queued, cover traffic otherwise. The queued item stays owned by the
    /// caller so it can be re-queued if the subsequent submission fails.
    fn build_add_friend_envelope(
        &mut self,
        outgoing: Option<&OutgoingAddFriend>,
        view: &AddFriendRoundView,
    ) -> Result<AddFriendEnvelope, ClientError> {
        let Some(outgoing) = outgoing else {
            return Ok(AddFriendEnvelope::cover());
        };
        let (recipient, dialing_round, dh_public) = match outgoing {
            OutgoingAddFriend::Initiate { to } => {
                let dh_secret = DhSecret::generate(&mut self.rng);
                let dh_public = dh_secret.public();
                let proposed = self.propose_dialing_round();
                self.pending_outgoing.insert(
                    to.clone(),
                    PendingOutgoing {
                        dh_secret,
                        proposed_round: proposed,
                    },
                );
                (to.clone(), proposed, dh_public)
            }
            OutgoingAddFriend::Reply {
                to,
                their_dh_key,
                their_round,
            } => {
                // Generate our ephemeral key, agree on the keywheel now, and
                // tell the initiator the final start round.
                let dh_secret = DhSecret::generate(&mut self.rng);
                let dh_public = dh_secret.public();
                let final_round = Round(their_round.0.max(self.propose_dialing_round().0));
                let their_public = DhPublic::from_bytes(their_dh_key)
                    .map_err(|_| ClientError::NoPendingRequest(to.clone()))?;
                let shared = dh_secret.shared_secret(&their_public);
                self.keywheels.insert(to.clone(), shared, final_round);
                if let Some(entry) = self.address_book.get_mut(to) {
                    entry.status = FriendStatus::Confirmed;
                }
                (to.clone(), final_round, dh_public)
            }
        };

        let (_, attestation) = self
            .round_attestation
            .as_ref()
            .expect("participate_add_friend sets the attestation before building");
        let dialing_key = dh_public.to_bytes();
        let sender_sig = self.signing_key.sign(&FriendRequest::signed_message_parts(
            &self.identity,
            &dialing_key,
            dialing_round,
        ));
        let request = FriendRequest {
            sender: self.identity.clone(),
            sender_key: self.signing_key.verifying_key().to_bytes(),
            sender_sig: sender_sig.to_bytes(),
            pkg_sigs: attestation.to_bytes(),
            pkg_round: view.round,
            dialing_key,
            dialing_round,
        };
        let plaintext = request.encode();
        let ciphertext = ibe_encrypt(
            &view.master_public,
            recipient.as_bytes(),
            &plaintext,
            &mut self.rng,
        );
        debug_assert_eq!(ciphertext.len(), AddFriendEnvelope::CIPHERTEXT_LEN);
        Ok(AddFriendEnvelope {
            mailbox: MailboxId::for_recipient(&recipient, view.num_mailboxes),
            ciphertext,
        })
    }

    /// Downloads and scans this client's add-friend mailbox for the round it
    /// last participated in (steps 4-6 of Algorithm 1), then erases the round
    /// identity key.
    pub fn process_add_friend_mailbox<T: Transport>(
        &mut self,
        net: &mut T,
    ) -> Result<Vec<ClientEvent>, ClientError> {
        // Destroy the round identity key only after the mailbox is in hand:
        // a transient transport failure must leave the round retryable, or
        // every request addressed to this client that round is lost.
        let (round, num_mailboxes, identity_key) =
            self.round_identity_key.ok_or(ClientError::NoRoundState)?;
        let mailbox = MailboxId::for_recipient(&self.identity, num_mailboxes);
        let contents = match self.rpc(net, Request::FetchAddFriendMailbox { round, mailbox })? {
            Response::AddFriendMailbox { contents } => contents,
            _ => {
                return Err(ClientError::UnexpectedResponse {
                    context: "fetching an add-friend mailbox",
                })
            }
        };
        self.round_identity_key = None;

        let mut events = Vec::new();
        for ciphertext in &contents {
            let Ok(plaintext) = ibe_decrypt(&identity_key, ciphertext) else {
                continue; // Someone else's request, or noise.
            };
            let Ok(request) = FriendRequest::decode(&plaintext) else {
                continue;
            };
            if let Some(event) = self.handle_friend_request(request) {
                events.push(event);
            }
        }
        // Forward secrecy: the round identity key is destroyed after the scan
        // (dropping it here; the underlying scalar is not referenced again).
        self.round_attestation = None;
        Ok(events)
    }

    /// Validates and applies one decrypted friend request.
    fn handle_friend_request(&mut self, request: FriendRequest) -> Option<ClientEvent> {
        let from = request.sender.clone();
        if from == self.identity {
            return None;
        }

        // Verify the PKG multi-signature binding (sender, sender_key, round).
        let multi_vk = aggregate_verifying_keys(&self.pkg_keys);
        let attestation_msg =
            FriendRequest::pkg_attestation_message(&from, &request.sender_key, request.pkg_round);
        let Ok(pkg_sig) = Signature::from_bytes(&request.pkg_sigs) else {
            return Some(self.reject(from, "malformed PKG multi-signature"));
        };
        if !multi_vk.verify(&attestation_msg, &pkg_sig) {
            return Some(self.reject(from, "PKG multi-signature does not verify"));
        }

        // Verify the sender's own signature over the request.
        let Ok(sender_key) = VerifyingKey::from_bytes(&request.sender_key) else {
            return Some(self.reject(from, "malformed sender key"));
        };
        let Ok(sender_sig) = Signature::from_bytes(&request.sender_sig) else {
            return Some(self.reject(from, "malformed sender signature"));
        };
        if !sender_key.verify(&request.sender_signed_message(), &sender_sig) {
            return Some(self.reject(from, "sender signature does not verify"));
        }

        // Out-of-band / trust-on-first-use key check.
        if !self.address_book.observe_key(&from, &request.sender_key) {
            return Some(self.reject(from, "sender key conflicts with previously known key"));
        }

        if let Some(pending) = self.pending_outgoing.remove(&from) {
            // This is the confirmation of a request we sent: compute the
            // shared secret with our stored ephemeral secret.
            let Ok(their_public) = DhPublic::from_bytes(&request.dialing_key) else {
                return Some(self.reject(from, "malformed dialing key"));
            };
            let shared = pending.dh_secret.shared_secret(&their_public);
            let final_round = Round(request.dialing_round.0.max(pending.proposed_round.0));
            self.keywheels.insert(from.clone(), shared, final_round);
            if let Some(entry) = self.address_book.get_mut(&from) {
                entry.status = FriendStatus::Confirmed;
            }
            return Some(ClientEvent::FriendConfirmed {
                friend: from,
                dialing_round: final_round,
            });
        }

        // A new incoming request (the paper's NewFriend callback).
        let incoming = PendingIncoming {
            their_key: request.sender_key,
            their_dh_key: request.dialing_key,
            their_round: request.dialing_round,
        };
        let auto = self.config.auto_accept_friends;
        if auto {
            self.queue_reply(from.clone(), incoming);
        } else {
            if let Some(entry) = self.address_book.get_mut(&from) {
                entry.status = FriendStatus::IncomingPending;
            }
            self.pending_incoming.insert(from.clone(), incoming);
        }
        Some(ClientEvent::FriendRequestReceived {
            from,
            their_key: request.sender_key,
            auto_accepted: auto,
        })
    }

    fn reject(&mut self, from: Identity, reason: &str) -> ClientEvent {
        ClientEvent::FriendRequestRejected {
            from,
            reason: reason.to_string(),
        }
    }

    fn queue_reply(&mut self, to: Identity, incoming: PendingIncoming) {
        if self.address_book.get(&to).is_none() {
            self.address_book.insert(FriendEntry {
                identity: to.clone(),
                long_term_key: Some(incoming.their_key),
                key_out_of_band: false,
                status: FriendStatus::IncomingPending,
            });
        }
        self.outgoing_add_friend
            .push_back(OutgoingAddFriend::Reply {
                to,
                their_dh_key: incoming.their_dh_key,
                their_round: incoming.their_round,
            });
    }

    fn propose_dialing_round(&self) -> Round {
        self.next_dialing_round
            .plus(self.config.dialing_round_slack)
    }

    // ------------------------------------------------------------------
    // Dialing rounds (§5)
    // ------------------------------------------------------------------

    /// Fetches and validates the open dialing round's parameters.
    fn fetch_dialing_round<T: Transport>(
        &mut self,
        net: &mut T,
    ) -> Result<DialingRoundView, ClientError> {
        let Response::DialingRoundInfo(info) = self.rpc(net, Request::GetDialingRoundInfo)? else {
            return Err(ClientError::UnexpectedResponse {
                context: "fetching dialing round info",
            });
        };
        let onion_keys = decode_onion_keys(&info.onion_keys)?;
        if info.num_mailboxes == 0 {
            return Err(ClientError::UnexpectedResponse {
                context: "validating dialing round info",
            });
        }
        Ok(DialingRoundView {
            round: info.round,
            onion_keys,
            num_mailboxes: info.num_mailboxes,
            rate_limited: info.rate_limited,
        })
    }

    /// Participates in the open dialing round: submits one (possibly cover)
    /// dial token through the mixnet. Returns the outgoing-call event if a
    /// real call was placed.
    pub fn participate_dialing<T: Transport>(
        &mut self,
        net: &mut T,
    ) -> Result<Option<ClientEvent>, ClientError> {
        let view = self.fetch_dialing_round(net)?;
        self.next_dialing_round = Round(self.next_dialing_round.0.max(view.round.0));

        // Acquire the rate-limit token before popping a queued call: a
        // budget failure here must leave the call queued for a later round.
        let rate_token = if view.rate_limited {
            Some(self.acquire_rate_limit_token(net, RoundKind::Dialing, view.round)?)
        } else {
            None
        };

        // The chosen call is held aside so a failed submission can put it
        // back at the head of the queue; its token and event only become
        // client state once the coordinator has accepted the submission.
        let chosen = self.next_sendable_call(view.round);
        let mut event = None;
        let request = match &chosen {
            Some(call) => {
                let token = self
                    .keywheels
                    .dial_token(&call.friend, view.round, call.intent)
                    .ok_or_else(|| ClientError::NotAFriend(call.friend.clone()))??;
                let session_key = self
                    .keywheels
                    .session_key(&call.friend, view.round, call.intent)
                    .ok_or_else(|| ClientError::NotAFriend(call.friend.clone()))??;
                event = Some(ClientEvent::OutgoingCallPlaced {
                    friend: call.friend.clone(),
                    intent: call.intent,
                    session_key,
                    round: view.round,
                });
                DialRequest {
                    mailbox: MailboxId::for_recipient(&call.friend, view.num_mailboxes),
                    token,
                }
            }
            None => {
                // Cover traffic: a random token to the cover mailbox.
                let mut token = [0u8; 32];
                self.rng.fill_bytes(&mut token);
                DialRequest {
                    mailbox: MailboxId::COVER,
                    token: DialToken(token),
                }
            }
        };
        request.encode_into(&mut self.payload_scratch);
        let onion = wrap_onion(&self.payload_scratch, &view.onion_keys, &mut self.rng);
        let submitted = self.rpc(
            net,
            Request::SubmitDialing {
                round: view.round,
                onion,
                token: rate_token,
            },
        );
        match submitted {
            Ok(Response::Ack) => {}
            other => {
                if let Some(call) = chosen {
                    self.outgoing_calls.push_front(call);
                }
                return match other {
                    Err(e) => Err(e),
                    _ => Err(ClientError::UnexpectedResponse {
                        context: "submitting a dial request",
                    }),
                };
            }
        }
        self.unspent_rate_limit_token = None;
        if chosen.is_some() {
            self.sent_dial_token = Some((view.round, request.token));
        }
        self.dialing_round_state = Some((view.round, view.num_mailboxes));
        Ok(event)
    }

    /// Pops the first queued call whose keywheel is usable in `round`
    /// (keywheels established for a future round wait until it arrives).
    fn next_sendable_call(&mut self, round: Round) -> Option<OutgoingCall> {
        let mut deferred = VecDeque::new();
        let mut chosen = None;
        while let Some(call) = self.outgoing_calls.pop_front() {
            let usable = self
                .keywheels
                .get(&call.friend)
                .map(|w| w.round() <= round)
                .unwrap_or(false);
            if usable && chosen.is_none() {
                chosen = Some(call);
            } else {
                deferred.push_back(call);
            }
        }
        self.outgoing_calls = deferred;
        chosen
    }

    /// Downloads the Bloom filter mailbox of the dialing round last
    /// participated in, scans it for calls from any friend with any intent,
    /// and advances all keywheels past the round (erasing old keys, §5.1).
    pub fn process_dialing_mailbox<T: Transport>(
        &mut self,
        net: &mut T,
    ) -> Result<Vec<ClientEvent>, ClientError> {
        let (round, num_mailboxes) = self.dialing_round_state.ok_or(ClientError::NoRoundState)?;
        let mailbox = MailboxId::for_recipient(&self.identity, num_mailboxes);
        let filter_bytes = match self.rpc(net, Request::FetchDialingMailbox { round, mailbox })? {
            Response::DialingMailbox { filter } => filter,
            _ => {
                return Err(ClientError::UnexpectedResponse {
                    context: "fetching a dialing mailbox",
                })
            }
        };
        let filter =
            BloomFilter::from_bytes(&filter_bytes).ok_or(ClientError::UnexpectedResponse {
                context: "decoding a dialing Bloom filter",
            })?;
        self.dialing_round_state = None;

        let own_token = match self.sent_dial_token {
            Some((token_round, token)) if token_round == round => Some(token),
            _ => None,
        };
        let mut events = Vec::new();
        for (friend, intent, token) in self
            .keywheels
            .expected_tokens(round, self.config.num_intents)
        {
            if own_token == Some(token) {
                // Our own outgoing token for this round; not an incoming call.
                continue;
            }
            if filter.contains(token.as_bytes()) {
                let session_key: SessionKey = self
                    .keywheels
                    .session_key(&friend, round, intent)
                    .expect("friend has a keywheel")?;
                events.push(ClientEvent::IncomingCall {
                    from: friend,
                    intent,
                    session_key,
                    round,
                });
            }
        }

        // The round is fully handled (sent and scanned): advance keywheels so
        // a later compromise cannot reconstruct this round's tokens.
        self.keywheels.advance_to(round.next());
        self.next_dialing_round = Round(self.next_dialing_round.0.max(round.next().0));
        Ok(events)
    }

    /// Gives up on a dialing round whose mailbox could not be fetched (§5.1:
    /// after retrying for a while the client advances its keywheels anyway to
    /// preserve forward secrecy, accepting that calls from that round are
    /// lost).
    pub fn abandon_dialing_round(&mut self, round: Round) {
        if matches!(self.dialing_round_state, Some((r, _)) if r == round) {
            self.dialing_round_state = None;
        }
        self.keywheels.advance_to(round.next());
        self.next_dialing_round = Round(self.next_dialing_round.0.max(round.next().0));
    }

    /// Catches a mobile client up after sleeping through many rounds: every
    /// keywheel is ratcheted forward to `round` (preserving forward secrecy
    /// for the missed interval, §5.2 — the skipped keys are derived and
    /// discarded, so a later compromise cannot reconstruct them) and any
    /// stale in-flight dialing-round state from before the sleep is
    /// abandoned. Calls dialed to this client during the gap are lost, which
    /// is the paper's intended semantics for offline users. A no-op for a
    /// client already at or past `round`.
    pub fn fast_forward(&mut self, round: Round) {
        if matches!(self.dialing_round_state, Some((r, _)) if r < round) {
            self.dialing_round_state = None;
        }
        self.keywheels.advance_to(round);
        self.next_dialing_round = Round(self.next_dialing_round.0.max(round.0));
    }
}

// ---------------------------------------------------------------------------
// Durable client state (`alpenhorn-storage`)
// ---------------------------------------------------------------------------

/// Record kind for a serialized client state (see `alpenhorn_storage::record`).
const CLIENT_STATE_RECORD_KIND: u8 = 0x20;
/// Client snapshot payload version; bump on any layout change (no
/// negotiation — a loader rejects every other version).
const CLIENT_STATE_VERSION: u8 = 1;

use alpenhorn_storage::codec::{get_identity, put_identity};
use alpenhorn_storage::StorageError;

fn round_kind_tag(kind: RoundKind) -> u8 {
    match kind {
        RoundKind::AddFriend => 0,
        RoundKind::Dialing => 1,
    }
}

fn round_kind_from_tag(tag: u8) -> Result<RoundKind, StorageError> {
    match tag {
        0 => Ok(RoundKind::AddFriend),
        1 => Ok(RoundKind::Dialing),
        _ => Err(StorageError::BadPayload {
            context: "round kind tag",
        }),
    }
}

fn status_tag(status: FriendStatus) -> u8 {
    match status {
        FriendStatus::OutgoingPending => 0,
        FriendStatus::IncomingPending => 1,
        FriendStatus::Confirmed => 2,
    }
}

fn status_from_tag(tag: u8) -> Result<FriendStatus, StorageError> {
    match tag {
        0 => Ok(FriendStatus::OutgoingPending),
        1 => Ok(FriendStatus::IncomingPending),
        2 => Ok(FriendStatus::Confirmed),
        _ => Err(StorageError::BadPayload {
            context: "friend status tag",
        }),
    }
}

impl Client {
    /// Serializes the client's full durable state as one checksummed,
    /// versioned record: identity, config, long-term signing key, PKG keys,
    /// address book, keywheels, queued friend requests and calls, pending
    /// handshakes (with their ephemeral DH secrets), the cached unspent
    /// rate-limit token, and the RNG position — everything needed for a
    /// client process to die and resume at the next round.
    ///
    /// Deliberately **excluded**: the open round's IBE identity key and PKG
    /// attestation. Those are erased after every mailbox scan for forward
    /// secrecy (§4.4), and persisting them would extend their lifetime onto
    /// disk; a reloaded client simply cannot scan the mailbox of a round it
    /// was mid-way through, and participates in the next round instead.
    ///
    /// The output contains long-term and ephemeral secrets; store it like a
    /// key file, and overwrite rather than archive old saves (a hoarded old
    /// save is a hoarded old keywheel position).
    pub fn save_state(&self) -> Vec<u8> {
        alpenhorn_storage::record::encode(CLIENT_STATE_RECORD_KIND, &self.encode_state_payload())
    }

    /// Reconstructs a client from [`Client::save_state`] bytes, verifying the
    /// record checksum and version. Corruption (torn write, bit flip) is
    /// detected and reported, never silently loaded.
    pub fn load_state(bytes: &[u8]) -> Result<Self, StorageError> {
        let record = alpenhorn_storage::record::decode_exact(bytes)?;
        if record.kind != CLIENT_STATE_RECORD_KIND {
            return Err(StorageError::BadPayload {
                context: "client state record kind",
            });
        }
        Self::decode_state_payload(&record.payload)
    }

    /// Saves the client's state to `path` atomically (write-temp, fsync,
    /// rename), so a crash mid-save leaves the previous save intact.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<(), StorageError> {
        alpenhorn_storage::snapshot::write_atomic(path, &self.encode_state_payload())
    }

    /// Loads a client saved with [`Client::save_to`]. Returns `Ok(None)` if
    /// no save exists at `path`.
    pub fn load_from(path: impl AsRef<std::path::Path>) -> Result<Option<Self>, StorageError> {
        match alpenhorn_storage::snapshot::read(path)? {
            None => Ok(None),
            Some(payload) => Self::decode_state_payload(&payload).map(Some),
        }
    }

    fn encode_state_payload(&self) -> Vec<u8> {
        let mut e = alpenhorn_wire::Encoder::new();
        e.put_u8(CLIENT_STATE_VERSION);
        put_identity(&mut e, &self.identity);
        e.put_u32(self.config.num_intents);
        e.put_u8(self.config.auto_accept_friends as u8);
        e.put_u64(self.config.dialing_round_slack);
        e.put_bytes(&self.signing_key.to_bytes());
        e.put_u32(self.pkg_keys.len() as u32);
        for key in &self.pkg_keys {
            e.put_bytes(&key.to_bytes());
        }
        e.put_u8(self.registered as u8);

        e.put_u32(self.address_book.len() as u32);
        for entry in self.address_book.iter() {
            put_identity(&mut e, &entry.identity);
            match &entry.long_term_key {
                None => {
                    e.put_u8(0);
                }
                Some(key) => {
                    e.put_u8(1);
                    e.put_bytes(key);
                }
            }
            e.put_u8(entry.key_out_of_band as u8);
            e.put_u8(status_tag(entry.status));
        }

        e.put_u32(self.keywheels.len() as u32);
        for (friend, wheel) in self.keywheels.wheels() {
            put_identity(&mut e, friend);
            e.put_bytes(&wheel.export_secret());
            e.put_u64(wheel.round().as_u64());
        }

        e.put_u32(self.outgoing_add_friend.len() as u32);
        for outgoing in &self.outgoing_add_friend {
            match outgoing {
                OutgoingAddFriend::Initiate { to } => {
                    e.put_u8(0);
                    put_identity(&mut e, to);
                }
                OutgoingAddFriend::Reply {
                    to,
                    their_dh_key,
                    their_round,
                } => {
                    e.put_u8(1);
                    put_identity(&mut e, to);
                    e.put_bytes(their_dh_key);
                    e.put_u64(their_round.as_u64());
                }
            }
        }

        let mut pending_outgoing: Vec<_> = self.pending_outgoing.iter().collect();
        pending_outgoing.sort_by(|a, b| a.0.cmp(b.0));
        e.put_u32(pending_outgoing.len() as u32);
        for (to, pending) in pending_outgoing {
            put_identity(&mut e, to);
            e.put_bytes(&pending.dh_secret.to_bytes());
            e.put_u64(pending.proposed_round.as_u64());
        }

        let mut pending_incoming: Vec<_> = self.pending_incoming.iter().collect();
        pending_incoming.sort_by(|a, b| a.0.cmp(b.0));
        e.put_u32(pending_incoming.len() as u32);
        for (from, pending) in pending_incoming {
            put_identity(&mut e, from);
            e.put_bytes(&pending.their_key);
            e.put_bytes(&pending.their_dh_key);
            e.put_u64(pending.their_round.as_u64());
        }

        e.put_u32(self.outgoing_calls.len() as u32);
        for call in &self.outgoing_calls {
            put_identity(&mut e, &call.friend);
            e.put_u32(call.intent);
        }

        e.put_u64(self.next_dialing_round.as_u64());
        match &self.sent_dial_token {
            None => {
                e.put_u8(0);
            }
            Some((round, token)) => {
                e.put_u8(1);
                e.put_u64(round.as_u64());
                e.put_bytes(&token.0);
            }
        }
        match &self.dialing_round_state {
            None => {
                e.put_u8(0);
            }
            Some((round, num_mailboxes)) => {
                e.put_u8(1);
                e.put_u64(round.as_u64());
                e.put_u32(*num_mailboxes);
            }
        }
        match &self.unspent_rate_limit_token {
            None => {
                e.put_u8(0);
            }
            Some((kind, round, token)) => {
                e.put_u8(1);
                e.put_u8(round_kind_tag(*kind));
                e.put_u64(round.as_u64());
                e.put_bytes(&token.serial);
                e.put_bytes(&token.signature);
            }
        }
        e.put_bytes(&self.rng.state_bytes());
        e.finish()
    }

    fn decode_state_payload(payload: &[u8]) -> Result<Self, StorageError> {
        let mut d = alpenhorn_wire::Decoder::new(payload);
        let version = d.get_u8("client state version")?;
        if version != CLIENT_STATE_VERSION {
            return Err(StorageError::BadPayload {
                context: "unsupported client state version",
            });
        }
        let identity = get_identity(&mut d, "client identity")?;
        let config = ClientConfig {
            num_intents: d.get_u32("config num_intents")?,
            auto_accept_friends: d.get_u8("config auto_accept")? != 0,
            dialing_round_slack: d.get_u64("config slack")?,
            // Operational knob, not protocol state: a loaded client starts
            // with the default (no-retry) policy; re-apply via
            // `set_retry_policy` if wanted.
            retry: RetryPolicy::none(),
        };
        let signing_key =
            SigningKey::from_bytes(&d.get_array::<32>("signing key")?).map_err(|_| {
                StorageError::BadPayload {
                    context: "client signing key",
                }
            })?;
        // The count comes from disk: never reserve on its say-so.
        let pkg_key_count = d.get_u32("pkg key count")? as usize;
        let mut pkg_keys = Vec::new();
        for _ in 0..pkg_key_count {
            let bytes = d.get_array::<SIGNING_PK_LEN>("pkg key")?;
            pkg_keys.push(VerifyingKey::from_bytes(&bytes).map_err(|_| {
                StorageError::BadPayload {
                    context: "pkg verification key",
                }
            })?);
        }
        let registered = d.get_u8("registered flag")? != 0;

        let mut address_book = AddressBook::new();
        for _ in 0..d.get_u32("address book count")? {
            let identity = get_identity(&mut d, "address book identity")?;
            let long_term_key = match d.get_u8("address book key flag")? {
                0 => None,
                _ => Some(d.get_array::<SIGNING_PK_LEN>("address book key")?),
            };
            let key_out_of_band = d.get_u8("address book oob flag")? != 0;
            let status = status_from_tag(d.get_u8("address book status")?)?;
            address_book.insert(FriendEntry {
                identity,
                long_term_key,
                key_out_of_band,
                status,
            });
        }

        let mut keywheels = KeywheelTable::new();
        for _ in 0..d.get_u32("keywheel count")? {
            let friend = get_identity(&mut d, "keywheel identity")?;
            let secret = d.get_array::<32>("keywheel secret")?;
            let round = Round(d.get_u64("keywheel round")?);
            keywheels.insert(friend, secret, round);
        }

        let mut outgoing_add_friend = VecDeque::new();
        for _ in 0..d.get_u32("outgoing add-friend count")? {
            let item = match d.get_u8("outgoing add-friend tag")? {
                0 => OutgoingAddFriend::Initiate {
                    to: get_identity(&mut d, "initiate recipient")?,
                },
                1 => OutgoingAddFriend::Reply {
                    to: get_identity(&mut d, "reply recipient")?,
                    their_dh_key: d.get_array::<{ alpenhorn_wire::DH_PK_LEN }>("reply dh key")?,
                    their_round: Round(d.get_u64("reply round")?),
                },
                _ => {
                    return Err(StorageError::BadPayload {
                        context: "outgoing add-friend tag",
                    })
                }
            };
            outgoing_add_friend.push_back(item);
        }

        let mut pending_outgoing = HashMap::new();
        for _ in 0..d.get_u32("pending outgoing count")? {
            let to = get_identity(&mut d, "pending outgoing identity")?;
            let dh_secret = DhSecret::from_bytes(&d.get_array::<32>("pending outgoing secret")?)
                .map_err(|_| StorageError::BadPayload {
                    context: "pending outgoing DH secret",
                })?;
            let proposed_round = Round(d.get_u64("pending outgoing round")?);
            pending_outgoing.insert(
                to,
                PendingOutgoing {
                    dh_secret,
                    proposed_round,
                },
            );
        }

        let mut pending_incoming = HashMap::new();
        for _ in 0..d.get_u32("pending incoming count")? {
            let from = get_identity(&mut d, "pending incoming identity")?;
            let their_key = d.get_array::<SIGNING_PK_LEN>("pending incoming key")?;
            let their_dh_key =
                d.get_array::<{ alpenhorn_wire::DH_PK_LEN }>("pending incoming dh key")?;
            let their_round = Round(d.get_u64("pending incoming round")?);
            pending_incoming.insert(
                from,
                PendingIncoming {
                    their_key,
                    their_dh_key,
                    their_round,
                },
            );
        }

        let mut outgoing_calls = VecDeque::new();
        for _ in 0..d.get_u32("outgoing call count")? {
            let friend = get_identity(&mut d, "outgoing call identity")?;
            let intent = d.get_u32("outgoing call intent")?;
            outgoing_calls.push_back(OutgoingCall { friend, intent });
        }

        let next_dialing_round = Round(d.get_u64("next dialing round")?);
        let sent_dial_token = match d.get_u8("sent token flag")? {
            0 => None,
            _ => {
                let round = Round(d.get_u64("sent token round")?);
                let token = DialToken(d.get_array::<32>("sent token")?);
                Some((round, token))
            }
        };
        let dialing_round_state = match d.get_u8("dialing state flag")? {
            0 => None,
            _ => {
                let round = Round(d.get_u64("dialing state round")?);
                let num_mailboxes = d.get_u32("dialing state mailboxes")?;
                Some((round, num_mailboxes))
            }
        };
        let unspent_rate_limit_token = match d.get_u8("unspent token flag")? {
            0 => None,
            _ => {
                let kind = round_kind_from_tag(d.get_u8("unspent token kind")?)?;
                let round = Round(d.get_u64("unspent token round")?);
                let serial = d.get_array::<RATE_LIMIT_SERIAL_LEN>("unspent token serial")?;
                let signature =
                    d.get_array::<{ alpenhorn_wire::SIGNATURE_LEN }>("unspent token signature")?;
                Some((kind, round, RateLimitToken { serial, signature }))
            }
        };
        let rng_state = d.get_array::<{ ChaChaRng::STATE_LEN }>("rng state")?;
        let rng = ChaChaRng::from_state_bytes(&rng_state).ok_or(StorageError::BadPayload {
            context: "client rng state",
        })?;
        d.finish()?;

        Ok(Client {
            identity,
            config,
            signing_key,
            pkg_keys,
            registered,
            address_book,
            keywheels,
            outgoing_add_friend,
            pending_outgoing,
            pending_incoming,
            outgoing_calls,
            // Round-scoped secrets are never persisted (forward secrecy):
            // a reloaded client starts outside any open round.
            round_identity_key: None,
            round_attestation: None,
            dialing_round_state,
            next_dialing_round,
            sent_dial_token,
            unspent_rate_limit_token,
            payload_scratch: Vec::new(),
            rng,
            // Jitter only — any deterministic derivation works; the saved
            // RNG state is secret material, so hash it rather than reuse it.
            retry_rng: derive_retry_rng(&rng_state),
        })
    }
}

impl core::fmt::Debug for Client {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Client")
            .field("identity", &self.identity)
            .field("registered", &self.registered)
            .field("friends", &self.address_book.len())
            .field("keywheels", &self.keywheels.len())
            .finish()
    }
}
