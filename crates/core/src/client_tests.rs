//! Scenario tests for the client against an in-process cluster, driven
//! through the loopback transport.

use alpenhorn_coordinator::{Cluster, ClusterConfig};
use alpenhorn_wire::{Identity, Round};

use crate::client::{Client, ClientConfig};
use crate::error::ClientError;
use crate::events::ClientEvent;
use crate::transport::LoopbackTransport;

fn id(s: &str) -> Identity {
    Identity::new(s).unwrap()
}

fn deployment(seed: u8) -> LoopbackTransport {
    LoopbackTransport::new(Cluster::new(ClusterConfig::test(seed)))
}

fn new_client(net: &mut LoopbackTransport, email: &str, seed: u8, config: ClientConfig) -> Client {
    let pkg_keys = net.with_cluster(|c| c.pkg_verifying_keys());
    let mut client = Client::new(id(email), pkg_keys, config, [seed; 32]);
    client.register(net).unwrap();
    client
}

/// Runs one complete add-friend round for the given clients and returns each
/// client's events, in the same order as `clients`.
fn run_add_friend_round(
    net: &mut LoopbackTransport,
    round: Round,
    clients: &mut [&mut Client],
) -> Vec<Vec<ClientEvent>> {
    net.with_cluster(|c| c.begin_add_friend_round(round, clients.len()))
        .unwrap();
    for client in clients.iter_mut() {
        client.participate_add_friend(net).unwrap();
    }
    net.with_cluster(|c| c.close_add_friend_round(round))
        .unwrap();
    clients
        .iter_mut()
        .map(|c| c.process_add_friend_mailbox(net).unwrap())
        .collect()
}

/// Runs one complete dialing round and returns each client's events
/// (participation events followed by mailbox events).
fn run_dialing_round(
    net: &mut LoopbackTransport,
    round: Round,
    clients: &mut [&mut Client],
) -> Vec<Vec<ClientEvent>> {
    net.with_cluster(|c| c.begin_dialing_round(round, clients.len()))
        .unwrap();
    let mut events: Vec<Vec<ClientEvent>> = Vec::new();
    for client in clients.iter_mut() {
        let mut mine = Vec::new();
        if let Some(e) = client.participate_dialing(net).unwrap() {
            mine.push(e);
        }
        events.push(mine);
    }
    net.with_cluster(|c| c.close_dialing_round(round)).unwrap();
    for (client, mine) in clients.iter_mut().zip(events.iter_mut()) {
        mine.extend(client.process_dialing_mailbox(net).unwrap());
    }
    events
}

/// Establishes a confirmed friendship between two clients (two add-friend
/// rounds: request then confirmation).
fn befriend(
    net: &mut LoopbackTransport,
    a: &mut Client,
    b: &mut Client,
    first_round: u64,
) -> Round {
    let bob = b.identity().clone();
    a.add_friend(bob, None);
    run_add_friend_round(net, Round(first_round), &mut [a, b]);
    let events = run_add_friend_round(net, Round(first_round + 1), &mut [a, b]);
    // The initiator sees the confirmation in the second round.
    let confirmed = events[0]
        .iter()
        .find_map(|e| match e {
            ClientEvent::FriendConfirmed { dialing_round, .. } => Some(*dialing_round),
            _ => None,
        })
        .expect("initiator should see FriendConfirmed");
    confirmed
}

#[test]
fn add_friend_handshake_confirms_both_sides() {
    let mut net = deployment(10);
    let mut alice = new_client(&mut net, "alice@example.com", 1, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 2, ClientConfig::default());

    alice.add_friend(id("bob@gmail.com"), None);

    // Round 1: Alice's request reaches Bob.
    let events = run_add_friend_round(&mut net, Round(1), &mut [&mut alice, &mut bob]);
    assert!(events[0].is_empty());
    assert!(matches!(
        events[1].as_slice(),
        [ClientEvent::FriendRequestReceived { from, auto_accepted: true, .. }] if *from == id("alice@example.com")
    ));

    // Round 2: Bob's confirmation reaches Alice.
    let events = run_add_friend_round(&mut net, Round(2), &mut [&mut alice, &mut bob]);
    let confirmed_round = match events[0].as_slice() {
        [ClientEvent::FriendConfirmed {
            friend,
            dialing_round,
        }] if *friend == id("bob@gmail.com") => *dialing_round,
        other => panic!("expected FriendConfirmed, got {other:?}"),
    };

    // Both sides now have synchronized keywheels starting at the same round.
    assert!(alice.keywheels().contains(&id("bob@gmail.com")));
    assert!(bob.keywheels().contains(&id("alice@example.com")));
    assert_eq!(
        alice.keywheels().get(&id("bob@gmail.com")).unwrap().round(),
        confirmed_round
    );
    assert_eq!(
        bob.keywheels()
            .get(&id("alice@example.com"))
            .unwrap()
            .round(),
        confirmed_round
    );
    let a_token = alice
        .keywheels()
        .dial_token(&id("bob@gmail.com"), confirmed_round, 0)
        .unwrap()
        .unwrap();
    let b_token = bob
        .keywheels()
        .dial_token(&id("alice@example.com"), confirmed_round, 0)
        .unwrap()
        .unwrap();
    assert_eq!(a_token, b_token);
}

#[test]
fn dialing_delivers_call_and_matching_session_keys() {
    let mut net = deployment(11);
    let mut alice = new_client(&mut net, "alice@example.com", 3, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 4, ClientConfig::default());
    let start = befriend(&mut net, &mut alice, &mut bob, 1);

    alice.call(id("bob@gmail.com"), 2).unwrap();

    // Run dialing rounds up to and including the keywheel start round.
    let mut alice_key = None;
    let mut bob_key = None;
    for r in 1..=start.as_u64() {
        let events = run_dialing_round(&mut net, Round(r), &mut [&mut alice, &mut bob]);
        for e in &events[0] {
            if let ClientEvent::OutgoingCallPlaced {
                session_key,
                intent,
                ..
            } = e
            {
                assert_eq!(*intent, 2);
                alice_key = Some(*session_key);
            }
        }
        for e in &events[1] {
            if let ClientEvent::IncomingCall {
                from,
                intent,
                session_key,
                ..
            } = e
            {
                assert_eq!(*from, id("alice@example.com"));
                assert_eq!(*intent, 2);
                bob_key = Some(*session_key);
            }
        }
    }
    let alice_key = alice_key.expect("alice placed the call");
    let bob_key = bob_key.expect("bob received the call");
    assert_eq!(alice_key, bob_key);
}

#[test]
fn idle_clients_send_cover_traffic_and_receive_nothing() {
    let mut net = deployment(12);
    let mut carol = new_client(&mut net, "carol@x.org", 5, ClientConfig::default());

    let af = run_add_friend_round(&mut net, Round(1), &mut [&mut carol]);
    assert!(af[0].is_empty());
    let dial = run_dialing_round(&mut net, Round(1), &mut [&mut carol]);
    assert!(dial[0].is_empty());
}

#[test]
fn manual_accept_flow() {
    let mut net = deployment(13);
    let mut alice = new_client(&mut net, "alice@example.com", 6, ClientConfig::default());
    let manual = ClientConfig {
        auto_accept_friends: false,
        ..ClientConfig::default()
    };
    let mut bob = new_client(&mut net, "bob@gmail.com", 7, manual);

    alice.add_friend(id("bob@gmail.com"), None);
    let events = run_add_friend_round(&mut net, Round(1), &mut [&mut alice, &mut bob]);
    assert!(matches!(
        events[1].as_slice(),
        [ClientEvent::FriendRequestReceived {
            auto_accepted: false,
            ..
        }]
    ));

    // Without an accept, nothing is confirmed in round 2.
    let events = run_add_friend_round(&mut net, Round(2), &mut [&mut alice, &mut bob]);
    assert!(events[0].is_empty());

    // Bob accepts; round 3 confirms.
    bob.accept_friend_request(&id("alice@example.com")).unwrap();
    let events = run_add_friend_round(&mut net, Round(3), &mut [&mut alice, &mut bob]);
    assert!(events[0].iter().any(|e| e.is_friend_confirmed()));
}

#[test]
fn reject_flow_discards_request() {
    let mut net = deployment(14);
    let mut alice = new_client(&mut net, "alice@example.com", 8, ClientConfig::default());
    let manual = ClientConfig {
        auto_accept_friends: false,
        ..ClientConfig::default()
    };
    let mut bob = new_client(&mut net, "bob@gmail.com", 9, manual);

    alice.add_friend(id("bob@gmail.com"), None);
    run_add_friend_round(&mut net, Round(1), &mut [&mut alice, &mut bob]);
    bob.reject_friend_request(&id("alice@example.com")).unwrap();
    assert_eq!(
        bob.reject_friend_request(&id("alice@example.com")),
        Err(ClientError::NoPendingRequest(id("alice@example.com")))
    );
    // No confirmation ever arrives for Alice.
    let events = run_add_friend_round(&mut net, Round(2), &mut [&mut alice, &mut bob]);
    assert!(events[0].is_empty());
    assert!(!bob.keywheels().contains(&id("alice@example.com")));
}

#[test]
fn out_of_band_key_mismatch_is_rejected() {
    let mut net = deployment(15);
    let mut alice = new_client(&mut net, "alice@example.com", 10, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 11, ClientConfig::default());
    let mut mallory = new_client(&mut net, "mallory@evil.com", 12, ClientConfig::default());

    // Alice knows Bob's real key out-of-band, so a request from a different
    // identity is unaffected, but if she had pinned the wrong key for Bob the
    // reply would be rejected. Pin Mallory's key under Bob's entry to force a
    // mismatch when Bob's real reply arrives.
    alice.add_friend(id("bob@gmail.com"), Some(mallory.signing_public_key()));

    run_add_friend_round(
        &mut net,
        Round(1),
        &mut [&mut alice, &mut bob, &mut mallory],
    );
    let events = run_add_friend_round(
        &mut net,
        Round(2),
        &mut [&mut alice, &mut bob, &mut mallory],
    );
    assert!(matches!(
        events[0].as_slice(),
        [ClientEvent::FriendRequestRejected { from, .. }] if *from == id("bob@gmail.com")
    ));
    assert!(!alice.keywheels().contains(&id("bob@gmail.com")));
}

#[test]
fn call_requires_confirmed_friend_and_valid_intent() {
    let mut net = deployment(16);
    let mut alice = new_client(&mut net, "alice@example.com", 13, ClientConfig::default());
    assert_eq!(
        alice.call(id("stranger@x.com"), 0),
        Err(ClientError::NotAFriend(id("stranger@x.com")))
    );

    let mut bob = new_client(&mut net, "bob@gmail.com", 14, ClientConfig::default());
    befriend(&mut net, &mut alice, &mut bob, 1);
    assert_eq!(
        alice.call(id("bob@gmail.com"), 10),
        Err(ClientError::InvalidIntent {
            intent: 10,
            num_intents: 10
        })
    );
    assert!(alice.call(id("bob@gmail.com"), 9).is_ok());
}

#[test]
fn unregistered_client_cannot_participate() {
    let mut net = deployment(17);
    let pkg_keys = net.with_cluster(|c| c.pkg_verifying_keys());
    let mut ghost = Client::new(
        id("ghost@x.com"),
        pkg_keys,
        ClientConfig::default(),
        [99u8; 32],
    );
    net.with_cluster(|c| c.begin_add_friend_round(Round(1), 1))
        .unwrap();
    assert_eq!(
        ghost.participate_add_friend(&mut net),
        Err(ClientError::NotRegistered)
    );
    net.with_cluster(|c| c.close_add_friend_round(Round(1)))
        .unwrap();
}

#[test]
fn mailbox_processing_without_participation_is_an_error() {
    let mut net = deployment(25);
    let mut alice = new_client(&mut net, "alice@example.com", 26, ClientConfig::default());
    assert_eq!(
        alice.process_add_friend_mailbox(&mut net),
        Err(ClientError::NoRoundState)
    );
    assert_eq!(
        alice.process_dialing_mailbox(&mut net),
        Err(ClientError::NoRoundState)
    );
}

#[test]
fn remove_friend_erases_keywheel() {
    let mut net = deployment(18);
    let mut alice = new_client(&mut net, "alice@example.com", 15, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 16, ClientConfig::default());
    befriend(&mut net, &mut alice, &mut bob, 1);

    assert!(alice.keywheels().contains(&id("bob@gmail.com")));
    alice.remove_friend(&id("bob@gmail.com"));
    assert!(!alice.keywheels().contains(&id("bob@gmail.com")));
    assert!(alice.address_book().get(&id("bob@gmail.com")).is_none());
    assert_eq!(
        alice.call(id("bob@gmail.com"), 0),
        Err(ClientError::NotAFriend(id("bob@gmail.com")))
    );
}

#[test]
fn compromise_recovery_resets_state() {
    let mut net = deployment(19);
    let mut alice = new_client(&mut net, "alice@example.com", 17, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 18, ClientConfig::default());
    befriend(&mut net, &mut alice, &mut bob, 1);

    let old_key = alice.signing_public_key();
    alice.deregister(&mut net).unwrap();
    alice.reset_after_compromise();

    assert!(!alice.is_registered());
    assert_ne!(alice.signing_public_key().to_bytes(), old_key.to_bytes());
    assert!(alice.address_book().is_empty());
    assert!(!alice.keywheels().contains(&id("bob@gmail.com")));

    // Re-registration is blocked by the 30-day lockout, then succeeds.
    assert!(alice.register(&mut net).is_err());
    net.with_cluster(|c| c.advance_time(31 * 24 * 60 * 60));
    alice.register(&mut net).unwrap();
    assert!(alice.is_registered());
}

#[test]
fn simultaneous_add_friend_converges() {
    // Both users add each other in the same round; both must end up with the
    // same keywheel.
    let mut net = deployment(20);
    let mut alice = new_client(&mut net, "alice@example.com", 19, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 20, ClientConfig::default());

    alice.add_friend(id("bob@gmail.com"), None);
    bob.add_friend(id("alice@example.com"), None);

    let events = run_add_friend_round(&mut net, Round(1), &mut [&mut alice, &mut bob]);
    // Each sees the other's request as the confirmation of their own.
    assert!(events[0].iter().any(|e| e.is_friend_confirmed()));
    assert!(events[1].iter().any(|e| e.is_friend_confirmed()));

    let a_wheel = alice.keywheels().get(&id("bob@gmail.com")).unwrap();
    let b_wheel = bob.keywheels().get(&id("alice@example.com")).unwrap();
    assert_eq!(a_wheel.round(), b_wheel.round());
    let r = a_wheel.round();
    assert_eq!(
        a_wheel.dial_token(r, 1).unwrap(),
        b_wheel.dial_token(r, 1).unwrap()
    );
}

#[test]
fn abandon_dialing_round_preserves_forward_secrecy() {
    let mut net = deployment(21);
    let mut alice = new_client(&mut net, "alice@example.com", 21, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 22, ClientConfig::default());
    let start = befriend(&mut net, &mut alice, &mut bob, 1);

    // Alice gives up on the start round (e.g. mailbox never downloaded).
    alice.abandon_dialing_round(start);
    // Her keywheel has advanced: tokens for the abandoned round are gone.
    assert!(alice
        .keywheels()
        .dial_token(&id("bob@gmail.com"), start, 0)
        .unwrap()
        .is_err());
    // The next round still works and stays in sync with Bob.
    let next = start.next();
    assert_eq!(
        alice
            .keywheels()
            .dial_token(&id("bob@gmail.com"), next, 0)
            .unwrap()
            .unwrap(),
        bob.keywheels()
            .dial_token(&id("alice@example.com"), next, 0)
            .unwrap()
            .unwrap()
    );
}

#[test]
fn queued_call_waits_for_keywheel_start_round() {
    let mut net = deployment(22);
    let mut alice = new_client(&mut net, "alice@example.com", 23, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 24, ClientConfig::default());
    let start = befriend(&mut net, &mut alice, &mut bob, 1);
    assert!(start.as_u64() > 1, "keywheel starts in the future");

    alice.call(id("bob@gmail.com"), 0).unwrap();
    // Round 1 is before the keywheel start: the call is deferred and Bob
    // receives nothing.
    let events = run_dialing_round(&mut net, Round(1), &mut [&mut alice, &mut bob]);
    assert!(events[0].is_empty());
    assert!(events[1].is_empty());
    // At the start round the deferred call goes out.
    for r in 2..=start.as_u64() {
        let events = run_dialing_round(&mut net, Round(r), &mut [&mut alice, &mut bob]);
        if r == start.as_u64() {
            assert!(events[0]
                .iter()
                .any(|e| matches!(e, ClientEvent::OutgoingCallPlaced { .. })));
            assert!(events[1].iter().any(|e| e.is_incoming_call()));
        }
    }
}

#[test]
fn rate_limited_deployment_is_transparent_to_clients() {
    // With a rate-limiting policy configured, the client transparently
    // obtains blind-signed tokens and the full handshake + call flow works
    // unchanged; server-side the spent tokens are recorded.
    use alpenhorn_coordinator::{CoordinatorService, RateLimitPolicy, ServiceConfig};
    let service = CoordinatorService::with_config(
        Cluster::new(ClusterConfig::test(23)),
        ServiceConfig {
            rate_limit: Some(RateLimitPolicy { budget_per_day: 64 }),
        },
    );
    let mut net = LoopbackTransport::with_service(service);
    let mut alice = new_client(&mut net, "alice@example.com", 27, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 28, ClientConfig::default());
    let start = befriend(&mut net, &mut alice, &mut bob, 1);
    alice.call(id("bob@gmail.com"), 1).unwrap();
    let mut delivered = false;
    for r in 1..=start.as_u64() {
        let events = run_dialing_round(&mut net, Round(r), &mut [&mut alice, &mut bob]);
        delivered |= events[1].iter().any(|e| e.is_incoming_call());
    }
    assert!(delivered, "call delivered under rate limiting");
}

#[test]
fn budget_failure_keeps_queued_friend_request() {
    // A rate-limit failure during participation must not silently degrade a
    // queued friend request into cover traffic: once the budget recovers,
    // the request still goes out.
    use alpenhorn_coordinator::{CoordinatorService, RateLimitPolicy, ServiceConfig};
    use alpenhorn_wire::RateLimitReason;
    let service = CoordinatorService::with_config(
        Cluster::new(ClusterConfig::test(26)),
        ServiceConfig {
            rate_limit: Some(RateLimitPolicy { budget_per_day: 1 }),
        },
    );
    let mut net = LoopbackTransport::with_service(service);
    let mut alice = new_client(&mut net, "alice@example.com", 30, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 31, ClientConfig::default());

    // Round 1 burns Alice's single daily token on cover traffic.
    net.with_cluster(|c| c.begin_add_friend_round(Round(1), 2))
        .unwrap();
    alice.participate_add_friend(&mut net).unwrap();
    net.with_cluster(|c| c.close_add_friend_round(Round(1)))
        .unwrap();
    alice.process_add_friend_mailbox(&mut net).unwrap();

    // Now she queues a real request; participation fails on the exhausted
    // budget, but the request must stay queued.
    alice.add_friend(id("bob@gmail.com"), None);
    net.with_cluster(|c| c.begin_add_friend_round(Round(2), 2))
        .unwrap();
    assert_eq!(
        alice.participate_add_friend(&mut net),
        Err(ClientError::RateLimited(RateLimitReason::BudgetExhausted))
    );

    // The budget window rolls; the retry sends the preserved request and
    // Bob receives it.
    net.with_cluster(|c| c.advance_time(24 * 60 * 60 + 1));
    alice.participate_add_friend(&mut net).unwrap();
    bob.participate_add_friend(&mut net).unwrap();
    net.with_cluster(|c| c.close_add_friend_round(Round(2)))
        .unwrap();
    alice.process_add_friend_mailbox(&mut net).unwrap();
    let events = bob.process_add_friend_mailbox(&mut net).unwrap();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ClientEvent::FriendRequestReceived { .. })),
        "queued request survived the rate-limit failure, got {events:?}"
    );
}

#[test]
fn exhausted_budget_blocks_participation() {
    use alpenhorn_coordinator::{CoordinatorService, RateLimitPolicy, ServiceConfig};
    use alpenhorn_wire::RateLimitReason;
    let service = CoordinatorService::with_config(
        Cluster::new(ClusterConfig::test(24)),
        ServiceConfig {
            rate_limit: Some(RateLimitPolicy { budget_per_day: 1 }),
        },
    );
    let mut net = LoopbackTransport::with_service(service);
    let mut alice = new_client(&mut net, "alice@example.com", 29, ClientConfig::default());
    net.with_cluster(|c| c.begin_add_friend_round(Round(1), 1))
        .unwrap();
    alice.participate_add_friend(&mut net).unwrap();
    net.with_cluster(|c| c.close_add_friend_round(Round(1)))
        .unwrap();
    alice.process_add_friend_mailbox(&mut net).unwrap();

    // The single daily token is spent; the next round's participation fails
    // with a typed rate-limit error until the budget window rolls.
    net.with_cluster(|c| c.begin_add_friend_round(Round(2), 1))
        .unwrap();
    assert_eq!(
        alice.participate_add_friend(&mut net),
        Err(ClientError::RateLimited(RateLimitReason::BudgetExhausted))
    );
    net.with_cluster(|c| {
        c.advance_time(24 * 60 * 60 + 1);
    });
    alice.participate_add_friend(&mut net).unwrap();
    net.with_cluster(|c| c.close_add_friend_round(Round(2)))
        .unwrap();
}

#[test]
fn saved_client_round_trips_byte_identically() {
    // Save → load → save must reproduce the exact payload: every field
    // (including the RNG position) survives the round trip.
    let mut net = deployment(30);
    let mut alice = new_client(&mut net, "alice@example.com", 31, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 32, ClientConfig::default());
    alice.add_friend(id("bob@gmail.com"), None);
    run_add_friend_round(&mut net, Round(1), &mut [&mut alice, &mut bob]);

    let saved = alice.save_state();
    let reloaded = Client::load_state(&saved).unwrap();
    assert_eq!(reloaded.save_state(), saved);
    assert_eq!(reloaded.identity(), alice.identity());
    assert_eq!(
        reloaded.signing_public_key().to_bytes(),
        alice.signing_public_key().to_bytes()
    );
    assert_eq!(reloaded.is_registered(), alice.is_registered());
    assert_eq!(reloaded.address_book().len(), alice.address_book().len());
    assert_eq!(reloaded.keywheels().len(), alice.keywheels().len());
}

#[test]
fn corrupted_save_is_rejected_not_loaded() {
    let mut net = deployment(33);
    let alice = new_client(&mut net, "alice@example.com", 34, ClientConfig::default());
    let saved = alice.save_state();
    // Every single-byte corruption must be caught by the record checksum.
    for byte in [0, saved.len() / 2, saved.len() - 1] {
        let mut bad = saved.clone();
        bad[byte] ^= 0x10;
        assert!(Client::load_state(&bad).is_err(), "flip at {byte}");
    }
    // Truncation too.
    assert!(Client::load_state(&saved[..saved.len() - 3]).is_err());
}

#[test]
fn reloaded_client_resumes_mid_handshake_and_dials() {
    // Alice dies after the first add-friend round (her reply from Bob still
    // in flight) and Bob dies after the handshake; both resume from saved
    // state and complete the friendship and a call.
    let mut net = deployment(35);
    let mut alice = new_client(&mut net, "alice@example.com", 36, ClientConfig::default());
    let mut bob = new_client(&mut net, "bob@gmail.com", 37, ClientConfig::default());
    alice.add_friend(id("bob@gmail.com"), None);
    run_add_friend_round(&mut net, Round(1), &mut [&mut alice, &mut bob]);

    // Alice's process dies; a new process loads her state (queued handshake,
    // pending DH secret and all).
    let mut alice = Client::load_state(&alice.save_state()).unwrap();
    let events = run_add_friend_round(&mut net, Round(2), &mut [&mut alice, &mut bob]);
    assert!(
        events[0].iter().any(ClientEvent::is_friend_confirmed),
        "reloaded Alice still completes the handshake: {events:?}"
    );

    // Bob's process dies too; his reloaded state still dials Alice.
    let mut bob = Client::load_state(&bob.save_state()).unwrap();
    bob.call(id("alice@example.com"), 2).unwrap();
    let start = alice
        .keywheels()
        .get(&id("bob@gmail.com"))
        .expect("keywheel established")
        .round();
    for r in 1..=start.as_u64() {
        let events = run_dialing_round(&mut net, Round(r), &mut [&mut alice, &mut bob]);
        if r == start.as_u64() {
            assert!(
                events[0].iter().any(ClientEvent::is_incoming_call),
                "Alice receives the reloaded Bob's call: {events:?}"
            );
        }
    }
}

#[test]
fn save_to_and_load_from_files_atomically() {
    let dir = std::env::temp_dir().join(format!("alpenhorn-client-save-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("alice.state");

    assert!(Client::load_from(&path).unwrap().is_none());
    let mut net = deployment(38);
    let alice = new_client(&mut net, "alice@example.com", 39, ClientConfig::default());
    alice.save_to(&path).unwrap();
    let reloaded = Client::load_from(&path).unwrap().expect("save exists");
    assert_eq!(reloaded.save_state(), alice.save_state());
    std::fs::remove_dir_all(dir).unwrap();
}
