//! # Alpenhorn client library
//!
//! Alpenhorn bootstraps secure communication between two users who only know
//! each other's email address, without leaking metadata (who is friending or
//! calling whom) and with forward secrecy for that metadata. This crate is
//! the client side of the system described in the OSDI 2016 paper
//! *"Alpenhorn: Bootstrapping Secure Communication without Leaking
//! Metadata"* by Lazar and Zeldovich; the server substrates live in the
//! sibling crates (`alpenhorn-pkg`, `alpenhorn-mixnet`,
//! `alpenhorn-coordinator`).
//!
//! ## Functionality (paper Figure 1)
//!
//! | Paper API | This crate |
//! |---|---|
//! | `Register(email)` | [`Client::new`] + [`Client::register`] |
//! | `MySigningKey()` | [`Client::signing_public_key`] |
//! | `AddFriend(email, key?)` | [`Client::add_friend`] |
//! | `Call(email, intent)` | [`Client::call`] |
//! | `NewFriend` callback | [`ClientEvent::FriendRequestReceived`] (+ auto-accept policy or [`Client::accept_friend_request`]) |
//! | `IncomingCall` callback | [`ClientEvent::IncomingCall`] |
//!
//! The prototype's callbacks are represented as [`ClientEvent`] values
//! returned from the round-processing methods, which suits Rust ownership
//! better than reentrant callbacks; an application drains the events after
//! each round.
//!
//! ## Round-driven operation
//!
//! Alpenhorn is round based. Each add-friend round a client extracts its IBE
//! identity keys, submits exactly one fixed-size (possibly cover) request,
//! and later downloads and trial-decrypts its mailbox. Each dialing round a
//! client submits one (possibly cover) dial token and scans the round's Bloom
//! filter for calls from its friends. See the `quickstart` example for the
//! full loop against an in-process cluster.
//!
//! ## Transports
//!
//! The client reaches its coordinator through the [`Transport`] trait: the
//! deterministic in-process [`LoopbackTransport`] (tests, simulation) or
//! [`TcpTransport`] against a networked `alpenhornd` daemon. Both carry the
//! same versioned RPC protocol ([`alpenhorn_wire::rpc`]); see
//! `docs/ARCHITECTURE.md`.
//!
//! ## Fault tolerance
//!
//! Every RPC runs under the client's [`RetryPolicy`] ([`crate::retry`]):
//! transport failures and typed `Unavailable` server faults are retried with
//! jittered exponential backoff and per-call deadlines, repairing poisoned
//! connections via [`Transport::reset`] along the way. For testing,
//! [`FaultyTransport`] wraps any transport and injects a deterministic,
//! seed-driven schedule of drops, delays, disconnects, corruption, and
//! partitions from a declarative [`FaultPlan`] ([`crate::fault`]); see
//! "Fault model & retry semantics" in `docs/ARCHITECTURE.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addressbook;
pub mod client;
#[cfg(test)]
mod client_tests;
pub mod error;
pub mod events;
pub mod fault;
pub mod retry;
pub mod transport;

pub use addressbook::{AddressBook, FriendEntry, FriendStatus};
pub use client::{Client, ClientConfig};
pub use error::ClientError;
pub use events::ClientEvent;
pub use fault::{
    FaultPlan, FaultProbabilities, FaultyTransport, FlakyWindow, InjectedFault, PartitionWindow,
};
pub use retry::RetryPolicy;
pub use transport::{
    CdnRoutedTransport, LoopbackTransport, TcpTransport, Transport, TransportError,
};

pub use alpenhorn_keywheel::{Intent, SessionKey};
pub use alpenhorn_wire::{Identity, Round};
