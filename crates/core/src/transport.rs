//! Transports carrying the client ↔ coordinator RPC protocol.
//!
//! The [`Client`](crate::Client) never touches a server object directly; it
//! issues [`Request`]s through a [`Transport`] and interprets the
//! [`Response`]s. Two transports are provided:
//!
//! * [`LoopbackTransport`] — wraps an in-process
//!   [`CoordinatorService`] (and thus a [`Cluster`]). No serialization, no
//!   I/O, fully deterministic: this is what tests, examples, and the
//!   evaluation harness use, and it preserves the exact semantics of the
//!   pre-RPC in-process cluster. Cloning a loopback transport yields another
//!   handle to the *same* deployment, mirroring multiple TCP connections to
//!   one daemon.
//! * [`TcpTransport`] — a persistent framed connection to a remote
//!   `alpenhornd` (see `alpenhorn-coordinator`'s `server` module), one
//!   request/response exchange per call.
//!
//! Both paths funnel into the same service dispatch on the server side, so a
//! seeded scenario produces byte-identical client events over either
//! transport (covered by `tests/transport_equivalence.rs`).

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use alpenhorn_bloom::BloomFilter;
use alpenhorn_cdn::ShardedCdn;
use alpenhorn_coordinator::service::CoordinatorService;
use alpenhorn_coordinator::{CdnStats, Cluster, ServiceWriteGuard, SharedCoordinator};
use alpenhorn_wire::cdn::decode_add_friend_blob;
use alpenhorn_wire::codec::FrameIoError;
use alpenhorn_wire::{Frame, Request, Response, RoundKind, WireError};

/// Errors raised by a transport itself (as opposed to typed errors the
/// coordinator reports inside a [`Response::Error`], which the client
/// surfaces as [`crate::ClientError`] variants).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A message or frame failed to encode or decode.
    Wire(WireError),
    /// The underlying connection failed.
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// The connection was poisoned by an earlier failure and must be
    /// replaced; `original` is that first failure (e.g. the framing error
    /// that desynchronized the stream). Returned by every call made on a
    /// poisoned [`TcpTransport`] until the caller reconnects.
    Poisoned {
        /// The failure that poisoned the connection.
        original: Box<TransportError>,
    },
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Wire(e) => write!(f, "transport wire error: {e}"),
            TransportError::Io { kind, detail } => {
                write!(f, "transport I/O error ({kind:?}): {detail}")
            }
            TransportError::Poisoned { original } => {
                write!(
                    f,
                    "connection poisoned by an earlier transport failure ({original}); reconnect"
                )
            }
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

impl From<FrameIoError> for TransportError {
    fn from(e: FrameIoError) -> Self {
        match e {
            FrameIoError::Io(e) => e.into(),
            FrameIoError::Wire(e) => e.into(),
        }
    }
}

/// A bidirectional request/response channel to an Alpenhorn coordinator.
pub trait Transport {
    /// Sends one request and waits for its response.
    fn call(&mut self, request: Request) -> Result<Response, TransportError>;

    /// Attempts to restore the transport to a callable state after a
    /// failure — the recovery hook the client's retry policy invokes before
    /// re-attempting a call on a poisoned connection.
    ///
    /// The default is a no-op `Ok(())`, which is correct for stateless
    /// transports (loopback dispatch has no connection to replace).
    /// [`TcpTransport`] reconnects to its original address and clears the
    /// poisoned marker.
    fn reset(&mut self) -> Result<(), TransportError> {
        Ok(())
    }
}

/// In-process transport: dispatches requests straight onto a
/// [`SharedCoordinator`] with no serialization or I/O.
///
/// Clones share the underlying deployment, so one test can hand "connections"
/// to several clients plus a round-driving admin, exactly like multiple TCP
/// connections to one daemon. Calls go through the same snapshot fast path
/// the TCP server uses, so loopback tests exercise the concurrent dispatch,
/// not a privileged shortcut.
#[derive(Clone)]
pub struct LoopbackTransport {
    shared: SharedCoordinator,
}

impl LoopbackTransport {
    /// Wraps a cluster in a default-configured service (no rate limiting).
    pub fn new(cluster: Cluster) -> Self {
        Self::with_service(CoordinatorService::new(cluster))
    }

    /// Wraps an explicitly configured service.
    pub fn with_service(service: CoordinatorService) -> Self {
        LoopbackTransport {
            shared: SharedCoordinator::new(service),
        }
    }

    /// The shared coordinator handle behind this transport, for callers that
    /// dispatch requests concurrently (servers, benchmarks).
    pub fn shared(&self) -> &SharedCoordinator {
        &self.shared
    }

    /// Takes the service write lock and returns the guard, for server-side
    /// operations (driving rounds, inspecting the CDN, advancing the
    /// simulated clock). Dropping the guard republishes the read snapshot.
    /// Do not hold the guard across a [`Transport::call`] on the same
    /// transport.
    pub fn service(&self) -> ServiceWriteGuard<'_> {
        self.shared.write()
    }

    /// Runs `f` with mutable access to the underlying cluster — the
    /// server-side escape hatch for round driving and test inspection.
    pub fn with_cluster<R>(&self, f: impl FnOnce(&mut Cluster) -> R) -> R {
        f(self.service().cluster_mut())
    }

    /// Crash-restarts the deployment behind this transport in place: the
    /// current [`CoordinatorService`] is dropped (the "crash" — all
    /// in-memory state is lost) and replaced by whatever `rebuild` returns,
    /// typically a service recovered from durable storage. Every clone of
    /// this transport — including fault-injection wrappers holding one —
    /// sees the recovered deployment on its next call, exactly as TCP
    /// clients see a restarted daemon. The scenario engine's crash-restart
    /// storm events are built on this.
    pub fn restart_with(&self, rebuild: impl FnOnce() -> CoordinatorService) {
        let mut guard = self.service();
        // Swap in a throwaway placeholder first so the old service (and any
        // storage handles it owns, e.g. an open WAL) is fully dropped before
        // `rebuild` reopens the same directory.
        let placeholder =
            CoordinatorService::new(Cluster::new(alpenhorn_coordinator::ClusterConfig::test(0)));
        drop(std::mem::replace(&mut *guard, placeholder));
        *guard = rebuild();
    }
}

impl Transport for LoopbackTransport {
    fn call(&mut self, request: Request) -> Result<Response, TransportError> {
        Ok(self.shared.handle(request))
    }
}

/// TCP transport: one persistent framed connection to an `alpenhornd`
/// daemon, one request/response exchange per call.
///
/// After any I/O or framing failure the connection is poisoned: the stream
/// offset can no longer be trusted (a partial frame may remain buffered), so
/// every later call fails fast with [`TransportError::Poisoned`] — carrying
/// the original failure — instead of parsing mid-frame bytes as a header and
/// hanging. Reconnect to recover.
pub struct TcpTransport {
    stream: TcpStream,
    /// The resolved peer address, kept so [`TcpTransport::reconnect`] can
    /// replace a poisoned connection. `None` for
    /// [`TcpTransport::from_stream`] wrappers, which have no address to dial.
    peer: Option<std::net::SocketAddr>,
    /// Read/write timeout applied to the socket (and to reconnections).
    io_timeout: Option<Duration>,
    /// The first failure, kept so reuse reports *why* the connection died.
    poisoned: Option<TransportError>,
}

impl TcpTransport {
    /// How long a connection attempt may take before giving up. Without a
    /// bound, a dead coordinator holds the client in the OS connect default
    /// (minutes).
    pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);
    /// Default socket read/write timeout: long enough for a round close (the
    /// coordinator runs the mixnet synchronously before answering), short
    /// enough that a hung daemon cannot strand the client indefinitely.
    pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(60);

    /// Connects to a coordinator at `addr` with the default connect and I/O
    /// timeouts.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with_timeouts(
            addr,
            Self::DEFAULT_CONNECT_TIMEOUT,
            Some(Self::DEFAULT_IO_TIMEOUT),
        )
    }

    /// Connects with explicit timeouts. Each resolved address is tried in
    /// order with [`TcpStream::connect_timeout`]; `io_timeout: None` disables
    /// the socket read/write timeouts.
    pub fn connect_with_timeouts(
        addr: impl ToSocketAddrs,
        connect_timeout: Duration,
        io_timeout: Option<Duration>,
    ) -> std::io::Result<Self> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match Self::open(candidate, connect_timeout, io_timeout) {
                Ok(stream) => {
                    return Ok(TcpTransport {
                        stream,
                        peer: Some(candidate),
                        io_timeout,
                        poisoned: None,
                    })
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to no candidates",
            )
        }))
    }

    fn open(
        addr: std::net::SocketAddr,
        connect_timeout: Duration,
        io_timeout: Option<Duration>,
    ) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(io_timeout)?;
        stream.set_write_timeout(io_timeout)?;
        Ok(stream)
    }

    /// Wraps an already-connected stream. The wrapper cannot reconnect (it
    /// has no address); [`TcpTransport::reconnect`] on it fails.
    pub fn from_stream(stream: TcpStream) -> Self {
        TcpTransport {
            stream,
            peer: None,
            io_timeout: None,
            poisoned: None,
        }
    }

    /// Whether the connection has been poisoned by an earlier failure and
    /// must be replaced.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Replaces the underlying connection with a fresh one to the original
    /// peer address and clears the poisoned marker — the recovery path from
    /// [`TransportError::Poisoned`] that does not require rebuilding the
    /// client. Fails (leaving any poisoned state in place) if the transport
    /// was built from a raw stream or the peer cannot be reached.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let peer = self.peer.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                "transport was built from a raw stream; no address to reconnect to",
            )
        })?;
        let stream = Self::open(peer, Self::DEFAULT_CONNECT_TIMEOUT, self.io_timeout)?;
        self.stream = stream;
        self.poisoned = None;
        Ok(())
    }

    fn poison(&mut self, original: TransportError) -> TransportError {
        self.poisoned = Some(original.clone());
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        original
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, request: Request) -> Result<Response, TransportError> {
        if let Some(original) = &self.poisoned {
            return Err(TransportError::Poisoned {
                original: Box::new(original.clone()),
            });
        }
        // Round-scoped requests carry their telemetry correlation id in the
        // frame, so the server's dispatch span joins the same trace as the
        // client's work on this round.
        let correlation = request
            .round_scope()
            .map(|(kind, round)| alpenhorn_obs::correlation_id(kind.code(), round.0));
        if let Err(e) =
            Frame::write_to_with_telemetry(&mut self.stream, &request.encode(), correlation)
        {
            return Err(self.poison(e.into()));
        }
        let payload = match Frame::read_from(&mut self.stream) {
            Ok(payload) => payload,
            Err(e) => return Err(self.poison(e.into())),
        };
        // A response that fails to decode arrived inside an intact frame, so
        // the stream is still aligned — no need to poison.
        Ok(Response::decode(&payload)?)
    }

    /// Reconnects if (and only if) the connection is poisoned; a healthy
    /// connection is left alone.
    fn reset(&mut self) -> Result<(), TransportError> {
        if self.poisoned.is_none() {
            return Ok(());
        }
        self.reconnect().map_err(TransportError::from)
    }
}

/// A transport that offloads mailbox downloads to an erasure-coded CDN
/// fleet, passing everything else to the inner transport (the paper's §7
/// deployment: the coordinator hands out mailbox state, a CDN serves it).
///
/// `FetchAddFriendMailbox`/`FetchDialingMailbox` are answered by fetching
/// and reassembling the round's shards from any `k` live nodes. Any miss —
/// unpublished round, empty mailbox, too many dead nodes, or a blob that
/// fails validation — falls back to the inner transport, so the origin stays
/// authoritative and this wrapper can never make a fetch *less* available.
/// The fallback answer is byte-identical to the shard-path answer because
/// the coordinator publishes the same encoded blobs it serves.
pub struct CdnRoutedTransport<T> {
    inner: T,
    fleet: Arc<ShardedCdn>,
    /// Download accounting to charge for shard-path fetches, so in-process
    /// evaluation runs report the same `bytes_served`/`downloads` figures as
    /// an undistributed deployment plus the parity/shard overhead counters.
    /// `None` for true remote deployments, where the client has no handle on
    /// the coordinator's counters.
    stats: Option<Arc<CdnStats>>,
}

impl<T> CdnRoutedTransport<T> {
    /// Routes mailbox fetches to `fleet`, everything else to `inner`.
    pub fn new(inner: T, fleet: Arc<ShardedCdn>) -> Self {
        CdnRoutedTransport {
            inner,
            fleet,
            stats: None,
        }
    }

    /// Charges shard-path downloads to the coordinator's CDN counters (see
    /// [`Cluster::cdn_download_stats`]).
    pub fn with_stats(mut self, stats: Arc<CdnStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The inner transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Mutable access to the inner transport (reconnection, fault levers).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Fetches one blob from the fleet, answering `None` on *any* miss or
    /// failure — the caller falls back to the inner transport.
    fn fetch_blob(
        &self,
        kind: RoundKind,
        round: alpenhorn_wire::Round,
        mailbox: alpenhorn_wire::MailboxId,
    ) -> Option<Vec<u8>> {
        let outcome = self.fleet.fetch(kind, round, mailbox).ok()?;
        let blob = outcome.blob?;
        if let Some(stats) = &self.stats {
            stats.serve_sharded_download(
                outcome.data_bytes,
                outcome.parity_bytes,
                outcome.shard_fetches,
            );
        }
        Some(blob)
    }
}

impl<T: Transport> Transport for CdnRoutedTransport<T> {
    fn call(&mut self, request: Request) -> Result<Response, TransportError> {
        match &request {
            Request::FetchAddFriendMailbox { round, mailbox } => {
                if let Some(blob) = self.fetch_blob(RoundKind::AddFriend, *round, *mailbox) {
                    if let Ok(contents) = decode_add_friend_blob(&blob) {
                        return Ok(Response::AddFriendMailbox { contents });
                    }
                }
            }
            Request::FetchDialingMailbox { round, mailbox } => {
                if let Some(blob) = self.fetch_blob(RoundKind::Dialing, *round, *mailbox) {
                    // Validate before serving: a corrupt blob must fall back
                    // to the origin, not poison the client's dial scan.
                    if BloomFilter::from_bytes(&blob).is_some() {
                        return Ok(Response::DialingMailbox { filter: blob });
                    }
                }
            }
            _ => {}
        }
        self.inner.call(request)
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        self.inner.reset()
    }
}
