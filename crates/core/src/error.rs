//! Error type for the Alpenhorn client.
//!
//! Boundary errors are unified here: wire-codec failures
//! ([`alpenhorn_wire::WireError`]), transport failures
//! ([`crate::transport::TransportError`]), typed server errors reported over
//! the RPC boundary ([`alpenhorn_wire::RpcError`]), and in-process
//! coordinator errors ([`alpenhorn_coordinator::CoordinatorError`]) all
//! convert into typed [`ClientError`] variants via `From`, so call sites
//! use `?` instead of ad-hoc mapping.

use alpenhorn_wire::{Identity, RateLimitReason, RpcError, WireError};

use crate::transport::TransportError;

/// Errors returned by [`crate::Client`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The client has not completed registration with the PKGs yet.
    NotRegistered,
    /// The named user is not in the address book (or has no keywheel yet).
    NotAFriend(Identity),
    /// There is no pending incoming friend request from this user.
    NoPendingRequest(Identity),
    /// The friend request's out-of-band key did not match the key carried in
    /// the request (possible man-in-the-middle).
    KeyMismatch(Identity),
    /// An intent value was outside the configured range.
    InvalidIntent {
        /// The intent that was passed.
        intent: u32,
        /// The number of intents the client was configured with.
        num_intents: u32,
    },
    /// The coordinator returned a different number of PKG extraction
    /// responses than the client has configured PKG verification keys, so the
    /// anytrust attestation check cannot cover the whole aggregate.
    PkgResponseCount {
        /// Number of configured PKG verification keys.
        expected: usize,
        /// Number of responses the coordinator returned.
        actual: usize,
    },
    /// The client has no stored round state to process a mailbox against
    /// (participate was not called for this round).
    NoRoundState,
    /// An error from the coordinator/cluster.
    Coordinator(alpenhorn_coordinator::CoordinatorError),
    /// An error from the keywheel (e.g. dialing a round whose key is erased).
    Keywheel(alpenhorn_keywheel::KeywheelError),
    /// The coordinator did not have a mailbox the client expected to
    /// download.
    MissingMailbox,
    /// The submission or token issuance was rate limited by the coordinator.
    RateLimited(RateLimitReason),
    /// The transport failed (connection, framing, codec).
    Transport(TransportError),
    /// The transport was reused after an earlier failure poisoned it; the
    /// boxed error is the original failure (e.g. the framing error that
    /// desynchronized the stream). The connection must be replaced — retrying
    /// on it cannot succeed.
    TransportPoisoned {
        /// The failure that poisoned the connection.
        original: Box<TransportError>,
    },
    /// A wire encoding or decoding failed client-side.
    Wire(WireError),
    /// The coordinator reported a typed error with no more specific client
    /// mapping (e.g. a PKG rejection).
    Rpc(RpcError),
    /// The coordinator returned a structurally valid but semantically
    /// unusable response (wrong variant, undecodable curve point, ...).
    UnexpectedResponse {
        /// What the client was trying to do.
        context: &'static str,
    },
    /// The per-call deadline configured in the client's
    /// [`crate::retry::RetryPolicy`] expired before a retryable call
    /// succeeded; `last` is the failure observed on the final attempt.
    Deadline {
        /// How many attempts were made before the deadline expired.
        attempts: u32,
        /// The error from the last attempt.
        last: Box<ClientError>,
    },
    /// Every attempt permitted by the client's
    /// [`crate::retry::RetryPolicy`] failed with a retryable error; `last`
    /// is the failure observed on the final attempt.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error from the last attempt.
        last: Box<ClientError>,
    },
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::NotRegistered => write!(f, "client is not registered"),
            ClientError::NotAFriend(id) => write!(f, "{id} is not a confirmed friend"),
            ClientError::NoPendingRequest(id) => {
                write!(f, "no pending friend request from {id}")
            }
            ClientError::KeyMismatch(id) => {
                write!(
                    f,
                    "signing key in request from {id} does not match the expected key"
                )
            }
            ClientError::InvalidIntent {
                intent,
                num_intents,
            } => {
                write!(
                    f,
                    "intent {intent} out of range (client configured for {num_intents})"
                )
            }
            ClientError::PkgResponseCount { expected, actual } => {
                write!(
                    f,
                    "coordinator returned {actual} PKG responses but {expected} PKG keys are configured"
                )
            }
            ClientError::NoRoundState => {
                write!(f, "no stored round state (participate was not called)")
            }
            ClientError::Coordinator(e) => write!(f, "coordinator error: {e}"),
            ClientError::Keywheel(e) => write!(f, "keywheel error: {e}"),
            ClientError::MissingMailbox => write!(f, "expected mailbox was not available"),
            ClientError::RateLimited(reason) => write!(f, "rate limited: {reason}"),
            ClientError::Transport(e) => write!(f, "transport error: {e}"),
            ClientError::TransportPoisoned { original } => {
                write!(
                    f,
                    "transport reused after being poisoned by: {original}; reconnect"
                )
            }
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Rpc(e) => write!(f, "server error: {e}"),
            ClientError::UnexpectedResponse { context } => {
                write!(f, "unexpected coordinator response while {context}")
            }
            ClientError::Deadline { attempts, last } => {
                write!(
                    f,
                    "call deadline expired after {attempts} attempt(s); last error: {last}"
                )
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempt(s); last error: {last}"
                )
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<alpenhorn_coordinator::CoordinatorError> for ClientError {
    fn from(e: alpenhorn_coordinator::CoordinatorError) -> Self {
        ClientError::Coordinator(e)
    }
}

impl From<alpenhorn_keywheel::KeywheelError> for ClientError {
    fn from(e: alpenhorn_keywheel::KeywheelError) -> Self {
        ClientError::Keywheel(e)
    }
}

impl From<TransportError> for ClientError {
    fn from(e: TransportError) -> Self {
        match e {
            // Reuse-after-poisoning gets its own typed variant so callers
            // can distinguish "replace the connection" from transient I/O.
            TransportError::Poisoned { original } => ClientError::TransportPoisoned { original },
            other => ClientError::Transport(other),
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<RpcError> for ClientError {
    fn from(e: RpcError) -> Self {
        use alpenhorn_coordinator::CoordinatorError;
        match e {
            // Server errors with an exact in-process equivalent map back to
            // the typed coordinator variants, so loopback and TCP behave
            // identically and pre-RPC matches keep working.
            RpcError::RoundNotOpen { requested } => {
                ClientError::Coordinator(CoordinatorError::RoundNotOpen { requested })
            }
            RpcError::RoundAlreadyOpen => {
                ClientError::Coordinator(CoordinatorError::RoundAlreadyOpen)
            }
            RpcError::WrongRequestSize { expected, actual } => {
                ClientError::Coordinator(CoordinatorError::WrongRequestSize {
                    expected: expected as usize,
                    actual: actual as usize,
                })
            }
            RpcError::CommitmentMismatch { pkg_index } => {
                ClientError::Coordinator(CoordinatorError::CommitmentMismatch {
                    pkg_index: pkg_index as usize,
                })
            }
            RpcError::UnknownMailbox => ClientError::MissingMailbox,
            RpcError::RateLimited { reason } => ClientError::RateLimited(reason),
            other => ClientError::Rpc(other),
        }
    }
}
