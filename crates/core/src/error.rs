//! Error type for the Alpenhorn client.

use alpenhorn_wire::Identity;

/// Errors returned by [`crate::Client`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The client has not completed registration with the PKGs yet.
    NotRegistered,
    /// The named user is not in the address book (or has no keywheel yet).
    NotAFriend(Identity),
    /// There is no pending incoming friend request from this user.
    NoPendingRequest(Identity),
    /// The friend request's out-of-band key did not match the key carried in
    /// the request (possible man-in-the-middle).
    KeyMismatch(Identity),
    /// An intent value was outside the configured range.
    InvalidIntent {
        /// The intent that was passed.
        intent: u32,
        /// The number of intents the client was configured with.
        num_intents: u32,
    },
    /// The cluster returned a different number of PKG extraction responses
    /// than the client has configured PKG verification keys, so the anytrust
    /// attestation check cannot cover the whole aggregate.
    PkgResponseCount {
        /// Number of configured PKG verification keys.
        expected: usize,
        /// Number of responses the cluster returned.
        actual: usize,
    },
    /// An error from the coordinator/cluster.
    Coordinator(alpenhorn_coordinator::CoordinatorError),
    /// An error from the keywheel (e.g. dialing a round whose key is erased).
    Keywheel(alpenhorn_keywheel::KeywheelError),
    /// The cluster did not have a mailbox the client expected to download.
    MissingMailbox,
}

impl core::fmt::Display for ClientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClientError::NotRegistered => write!(f, "client is not registered"),
            ClientError::NotAFriend(id) => write!(f, "{id} is not a confirmed friend"),
            ClientError::NoPendingRequest(id) => {
                write!(f, "no pending friend request from {id}")
            }
            ClientError::KeyMismatch(id) => {
                write!(
                    f,
                    "signing key in request from {id} does not match the expected key"
                )
            }
            ClientError::InvalidIntent {
                intent,
                num_intents,
            } => {
                write!(
                    f,
                    "intent {intent} out of range (client configured for {num_intents})"
                )
            }
            ClientError::PkgResponseCount { expected, actual } => {
                write!(
                    f,
                    "cluster returned {actual} PKG responses but {expected} PKG keys are configured"
                )
            }
            ClientError::Coordinator(e) => write!(f, "coordinator error: {e}"),
            ClientError::Keywheel(e) => write!(f, "keywheel error: {e}"),
            ClientError::MissingMailbox => write!(f, "expected mailbox was not available"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<alpenhorn_coordinator::CoordinatorError> for ClientError {
    fn from(e: alpenhorn_coordinator::CoordinatorError) -> Self {
        ClientError::Coordinator(e)
    }
}

impl From<alpenhorn_keywheel::KeywheelError> for ClientError {
    fn from(e: alpenhorn_keywheel::KeywheelError) -> Self {
        ClientError::Keywheel(e)
    }
}
