//! Client-side retry, backoff, and deadline policy for coordinator RPCs.
//!
//! Every [`crate::Client`] RPC funnels through [`execute`], which classifies
//! failures into **retryable** and **terminal**:
//!
//! * retryable — any [`TransportError`] (the request may never have reached
//!   the coordinator, or the response was lost; the transport is
//!   [`Transport::reset`] before the next attempt, which reconnects a
//!   poisoned TCP connection), and the typed server fault
//!   [`RpcError::Unavailable`] (overload shedding, storage stalls), whose
//!   `retry_after_ms` hint stretches the backoff;
//! * terminal — every other server-reported error (`BadRequest`,
//!   `RateLimited`, round-state errors, ...): retrying cannot change the
//!   answer, so the error surfaces immediately.
//!
//! The default policy is [`RetryPolicy::none`]: one attempt, failures
//! surfaced raw — exactly the pre-retry client behaviour. Applications (and
//! the chaos test-suite) opt in via [`RetryPolicy::standard`] or a custom
//! policy.
//!
//! Retries are deliberately invisible to the protocol state machine: the
//! jitter stream is independent of the client's cryptographic RNG, so a run
//! that needed five attempts per call emits byte-identical
//! [`crate::ClientEvent`]s to a fault-free run (asserted by
//! `tests/chaos.rs`). Whether retrying a *mutating* RPC is safe is a server
//! contract — every mutating Alpenhorn RPC is replay-idempotent; see
//! "Fault model & retry semantics" in `docs/ARCHITECTURE.md`.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use alpenhorn_crypto::ChaChaRng;
use alpenhorn_obs::Counter;
use alpenhorn_wire::{Request, Response, RpcError};

use crate::error::ClientError;
use crate::transport::Transport;

/// Client retry telemetry. Counters only — never timings — so the values are
/// deterministic for a given fault schedule, and never read back by the
/// protocol.
struct RetryMetrics {
    retries_total: Arc<Counter>,
    unavailable_total: Arc<Counter>,
    exhausted_total: Arc<Counter>,
    deadline_total: Arc<Counter>,
}

fn retry_metrics() -> &'static RetryMetrics {
    static METRICS: OnceLock<RetryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = alpenhorn_obs::global();
        RetryMetrics {
            retries_total: r.counter("client_retries_total", &[]),
            unavailable_total: r.counter("client_unavailable_total", &[]),
            exhausted_total: r.counter("client_retries_exhausted_total", &[]),
            deadline_total: r.counter("client_deadline_expired_total", &[]),
        }
    })
}

/// When (and how often) a [`crate::Client`] retries a failed RPC.
///
/// Backoff between attempts is exponential with decorrelating jitter: the
/// `n`-th wait is drawn uniformly from `[base/2 .. base] * 2^(n-1)`, capped
/// at `max_backoff`, and stretched to honour any server `retry_after_ms`
/// hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry (scaled exponentially afterwards).
    pub base_backoff: Duration,
    /// Upper bound on a single backoff wait.
    pub max_backoff: Duration,
    /// Overall per-call time budget across all attempts and waits. When it
    /// expires before a retry would start, the call fails with
    /// [`ClientError::Deadline`]. `None` bounds the call only by
    /// `max_attempts`.
    pub deadline: Option<Duration>,
}

impl RetryPolicy {
    /// One attempt, no waiting: failures surface raw and unchanged. This is
    /// the default policy, preserving exact pre-retry client behaviour.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: None,
        }
    }

    /// A production-shaped policy: 5 attempts, 25 ms base backoff doubling
    /// up to 1 s, 10 s per-call deadline.
    pub fn standard() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            deadline: Some(Duration::from_secs(10)),
        }
    }

    /// An aggressive test-suite policy: many attempts, near-zero waits, no
    /// deadline — rides out dense fault schedules without slowing the tests.
    pub fn aggressive_test() -> Self {
        RetryPolicy {
            max_attempts: 64,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            deadline: None,
        }
    }

    /// Whether this policy never retries (single attempt).
    pub fn is_none(&self) -> bool {
        self.max_attempts <= 1
    }

    /// The jittered wait before retry number `retry` (1-based).
    fn backoff(&self, retry: u32, rng: &mut ChaChaRng) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = retry.saturating_sub(1).min(20);
        let scaled = self
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff)
            .max(self.base_backoff);
        // Decorrelating jitter: uniform in [scaled/2, scaled].
        let nanos = scaled.as_nanos() as u64;
        Duration::from_nanos(nanos / 2 + rng.gen_range(nanos / 2 + 1))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// How a failed attempt should be handled.
enum Classified {
    /// Retryable after a transport reset (connection-level failure; the
    /// request may or may not have reached the server).
    ResetAndRetry(ClientError),
    /// Retryable transient server fault; the server suggested waiting at
    /// least this long (0 = no hint).
    RetryAfter(ClientError, u32),
    /// Not retryable; surface immediately.
    Terminal(ClientError),
}

fn classify(
    outcome: Result<Response, crate::transport::TransportError>,
) -> Result<Response, Classified> {
    match outcome {
        Ok(Response::Error(e)) => match e {
            RpcError::Unavailable { retry_after_ms, .. } => {
                let hint = retry_after_ms;
                Err(Classified::RetryAfter(ClientError::from(e), hint))
            }
            other => Err(Classified::Terminal(ClientError::from(other))),
        },
        Ok(response) => Ok(response),
        // Every transport failure is retryable: either the request never
        // made it out (safe to resend) or the response was lost after the
        // server executed it (safe because every mutating RPC is
        // replay-idempotent). Poisoned connections are repaired by reset.
        Err(te) => Err(Classified::ResetAndRetry(ClientError::from(te))),
    }
}

/// Issues `request` through `net` under `policy`, resending on retryable
/// failures with jittered exponential backoff (drawn from `rng`) until the
/// call succeeds, a terminal error surfaces, the attempt budget runs out
/// ([`ClientError::RetriesExhausted`]), or the deadline expires
/// ([`ClientError::Deadline`]).
///
/// Under [`RetryPolicy::none`] this is exactly one `net.call` with no
/// cloning, waiting, or error rewrapping.
pub fn execute<T: Transport + ?Sized>(
    policy: &RetryPolicy,
    rng: &mut ChaChaRng,
    net: &mut T,
    request: Request,
) -> Result<Response, ClientError> {
    if policy.is_none() {
        return match net.call(request)? {
            Response::Error(e) => Err(e.into()),
            response => Ok(response),
        };
    }

    let started = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let (error, reset, hint_ms) = match classify(net.call(request.clone())) {
            Ok(response) => return Ok(response),
            Err(Classified::Terminal(e)) => return Err(e),
            Err(Classified::ResetAndRetry(e)) => (e, true, 0),
            Err(Classified::RetryAfter(e, hint)) => {
                retry_metrics().unavailable_total.inc();
                (e, false, hint)
            }
        };
        if attempts >= policy.max_attempts {
            retry_metrics().exhausted_total.inc();
            return Err(ClientError::RetriesExhausted {
                attempts,
                last: Box::new(error),
            });
        }
        retry_metrics().retries_total.inc();
        let wait = policy
            .backoff(attempts, rng)
            .max(Duration::from_millis(u64::from(hint_ms)));
        if let Some(deadline) = policy.deadline {
            if started.elapsed() + wait >= deadline {
                retry_metrics().deadline_total.inc();
                return Err(ClientError::Deadline {
                    attempts,
                    last: Box::new(error),
                });
            }
        }
        if reset {
            // Repair the transport before resending (reconnects a poisoned
            // TCP connection; no-op on healthy or stateless transports). A
            // failing reset just burns an attempt — the coordinator may come
            // back within the budget.
            let _ = net.reset();
        }
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TransportError;

    /// A scripted transport: pops one outcome per call.
    struct Scripted {
        outcomes: Vec<Result<Response, TransportError>>,
        resets: u32,
    }

    impl Transport for Scripted {
        fn call(&mut self, _request: Request) -> Result<Response, TransportError> {
            self.outcomes.remove(0)
        }
        fn reset(&mut self) -> Result<(), TransportError> {
            self.resets += 1;
            Ok(())
        }
    }

    fn rng() -> ChaChaRng {
        ChaChaRng::from_seed_bytes([7u8; 32])
    }

    fn io_error() -> TransportError {
        TransportError::Io {
            kind: std::io::ErrorKind::ConnectionReset,
            detail: "scripted".into(),
        }
    }

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            deadline: None,
        }
    }

    #[test]
    fn transient_failures_are_retried_with_reset() {
        let mut net = Scripted {
            outcomes: vec![Err(io_error()), Err(io_error()), Ok(Response::Ack)],
            resets: 0,
        };
        let got = execute(&fast_policy(5), &mut rng(), &mut net, Request::GetPkgKeys).unwrap();
        assert_eq!(got, Response::Ack);
        assert_eq!(net.resets, 2);
    }

    #[test]
    fn unavailable_is_retried_without_reset() {
        let unavailable = Response::Error(RpcError::Unavailable {
            detail: "scripted".into(),
            retry_after_ms: 0,
        });
        let mut net = Scripted {
            outcomes: vec![Ok(unavailable), Ok(Response::Ack)],
            resets: 0,
        };
        let got = execute(&fast_policy(5), &mut rng(), &mut net, Request::GetPkgKeys).unwrap();
        assert_eq!(got, Response::Ack);
        assert_eq!(net.resets, 0);
    }

    #[test]
    fn terminal_server_errors_surface_immediately() {
        let mut net = Scripted {
            outcomes: vec![Ok(Response::Error(RpcError::BadRequest {
                detail: "scripted".into(),
            }))],
            resets: 0,
        };
        let err = execute(&fast_policy(5), &mut rng(), &mut net, Request::GetPkgKeys).unwrap_err();
        assert!(matches!(err, ClientError::Rpc(RpcError::BadRequest { .. })));
        assert_eq!(net.resets, 0);
    }

    #[test]
    fn attempt_budget_exhaustion_is_typed() {
        let mut net = Scripted {
            outcomes: vec![Err(io_error()), Err(io_error()), Err(io_error())],
            resets: 0,
        };
        let err = execute(&fast_policy(3), &mut rng(), &mut net, Request::GetPkgKeys).unwrap_err();
        let ClientError::RetriesExhausted { attempts, last } = err else {
            panic!("expected RetriesExhausted, got {err:?}");
        };
        assert_eq!(attempts, 3);
        assert!(matches!(*last, ClientError::Transport(_)));
    }

    #[test]
    fn deadline_expiry_is_typed() {
        let mut net = Scripted {
            outcomes: vec![Err(io_error()); 10],
            resets: 0,
        };
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(50),
            deadline: Some(Duration::from_millis(1)),
        };
        let err = execute(&policy, &mut rng(), &mut net, Request::GetPkgKeys).unwrap_err();
        assert!(matches!(err, ClientError::Deadline { .. }));
    }

    #[test]
    fn none_policy_surfaces_raw_errors() {
        let mut net = Scripted {
            outcomes: vec![Err(io_error())],
            resets: 0,
        };
        let err = execute(
            &RetryPolicy::none(),
            &mut rng(),
            &mut net,
            Request::GetPkgKeys,
        )
        .unwrap_err();
        assert_eq!(err, ClientError::Transport(io_error()));
        assert_eq!(net.resets, 0);
    }
}
