//! Deterministic fault injection for transports.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs its calls
//! according to a [`FaultPlan`] — a declarative description (data, not code)
//! of request/response drops, injected delays, disconnects mid-call, frame
//! corruption, duplicate deliveries, and scripted partition windows. Because
//! it wraps the `Transport` trait, the same plan runs over the in-process
//! loopback dispatch and over a real TCP connection to `alpenhornd`.
//!
//! Every random decision is drawn from a ChaCha stream keyed by the plan
//! seed **and the call index**, so the fault schedule is a pure function of
//! `(plan, sequence of calls)`: replaying a scenario with the same plan
//! injects byte-for-byte the same faults (`tests/chaos.rs` asserts this).
//! The injected schedule is recorded and exposed via
//! [`FaultyTransport::schedule`] for that comparison.
//!
//! The faults model the client-visible failure surface of a real network:
//!
//! * **request drop** — the call fails before the server sees it;
//! * **response drop / disconnect mid-call** — the server *executed* the
//!   request but the client never learns it (the hard case for idempotency);
//! * **duplicate delivery** — the server executes the request twice;
//! * **corruption** — the reply arrives as an undecodable frame;
//! * **partition window** — a scripted range of calls during which the
//!   coordinator is unreachable.

use std::time::Duration;

use alpenhorn_crypto::ChaChaRng;
use alpenhorn_wire::{Request, Response, WireError};

use crate::transport::{Transport, TransportError};

/// A half-open range of transport call indices during which the coordinator
/// is unreachable (every call fails without reaching the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First call index inside the partition.
    pub from: u64,
    /// First call index after the partition heals.
    pub until: u64,
}

impl PartitionWindow {
    fn contains(&self, call: u64) -> bool {
        (self.from..self.until).contains(&call)
    }
}

/// The per-call fault probabilities of a [`FaultPlan`], grouped so windows
/// and plan composition can manipulate them as one value.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultProbabilities {
    /// Probability the request is dropped before reaching the server.
    pub drop_request: f64,
    /// Probability the response is dropped after server execution.
    pub drop_response: f64,
    /// Probability the request is delivered (and executed) twice.
    pub duplicate_request: f64,
    /// Probability the response frame arrives corrupted.
    pub corrupt_response: f64,
    /// Probability an extra delay is injected before the call proceeds.
    pub delay: f64,
    /// Upper bound (inclusive, milliseconds) for injected delays.
    pub max_delay_ms: u64,
}

impl FaultProbabilities {
    /// The union of two independent fault sources: each fault fires if
    /// either source fires (`1 - (1-a)(1-b)`), and delays take the longer
    /// bound. Used when a flaky-link window overlays a base plan, and by
    /// [`FaultPlan::compose`].
    pub fn union(self, other: FaultProbabilities) -> FaultProbabilities {
        fn either(a: f64, b: f64) -> f64 {
            1.0 - (1.0 - a) * (1.0 - b)
        }
        FaultProbabilities {
            drop_request: either(self.drop_request, other.drop_request),
            drop_response: either(self.drop_response, other.drop_response),
            duplicate_request: either(self.duplicate_request, other.duplicate_request),
            corrupt_response: either(self.corrupt_response, other.corrupt_response),
            delay: either(self.delay, other.delay),
            max_delay_ms: self.max_delay_ms.max(other.max_delay_ms),
        }
    }
}

/// A half-open range of call indices during which extra fault probabilities
/// overlay the plan's base rates — a scripted flaky-link episode, the
/// probabilistic sibling of [`PartitionWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlakyWindow {
    /// First call index inside the flaky window.
    pub from: u64,
    /// First call index after the link heals.
    pub until: u64,
    /// The extra fault rates in force during the window, unioned with the
    /// plan's base probabilities.
    pub faults: FaultProbabilities,
}

impl FlakyWindow {
    fn contains(&self, call: u64) -> bool {
        (self.from..self.until).contains(&call)
    }
}

/// A declarative, seed-driven fault schedule for a [`FaultyTransport`].
///
/// Probabilities are per call and independent; scripted fields
/// (`disconnect_at`, `partitions`, `flaky`) key on the transport's
/// zero-based call index. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault decision stream. Two transports with equal plans
    /// (seed included) inject identical fault schedules.
    pub seed: u64,
    /// Probability the request is dropped before reaching the server.
    pub drop_request: f64,
    /// Probability the server's response is dropped after the server
    /// executed the request (the client sees a connection reset).
    pub drop_response: f64,
    /// Probability the request is delivered twice (the server executes it
    /// twice; the client sees the second reply).
    pub duplicate_request: f64,
    /// Probability the response frame arrives corrupted (surfaces as a
    /// checksum failure).
    pub corrupt_response: f64,
    /// Probability an extra delay is injected before the call proceeds.
    pub delay: f64,
    /// Upper bound (inclusive, milliseconds) for injected delays; a delay
    /// draws uniformly from `1..=max_delay_ms`.
    pub max_delay_ms: u64,
    /// Call indices at which the connection dies mid-call: the request is
    /// delivered (the server executes it), the response never arrives, and
    /// the transport is poisoned until [`Transport::reset`].
    pub disconnect_at: Vec<u64>,
    /// Scripted partition windows (see [`PartitionWindow`]).
    pub partitions: Vec<PartitionWindow>,
    /// Scripted flaky-link windows whose extra fault rates overlay the base
    /// probabilities for the calls they cover (see [`FlakyWindow`]).
    pub flaky: Vec<FlakyWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate_request: 0.0,
            corrupt_response: 0.0,
            delay: 0.0,
            max_delay_ms: 0,
            disconnect_at: Vec::new(),
            partitions: Vec::new(),
            flaky: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (identical to [`FaultPlan::default`] with
    /// an explicit seed): useful as a base for builder-style construction.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    fn in_partition(&self, call: u64) -> bool {
        self.partitions.iter().any(|w| w.contains(call))
    }

    /// The plan's base probabilities as one value.
    pub fn probabilities(&self) -> FaultProbabilities {
        FaultProbabilities {
            drop_request: self.drop_request,
            drop_response: self.drop_response,
            duplicate_request: self.duplicate_request,
            corrupt_response: self.corrupt_response,
            delay: self.delay,
            max_delay_ms: self.max_delay_ms,
        }
    }

    /// Replaces the base probabilities from one value (the inverse of
    /// [`FaultPlan::probabilities`]).
    pub fn set_probabilities(&mut self, p: FaultProbabilities) {
        self.drop_request = p.drop_request;
        self.drop_response = p.drop_response;
        self.duplicate_request = p.duplicate_request;
        self.corrupt_response = p.corrupt_response;
        self.delay = p.delay;
        self.max_delay_ms = p.max_delay_ms;
    }

    /// The fault probabilities in force at `call`: the base rates unioned
    /// with every flaky window covering the call. With no flaky windows this
    /// is exactly [`FaultPlan::probabilities`], so pre-existing plans keep
    /// their schedules bit-for-bit.
    pub fn effective(&self, call: u64) -> FaultProbabilities {
        self.flaky
            .iter()
            .filter(|w| w.contains(call))
            .fold(self.probabilities(), |acc, w| acc.union(w.faults))
    }

    /// Composes two plans into one: fault probabilities union (either
    /// source firing injects the fault), scripted indices and windows
    /// concatenate, and the seed mixes both inputs so the composite draws a
    /// fresh — but still deterministic — decision stream. This is how the
    /// scenario engine layers a scenario-wide chaos profile over a
    /// per-client link profile.
    pub fn compose(&self, other: &FaultPlan) -> FaultPlan {
        let mut composed = FaultPlan::quiet(
            self.seed
                .rotate_left(17)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ other.seed,
        );
        composed.set_probabilities(self.probabilities().union(other.probabilities()));
        composed.disconnect_at = self
            .disconnect_at
            .iter()
            .chain(&other.disconnect_at)
            .copied()
            .collect();
        composed.partitions = self
            .partitions
            .iter()
            .chain(&other.partitions)
            .copied()
            .collect();
        composed.flaky = self.flaky.iter().chain(&other.flaky).copied().collect();
        composed
    }
}

/// One fault a [`FaultyTransport`] injected, recorded against the call index
/// it perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The request was dropped before the server saw it.
    DropRequest,
    /// The server executed the request but the response was dropped.
    DropResponse,
    /// The request was delivered (and executed) twice.
    DuplicateRequest,
    /// The response arrived as a corrupted frame.
    CorruptResponse,
    /// An extra delay of this many milliseconds was injected.
    Delay(u64),
    /// The connection died mid-call (request delivered, no response) and the
    /// transport is poisoned until reset.
    Disconnect,
    /// The call fell inside a scripted partition window.
    Partition,
}

/// A [`Transport`] wrapper injecting deterministic faults per a
/// [`FaultPlan`]. See the module docs for the fault model.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    calls: u64,
    poisoned: Option<TransportError>,
    schedule: Vec<(u64, InjectedFault)>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            calls: 0,
            poisoned: None,
            schedule: Vec::new(),
        }
    }

    /// The faults injected so far, `(call index, fault)` in injection order.
    /// Two runs of the same scenario under equal plans record equal
    /// schedules — the determinism contract `tests/chaos.rs` asserts.
    pub fn schedule(&self) -> &[(u64, InjectedFault)] {
        &self.schedule
    }

    /// Number of calls issued through this transport (including faulted
    /// ones).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Scripts a disconnect on the next call: the request will be delivered,
    /// the response lost, and the transport poisoned. Imperative counterpart
    /// to pre-listing indices in [`FaultPlan::disconnect_at`], for tests
    /// that arm the fault right before the RPC under scrutiny.
    pub fn disconnect_next_call(&mut self) {
        let next = self.calls;
        self.plan.disconnect_at.push(next);
    }

    /// Opens a partition window starting at the next call. The coordinator
    /// is unreachable through this transport until [`end_partition`]
    /// (`until` is left open-ended). The scenario engine uses this pair to
    /// compile round-scoped partition events down to call-index windows
    /// without predicting how many calls a round will issue.
    ///
    /// [`end_partition`]: FaultyTransport::end_partition
    pub fn begin_partition(&mut self) {
        self.plan.partitions.push(PartitionWindow {
            from: self.calls,
            until: u64::MAX,
        });
    }

    /// Heals every open-ended partition window as of the next call.
    pub fn end_partition(&mut self) {
        let now = self.calls;
        for window in &mut self.plan.partitions {
            if window.until == u64::MAX {
                window.until = now;
            }
        }
    }

    /// Opens a flaky-link window starting at the next call: `faults` overlay
    /// the plan's base probabilities until [`end_flaky`].
    ///
    /// [`end_flaky`]: FaultyTransport::end_flaky
    pub fn begin_flaky(&mut self, faults: FaultProbabilities) {
        self.plan.flaky.push(FlakyWindow {
            from: self.calls,
            until: u64::MAX,
            faults,
        });
    }

    /// Heals every open-ended flaky window as of the next call.
    pub fn end_flaky(&mut self) {
        let now = self.calls;
        for window in &mut self.plan.flaky {
            if window.until == u64::MAX {
                window.until = now;
            }
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped transport, mutably (e.g. to reach a loopback transport's
    /// service for server-side inspection).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Per-call decision stream: keyed by plan seed and call index, so the
    /// schedule does not depend on how many draws earlier calls consumed.
    fn call_rng(&self, call: u64) -> ChaChaRng {
        let mut seed = *b"alpenhorn fault plan derivation!";
        seed[..8].copy_from_slice(&self.plan.seed.to_le_bytes());
        seed[8..16].copy_from_slice(&call.to_le_bytes());
        ChaChaRng::from_seed_bytes(seed)
    }

    fn record(&mut self, call: u64, fault: InjectedFault) {
        self.schedule.push((call, fault));
    }
}

/// Draws a probability decision: true with probability `p`.
fn chance(rng: &mut ChaChaRng, p: f64) -> bool {
    p > 0.0 && rng.gen_f64() < p
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn call(&mut self, request: Request) -> Result<Response, TransportError> {
        if let Some(original) = &self.poisoned {
            return Err(TransportError::Poisoned {
                original: Box::new(original.clone()),
            });
        }
        let call = self.calls;
        self.calls += 1;

        // Draw every probabilistic decision up front, in a fixed order, from
        // the per-call stream: the schedule is then a pure function of
        // (plan, call index), whatever the outcomes short-circuit below.
        // Flaky windows raise the rates for the calls they cover without
        // disturbing the draw order, so calls outside every window keep the
        // schedule they had before the window was scripted.
        let eff = self.plan.effective(call);
        let mut rng = self.call_rng(call);
        let delay_ms = if chance(&mut rng, eff.delay) && eff.max_delay_ms > 0 {
            1 + rng.gen_range(eff.max_delay_ms)
        } else {
            0
        };
        let drop_request = chance(&mut rng, eff.drop_request);
        let duplicate = chance(&mut rng, eff.duplicate_request);
        let drop_response = chance(&mut rng, eff.drop_response);
        let corrupt = chance(&mut rng, eff.corrupt_response);

        if self.plan.in_partition(call) {
            self.record(call, InjectedFault::Partition);
            return Err(TransportError::Io {
                kind: std::io::ErrorKind::TimedOut,
                detail: format!("injected fault: partition window at call {call}"),
            });
        }
        if self.plan.disconnect_at.contains(&call) {
            // Mid-call disconnect: the server sees and executes the request;
            // the client's read side is then severed and the connection is
            // unusable until reset.
            let _ = self.inner.call(request);
            self.record(call, InjectedFault::Disconnect);
            let error = TransportError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                detail: format!("injected fault: disconnect mid-call at call {call}"),
            };
            self.poisoned = Some(error.clone());
            return Err(error);
        }
        if delay_ms > 0 {
            self.record(call, InjectedFault::Delay(delay_ms));
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        if drop_request {
            self.record(call, InjectedFault::DropRequest);
            return Err(TransportError::Io {
                kind: std::io::ErrorKind::TimedOut,
                detail: format!("injected fault: request dropped at call {call}"),
            });
        }

        let mut response = self.inner.call(request.clone())?;
        if duplicate {
            self.record(call, InjectedFault::DuplicateRequest);
            response = self.inner.call(request)?;
        }
        if drop_response {
            self.record(call, InjectedFault::DropResponse);
            return Err(TransportError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                detail: format!("injected fault: response dropped at call {call}"),
            });
        }
        if corrupt {
            self.record(call, InjectedFault::CorruptResponse);
            return Err(TransportError::Wire(WireError::ChecksumMismatch));
        }
        Ok(response)
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        self.poisoned = None;
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;
    use alpenhorn_coordinator::{Cluster, ClusterConfig};

    fn aggressive_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.2,
            drop_response: 0.15,
            duplicate_request: 0.1,
            corrupt_response: 0.1,
            delay: 0.3,
            max_delay_ms: 2,
            disconnect_at: vec![3],
            partitions: vec![PartitionWindow { from: 7, until: 9 }],
            flaky: Vec::new(),
        }
    }

    fn drive(plan: FaultPlan) -> Vec<(u64, InjectedFault)> {
        let net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(50)));
        let mut faulty = FaultyTransport::new(net, plan);
        for _ in 0..40 {
            if faulty.call(Request::GetPkgKeys).is_err() {
                let _ = faulty.reset();
            }
        }
        faulty.schedule().to_vec()
    }

    #[test]
    fn same_plan_same_seed_injects_identical_schedule() {
        let first = drive(aggressive_plan(42));
        let second = drive(aggressive_plan(42));
        assert!(!first.is_empty(), "an aggressive plan must inject faults");
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_inject_different_schedules() {
        assert_ne!(drive(aggressive_plan(1)), drive(aggressive_plan(2)));
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        assert!(drive(FaultPlan::quiet(9)).is_empty());
    }

    #[test]
    fn flaky_window_only_perturbs_covered_calls() {
        let storm = FaultProbabilities {
            drop_request: 1.0,
            ..FaultProbabilities::default()
        };
        let mut plan = FaultPlan::quiet(5);
        plan.flaky.push(FlakyWindow {
            from: 10,
            until: 20,
            faults: storm,
        });
        let schedule = drive(plan);
        assert_eq!(schedule.len(), 10, "exactly the covered calls fault");
        assert!(schedule
            .iter()
            .all(|(call, f)| (10..20).contains(call) && *f == InjectedFault::DropRequest));
    }

    #[test]
    fn flaky_window_leaves_base_schedule_untouched_elsewhere() {
        // A plan with a flaky window injects, outside the window, exactly
        // what the windowless plan injects: windows raise rates without
        // re-keying the decision stream.
        let base = aggressive_plan(42);
        let mut windowed = base.clone();
        windowed.flaky.push(FlakyWindow {
            from: 15,
            until: 25,
            faults: FaultProbabilities {
                corrupt_response: 0.9,
                ..FaultProbabilities::default()
            },
        });
        let bare: Vec<_> = drive(base)
            .into_iter()
            .filter(|(call, _)| !(15..25).contains(call))
            .collect();
        let overlaid: Vec<_> = drive(windowed)
            .into_iter()
            .filter(|(call, _)| !(15..25).contains(call))
            .collect();
        assert_eq!(bare, overlaid);
    }

    #[test]
    fn runtime_partition_window_opens_and_heals() {
        let net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(52)));
        let mut faulty = FaultyTransport::new(net, FaultPlan::quiet(0));
        assert!(faulty.call(Request::GetPkgKeys).is_ok());
        faulty.begin_partition();
        assert!(faulty.call(Request::GetPkgKeys).is_err());
        assert!(faulty.call(Request::GetPkgKeys).is_err());
        faulty.end_partition();
        assert!(faulty.call(Request::GetPkgKeys).is_ok());
        assert_eq!(
            faulty.plan().partitions,
            vec![PartitionWindow { from: 1, until: 3 }]
        );
    }

    #[test]
    fn runtime_flaky_window_opens_and_heals() {
        let net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(53)));
        let mut faulty = FaultyTransport::new(net, FaultPlan::quiet(0));
        faulty.begin_flaky(FaultProbabilities {
            drop_request: 1.0,
            ..FaultProbabilities::default()
        });
        assert!(faulty.call(Request::GetPkgKeys).is_err());
        faulty.end_flaky();
        assert!(faulty.call(Request::GetPkgKeys).is_ok());
    }

    #[test]
    fn compose_unions_probabilities_and_scripts() {
        let a = aggressive_plan(1);
        let mut b = FaultPlan::quiet(2);
        b.drop_request = 0.5;
        b.disconnect_at = vec![11];
        b.partitions = vec![PartitionWindow { from: 1, until: 2 }];
        let c = a.compose(&b);
        let expect = 1.0 - (1.0 - a.drop_request) * (1.0 - b.drop_request);
        assert!((c.drop_request - expect).abs() < 1e-12);
        assert_eq!(c.disconnect_at, vec![3, 11]);
        assert_eq!(c.partitions.len(), 2);
        assert_ne!(c.seed, a.seed);
        assert_ne!(c.seed, b.seed);
        // Deterministic: composing the same inputs yields the same plan.
        assert_eq!(c, a.compose(&b));
    }

    #[test]
    fn disconnect_poisons_until_reset() {
        let net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(51)));
        let mut faulty = FaultyTransport::new(
            net,
            FaultPlan {
                disconnect_at: vec![0],
                ..FaultPlan::default()
            },
        );
        assert!(matches!(
            faulty.call(Request::GetPkgKeys),
            Err(TransportError::Io { .. })
        ));
        // Poisoned until reset, carrying the original failure.
        assert!(matches!(
            faulty.call(Request::GetPkgKeys),
            Err(TransportError::Poisoned { .. })
        ));
        faulty.reset().unwrap();
        assert!(faulty.call(Request::GetPkgKeys).is_ok());
    }
}
