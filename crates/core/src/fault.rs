//! Deterministic fault injection for transports.
//!
//! [`FaultyTransport`] wraps any [`Transport`] and perturbs its calls
//! according to a [`FaultPlan`] — a declarative description (data, not code)
//! of request/response drops, injected delays, disconnects mid-call, frame
//! corruption, duplicate deliveries, and scripted partition windows. Because
//! it wraps the `Transport` trait, the same plan runs over the in-process
//! loopback dispatch and over a real TCP connection to `alpenhornd`.
//!
//! Every random decision is drawn from a ChaCha stream keyed by the plan
//! seed **and the call index**, so the fault schedule is a pure function of
//! `(plan, sequence of calls)`: replaying a scenario with the same plan
//! injects byte-for-byte the same faults (`tests/chaos.rs` asserts this).
//! The injected schedule is recorded and exposed via
//! [`FaultyTransport::schedule`] for that comparison.
//!
//! The faults model the client-visible failure surface of a real network:
//!
//! * **request drop** — the call fails before the server sees it;
//! * **response drop / disconnect mid-call** — the server *executed* the
//!   request but the client never learns it (the hard case for idempotency);
//! * **duplicate delivery** — the server executes the request twice;
//! * **corruption** — the reply arrives as an undecodable frame;
//! * **partition window** — a scripted range of calls during which the
//!   coordinator is unreachable.

use std::time::Duration;

use alpenhorn_crypto::ChaChaRng;
use alpenhorn_wire::{Request, Response, WireError};

use crate::transport::{Transport, TransportError};

/// A half-open range of transport call indices during which the coordinator
/// is unreachable (every call fails without reaching the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First call index inside the partition.
    pub from: u64,
    /// First call index after the partition heals.
    pub until: u64,
}

impl PartitionWindow {
    fn contains(&self, call: u64) -> bool {
        (self.from..self.until).contains(&call)
    }
}

/// A declarative, seed-driven fault schedule for a [`FaultyTransport`].
///
/// Probabilities are per call and independent; scripted fields
/// (`disconnect_at`, `partitions`) key on the transport's zero-based call
/// index. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault decision stream. Two transports with equal plans
    /// (seed included) inject identical fault schedules.
    pub seed: u64,
    /// Probability the request is dropped before reaching the server.
    pub drop_request: f64,
    /// Probability the server's response is dropped after the server
    /// executed the request (the client sees a connection reset).
    pub drop_response: f64,
    /// Probability the request is delivered twice (the server executes it
    /// twice; the client sees the second reply).
    pub duplicate_request: f64,
    /// Probability the response frame arrives corrupted (surfaces as a
    /// checksum failure).
    pub corrupt_response: f64,
    /// Probability an extra delay is injected before the call proceeds.
    pub delay: f64,
    /// Upper bound (inclusive, milliseconds) for injected delays; a delay
    /// draws uniformly from `1..=max_delay_ms`.
    pub max_delay_ms: u64,
    /// Call indices at which the connection dies mid-call: the request is
    /// delivered (the server executes it), the response never arrives, and
    /// the transport is poisoned until [`Transport::reset`].
    pub disconnect_at: Vec<u64>,
    /// Scripted partition windows (see [`PartitionWindow`]).
    pub partitions: Vec<PartitionWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate_request: 0.0,
            corrupt_response: 0.0,
            delay: 0.0,
            max_delay_ms: 0,
            disconnect_at: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (identical to [`FaultPlan::default`] with
    /// an explicit seed): useful as a base for builder-style construction.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    fn in_partition(&self, call: u64) -> bool {
        self.partitions.iter().any(|w| w.contains(call))
    }
}

/// One fault a [`FaultyTransport`] injected, recorded against the call index
/// it perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The request was dropped before the server saw it.
    DropRequest,
    /// The server executed the request but the response was dropped.
    DropResponse,
    /// The request was delivered (and executed) twice.
    DuplicateRequest,
    /// The response arrived as a corrupted frame.
    CorruptResponse,
    /// An extra delay of this many milliseconds was injected.
    Delay(u64),
    /// The connection died mid-call (request delivered, no response) and the
    /// transport is poisoned until reset.
    Disconnect,
    /// The call fell inside a scripted partition window.
    Partition,
}

/// A [`Transport`] wrapper injecting deterministic faults per a
/// [`FaultPlan`]. See the module docs for the fault model.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    plan: FaultPlan,
    calls: u64,
    poisoned: Option<TransportError>,
    schedule: Vec<(u64, InjectedFault)>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        FaultyTransport {
            inner,
            plan,
            calls: 0,
            poisoned: None,
            schedule: Vec::new(),
        }
    }

    /// The faults injected so far, `(call index, fault)` in injection order.
    /// Two runs of the same scenario under equal plans record equal
    /// schedules — the determinism contract `tests/chaos.rs` asserts.
    pub fn schedule(&self) -> &[(u64, InjectedFault)] {
        &self.schedule
    }

    /// Number of calls issued through this transport (including faulted
    /// ones).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Scripts a disconnect on the next call: the request will be delivered,
    /// the response lost, and the transport poisoned. Imperative counterpart
    /// to pre-listing indices in [`FaultPlan::disconnect_at`], for tests
    /// that arm the fault right before the RPC under scrutiny.
    pub fn disconnect_next_call(&mut self) {
        let next = self.calls;
        self.plan.disconnect_at.push(next);
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The wrapped transport, mutably (e.g. to reach a loopback transport's
    /// service for server-side inspection).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Per-call decision stream: keyed by plan seed and call index, so the
    /// schedule does not depend on how many draws earlier calls consumed.
    fn call_rng(&self, call: u64) -> ChaChaRng {
        let mut seed = *b"alpenhorn fault plan derivation!";
        seed[..8].copy_from_slice(&self.plan.seed.to_le_bytes());
        seed[8..16].copy_from_slice(&call.to_le_bytes());
        ChaChaRng::from_seed_bytes(seed)
    }

    fn record(&mut self, call: u64, fault: InjectedFault) {
        self.schedule.push((call, fault));
    }
}

/// Draws a probability decision: true with probability `p`.
fn chance(rng: &mut ChaChaRng, p: f64) -> bool {
    p > 0.0 && rng.gen_f64() < p
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn call(&mut self, request: Request) -> Result<Response, TransportError> {
        if let Some(original) = &self.poisoned {
            return Err(TransportError::Poisoned {
                original: Box::new(original.clone()),
            });
        }
        let call = self.calls;
        self.calls += 1;

        // Draw every probabilistic decision up front, in a fixed order, from
        // the per-call stream: the schedule is then a pure function of
        // (plan, call index), whatever the outcomes short-circuit below.
        let mut rng = self.call_rng(call);
        let delay_ms = if chance(&mut rng, self.plan.delay) && self.plan.max_delay_ms > 0 {
            1 + rng.gen_range(self.plan.max_delay_ms)
        } else {
            0
        };
        let drop_request = chance(&mut rng, self.plan.drop_request);
        let duplicate = chance(&mut rng, self.plan.duplicate_request);
        let drop_response = chance(&mut rng, self.plan.drop_response);
        let corrupt = chance(&mut rng, self.plan.corrupt_response);

        if self.plan.in_partition(call) {
            self.record(call, InjectedFault::Partition);
            return Err(TransportError::Io {
                kind: std::io::ErrorKind::TimedOut,
                detail: format!("injected fault: partition window at call {call}"),
            });
        }
        if self.plan.disconnect_at.contains(&call) {
            // Mid-call disconnect: the server sees and executes the request;
            // the client's read side is then severed and the connection is
            // unusable until reset.
            let _ = self.inner.call(request);
            self.record(call, InjectedFault::Disconnect);
            let error = TransportError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                detail: format!("injected fault: disconnect mid-call at call {call}"),
            };
            self.poisoned = Some(error.clone());
            return Err(error);
        }
        if delay_ms > 0 {
            self.record(call, InjectedFault::Delay(delay_ms));
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        if drop_request {
            self.record(call, InjectedFault::DropRequest);
            return Err(TransportError::Io {
                kind: std::io::ErrorKind::TimedOut,
                detail: format!("injected fault: request dropped at call {call}"),
            });
        }

        let mut response = self.inner.call(request.clone())?;
        if duplicate {
            self.record(call, InjectedFault::DuplicateRequest);
            response = self.inner.call(request)?;
        }
        if drop_response {
            self.record(call, InjectedFault::DropResponse);
            return Err(TransportError::Io {
                kind: std::io::ErrorKind::ConnectionReset,
                detail: format!("injected fault: response dropped at call {call}"),
            });
        }
        if corrupt {
            self.record(call, InjectedFault::CorruptResponse);
            return Err(TransportError::Wire(WireError::ChecksumMismatch));
        }
        Ok(response)
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        self.poisoned = None;
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;
    use alpenhorn_coordinator::{Cluster, ClusterConfig};

    fn aggressive_plan(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_request: 0.2,
            drop_response: 0.15,
            duplicate_request: 0.1,
            corrupt_response: 0.1,
            delay: 0.3,
            max_delay_ms: 2,
            disconnect_at: vec![3],
            partitions: vec![PartitionWindow { from: 7, until: 9 }],
        }
    }

    fn drive(plan: FaultPlan) -> Vec<(u64, InjectedFault)> {
        let net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(50)));
        let mut faulty = FaultyTransport::new(net, plan);
        for _ in 0..40 {
            if faulty.call(Request::GetPkgKeys).is_err() {
                let _ = faulty.reset();
            }
        }
        faulty.schedule().to_vec()
    }

    #[test]
    fn same_plan_same_seed_injects_identical_schedule() {
        let first = drive(aggressive_plan(42));
        let second = drive(aggressive_plan(42));
        assert!(!first.is_empty(), "an aggressive plan must inject faults");
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_inject_different_schedules() {
        assert_ne!(drive(aggressive_plan(1)), drive(aggressive_plan(2)));
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        assert!(drive(FaultPlan::quiet(9)).is_empty());
    }

    #[test]
    fn disconnect_poisons_until_reset() {
        let net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(51)));
        let mut faulty = FaultyTransport::new(
            net,
            FaultPlan {
                disconnect_at: vec![0],
                ..FaultPlan::default()
            },
        );
        assert!(matches!(
            faulty.call(Request::GetPkgKeys),
            Err(TransportError::Io { .. })
        ));
        // Poisoned until reset, carrying the original failure.
        assert!(matches!(
            faulty.call(Request::GetPkgKeys),
            Err(TransportError::Poisoned { .. })
        ));
        faulty.reset().unwrap();
        assert!(faulty.call(Request::GetPkgKeys).is_ok());
    }
}
