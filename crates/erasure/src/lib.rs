//! Systematic shift-XOR erasure code for CDN mailbox shards.
//!
//! A published mailbox blob is split into `k` equal data shards; `m` parity
//! shards are derived so that **any** `k` of the `k + m` shards recover the
//! blob byte-identically. Both encode and decode use only byte shifts and
//! XOR — no finite-field multiplication tables — following the shift-XOR
//! construction (Vandermonde rows over the polynomial ring GF(2)[x], with
//! the shard bytes as coefficients and a byte shift playing the role of
//! multiplication by `x`):
//!
//! ```text
//! parity_j = XOR_i shift(data_i, i * j bytes)        j = 0..m
//! ```
//!
//! Parity shard `j` is `(k-1) * j` bytes longer than a data shard — the
//! price of avoiding GF(2^8) arithmetic entirely. Decoding solves the
//! shift-XOR linear system with fraction-free Gaussian elimination (row
//! combinations are again only shifts and XORs) and a running-XOR division
//! by the sparse pivot polynomial, so the decode hot path is the same
//! word-wise XOR loop as encode.
//!
//! The code is *systematic*: when no data shard is lost, decode is a plain
//! concatenation. For the parameter ranges the CDN deploys (`k ≤ 8`,
//! `m ≤ 3`), every erasure pattern of at most `m` shards is recoverable —
//! the elimination cannot go singular because the chosen parity rows form a
//! (generalized) Vandermonde system in distinct powers of `x`; the decoder
//! still detects singularity and inconsistency defensively and reports a
//! typed error rather than returning wrong bytes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Shape of the code: `data` (k) data shards plus `parity` (m) parity
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeParams {
    /// Number of data shards (k). At least 1.
    pub data: usize,
    /// Number of parity shards (m). May be 0 (no redundancy).
    pub parity: usize,
}

impl CodeParams {
    /// Creates code parameters. Panics if `data == 0`.
    pub fn new(data: usize, parity: usize) -> Self {
        assert!(data >= 1, "shift-XOR code needs at least one data shard");
        CodeParams { data, parity }
    }

    /// Total number of shards produced by [`encode`].
    pub fn total(&self) -> usize {
        self.data + self.parity
    }

    /// Length of each data shard for a blob of `blob_len` bytes (the blob is
    /// zero-padded up to `data * shard_len`).
    pub fn shard_len(&self, blob_len: usize) -> usize {
        blob_len.div_ceil(self.data)
    }

    /// Length of parity shard `j` for a blob of `blob_len` bytes.
    pub fn parity_len(&self, blob_len: usize, j: usize) -> usize {
        let shard_len = self.shard_len(blob_len);
        if shard_len == 0 {
            0
        } else {
            shard_len + (self.data - 1) * j
        }
    }
}

/// Why a reconstruction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErasureError {
    /// The caller passed a shard vector whose length is not `k + m`.
    WrongShardCount {
        /// Shards provided.
        provided: usize,
        /// Shards the code produces.
        expected: usize,
    },
    /// A present shard has the wrong length for this blob.
    ShardLength {
        /// Index of the offending shard.
        index: usize,
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
    /// More data shards are missing than surviving parity shards can repair.
    TooManyErasures {
        /// Missing data shards.
        missing_data: usize,
        /// Surviving parity shards.
        surviving_parity: usize,
    },
    /// The elimination hit a zero pivot (cannot happen for the deployed
    /// parameter ranges; reported instead of returning wrong bytes).
    Singular,
    /// The surviving shards are mutually inconsistent (corruption that
    /// preserved shard lengths).
    Inconsistent,
}

impl core::fmt::Display for ErasureError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ErasureError::WrongShardCount { provided, expected } => {
                write!(f, "expected {expected} shard slots, got {provided}")
            }
            ErasureError::ShardLength {
                index,
                expected,
                actual,
            } => write!(
                f,
                "shard {index} has {actual} bytes, expected {expected}"
            ),
            ErasureError::TooManyErasures {
                missing_data,
                surviving_parity,
            } => write!(
                f,
                "{missing_data} data shards missing but only {surviving_parity} parity shards survive"
            ),
            ErasureError::Singular => write!(f, "erasure pattern yields a singular system"),
            ErasureError::Inconsistent => write!(f, "surviving shards are inconsistent"),
        }
    }
}

impl std::error::Error for ErasureError {}

/// XORs `src` into the front of `dst` (`dst` must be at least as long),
/// eight bytes at a time on the aligned middle.
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert!(dst.len() >= src.len(), "xor_into destination too short");
    let dst = &mut dst[..src.len()];
    let mut dst_words = dst.chunks_exact_mut(8);
    let mut src_words = src.chunks_exact(8);
    for (d, s) in dst_words.by_ref().zip(src_words.by_ref()) {
        let word =
            u64::from_ne_bytes(d.try_into().unwrap()) ^ u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in dst_words
        .into_remainder()
        .iter_mut()
        .zip(src_words.remainder())
    {
        *d ^= *s;
    }
}

/// Splits `blob` into `k` data shards and derives `m` shift-XOR parity
/// shards. Shard `i < k` is the `i`-th `shard_len` slice of the (zero-
/// padded) blob; shard `k + j` is parity `j`.
pub fn encode(params: &CodeParams, blob: &[u8]) -> Vec<Vec<u8>> {
    let k = params.data;
    let shard_len = params.shard_len(blob.len());
    let mut shards = Vec::with_capacity(params.total());
    for i in 0..k {
        let mut shard = vec![0u8; shard_len];
        let start = (i * shard_len).min(blob.len());
        let end = ((i + 1) * shard_len).min(blob.len());
        shard[..end - start].copy_from_slice(&blob[start..end]);
        shards.push(shard);
    }
    for j in 0..params.parity {
        let mut parity = vec![0u8; params.parity_len(blob.len(), j)];
        if shard_len > 0 {
            for (i, data) in shards[..k].iter().enumerate() {
                xor_into(&mut parity[i * j..], data);
            }
        }
        shards.push(parity);
    }
    shards
}

/// A sparse polynomial over GF(2)[x]: the sorted set of exponents with a
/// nonzero (byte-shift) coefficient. Elimination entries stay tiny for the
/// deployed `k`/`m`, so no dense representation is needed.
type Poly = Vec<usize>;

/// XOR-adds two exponent sets (terms appearing twice cancel).
fn poly_add(a: &Poly, b: &Poly) -> Poly {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            core::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            core::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Multiplies two sparse polynomials (exponent sums, with cancellation).
fn poly_mul(a: &Poly, b: &Poly) -> Poly {
    let mut out = Poly::new();
    for &ea in a {
        let shifted: Poly = b.iter().map(|&eb| ea + eb).collect();
        out = poly_add(&out, &shifted);
    }
    out
}

/// Applies a sparse polynomial to a byte vector: the XOR of `v` shifted by
/// each exponent.
fn poly_apply(poly: &Poly, v: &[u8]) -> Vec<u8> {
    let Some(&max) = poly.last() else {
        return Vec::new();
    };
    let mut out = vec![0u8; v.len() + max];
    for &e in poly {
        xor_into(&mut out[e..], v);
    }
    out
}

/// XORs two byte vectors of possibly different lengths.
fn vec_add(mut a: Vec<u8>, b: &[u8]) -> Vec<u8> {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    xor_into(&mut a, b);
    a
}

/// Divides `r` by the sparse polynomial `c` (lowest exponent first),
/// producing a quotient of exactly `out_len` bytes, then verifies the
/// product to reject inconsistent inputs.
fn poly_divide(c: &Poly, r: &[u8], out_len: usize) -> Result<Vec<u8>, ErasureError> {
    let Some(&d0) = c.first() else {
        return Err(ErasureError::Singular);
    };
    let offsets: Vec<usize> = c[1..].iter().map(|&d| d - d0).collect();
    let mut y = vec![0u8; out_len];
    for i in 0..out_len {
        let mut acc = r.get(d0 + i).copied().unwrap_or(0);
        for &t in &offsets {
            if i >= t {
                acc ^= y[i - t];
            }
        }
        y[i] = acc;
    }
    // The division is exact iff c * y reproduces r (padded with zeros).
    let product = poly_apply(c, &y);
    let longest = product.len().max(r.len());
    for i in 0..longest {
        if product.get(i).copied().unwrap_or(0) != r.get(i).copied().unwrap_or(0) {
            return Err(ErasureError::Inconsistent);
        }
    }
    Ok(y)
}

/// Recovers the original blob from any `k` surviving shards.
///
/// `shards` must have exactly `k + m` slots, `None` marking erasures; the
/// present shards must have the exact lengths [`encode`] produced for a
/// blob of `blob_len` bytes. Decoding is XOR-only: known-data contributions
/// are XORed out of the surviving parity shards, the residual system is
/// solved by fraction-free elimination (shift + XOR row combinations), and
/// each recovered shard comes out of a running-XOR division.
pub fn reconstruct(
    params: &CodeParams,
    blob_len: usize,
    shards: &[Option<Vec<u8>>],
) -> Result<Vec<u8>, ErasureError> {
    let k = params.data;
    if shards.len() != params.total() {
        return Err(ErasureError::WrongShardCount {
            provided: shards.len(),
            expected: params.total(),
        });
    }
    let shard_len = params.shard_len(blob_len);
    for (index, shard) in shards.iter().enumerate() {
        let Some(shard) = shard else { continue };
        let expected = if index < k {
            shard_len
        } else {
            params.parity_len(blob_len, index - k)
        };
        if shard.len() != expected {
            return Err(ErasureError::ShardLength {
                index,
                expected,
                actual: shard.len(),
            });
        }
    }
    if shard_len == 0 {
        return Ok(Vec::new());
    }

    let missing: Vec<usize> = (0..k).filter(|&i| shards[i].is_none()).collect();
    let mut data: Vec<Vec<u8>> = Vec::with_capacity(k);
    if missing.is_empty() {
        for shard in &shards[..k] {
            data.push(shard.clone().expect("no data shard is missing"));
        }
    } else {
        let chosen: Vec<usize> = (0..params.parity)
            .filter(|&j| shards[k + j].is_some())
            .take(missing.len())
            .collect();
        if chosen.len() < missing.len() {
            return Err(ErasureError::TooManyErasures {
                missing_data: missing.len(),
                surviving_parity: chosen.len(),
            });
        }
        // Residual rows: parity_j minus every surviving data contribution.
        let mut rows: Vec<Vec<u8>> = chosen
            .iter()
            .map(|&j| {
                let mut row = shards[k + j].clone().expect("chosen parities survive");
                for (i, shard) in shards[..k].iter().enumerate() {
                    if let Some(shard) = shard {
                        xor_into(&mut row[i * j..], shard);
                    }
                }
                row
            })
            .collect();
        // Monomial matrix of the unknowns: entry (row j, col s) = x^{e_s * j}.
        let t = missing.len();
        let mut mat: Vec<Vec<Poly>> = chosen
            .iter()
            .map(|&j| missing.iter().map(|&e| vec![e * j]).collect())
            .collect();
        // Fraction-free elimination: only shift-and-XOR row combinations.
        for col in 0..t {
            let pivot = (col..t)
                .find(|&r| !mat[r][col].is_empty())
                .ok_or(ErasureError::Singular)?;
            mat.swap(col, pivot);
            rows.swap(col, pivot);
            for r in col + 1..t {
                if mat[r][col].is_empty() {
                    continue;
                }
                let a = mat[col][col].clone();
                let b = mat[r][col].clone();
                let (head, tail) = mat.split_at_mut(r);
                for (cell, pivot) in tail[0][col..].iter_mut().zip(&head[col][col..]) {
                    *cell = poly_add(&poly_mul(&a, cell), &poly_mul(&b, pivot));
                }
                rows[r] = vec_add(poly_apply(&a, &rows[r]), &poly_apply(&b, &rows[col]));
            }
        }
        // Back-substitution, dividing by the sparse diagonal polynomial.
        let mut solved: Vec<Vec<u8>> = vec![Vec::new(); t];
        for row in (0..t).rev() {
            let mut rhs = core::mem::take(&mut rows[row]);
            for c2 in row + 1..t {
                rhs = vec_add(rhs, &poly_apply(&mat[row][c2], &solved[c2]));
            }
            solved[row] = poly_divide(&mat[row][row], &rhs, shard_len)?;
        }
        let mut recovered = solved.into_iter();
        for (i, shard) in shards[..k].iter().enumerate() {
            data.push(match shard {
                Some(shard) => shard.clone(),
                None => {
                    debug_assert!(missing.contains(&i));
                    recovered.next().expect("one solution per missing shard")
                }
            });
        }
    }

    let mut blob = Vec::with_capacity(k * shard_len);
    for shard in data {
        blob.extend_from_slice(&shard);
    }
    blob.truncate(blob_len);
    Ok(blob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngCore, SeedableRng};

    fn blob(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = vec![0u8; len];
        rng.fill_bytes(&mut out);
        out
    }

    /// Every subset of `0..n` with at most `max` elements.
    fn erasure_patterns(n: usize, max: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for mask in 0u32..(1 << n) {
            let pattern: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            if pattern.len() <= max {
                out.push(pattern);
            }
        }
        out
    }

    #[test]
    fn encode_shapes() {
        let params = CodeParams::new(3, 2);
        let shards = encode(&params, &blob(100, 1));
        assert_eq!(shards.len(), 5);
        assert_eq!(shards[0].len(), 34); // ceil(100 / 3)
        assert_eq!(shards[3].len(), 34); // parity 0: plain XOR
        assert_eq!(shards[4].len(), 34 + 2); // parity 1: + (k-1) bytes
    }

    #[test]
    fn systematic_fast_path() {
        let params = CodeParams::new(4, 2);
        let original = blob(1000, 2);
        let shards: Vec<Option<Vec<u8>>> =
            encode(&params, &original).into_iter().map(Some).collect();
        assert_eq!(reconstruct(&params, 1000, &shards).unwrap(), original);
    }

    #[test]
    fn every_loss_pattern_up_to_m_recovers_exhaustively() {
        for k in 1..=6usize {
            for m in 0..=3usize {
                let params = CodeParams::new(k, m);
                for blob_len in [0usize, 1, k, 7 * k + 3, 257] {
                    let original = blob(blob_len, (k * 251 + m * 31 + blob_len) as u64);
                    let encoded = encode(&params, &original);
                    for pattern in erasure_patterns(k + m, m) {
                        let mut shards: Vec<Option<Vec<u8>>> =
                            encoded.iter().cloned().map(Some).collect();
                        for &lost in &pattern {
                            shards[lost] = None;
                        }
                        let got = reconstruct(&params, blob_len, &shards).unwrap_or_else(|e| {
                            panic!("k={k} m={m} len={blob_len} pattern={pattern:?}: {e}")
                        });
                        assert_eq!(got, original, "k={k} m={m} pattern={pattern:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn losing_more_than_m_data_shards_is_typed() {
        let params = CodeParams::new(3, 1);
        let encoded = encode(&params, &blob(64, 3));
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None;
        assert_eq!(
            reconstruct(&params, 64, &shards),
            Err(ErasureError::TooManyErasures {
                missing_data: 2,
                surviving_parity: 1,
            })
        );
    }

    #[test]
    fn wrong_shard_length_is_typed() {
        let params = CodeParams::new(2, 1);
        let mut shards: Vec<Option<Vec<u8>>> = encode(&params, &blob(10, 4))
            .into_iter()
            .map(Some)
            .collect();
        shards[1].as_mut().unwrap().push(0);
        assert!(matches!(
            reconstruct(&params, 10, &shards),
            Err(ErasureError::ShardLength { index: 1, .. })
        ));
        assert!(matches!(
            reconstruct(&params, 10, &shards[..2]),
            Err(ErasureError::WrongShardCount { .. })
        ));
    }

    #[test]
    fn corrupted_parity_is_detected_not_mis_decoded() {
        // Flip a byte in a *surviving parity* shard while a data shard is
        // erased: the division check must flag the inconsistency.
        let params = CodeParams::new(3, 2);
        let original = blob(96, 5);
        let encoded = encode(&params, &original);
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        shards[1] = None; // force use of parity 1 (shifted rows)
        shards[4].as_mut().unwrap()[7] ^= 0x40;
        assert!(matches!(
            reconstruct(&params, 96, &shards),
            Err(ErasureError::Inconsistent) | Err(ErasureError::Singular)
        ));
    }

    #[test]
    fn empty_blob_round_trips() {
        let params = CodeParams::new(3, 2);
        let encoded = encode(&params, &[]);
        assert!(encoded.iter().all(|s| s.is_empty()));
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        shards[0] = None;
        assert_eq!(reconstruct(&params, 0, &shards).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn xor_into_matches_reference() {
        let a = blob(37, 6);
        let b = blob(29, 7);
        let mut fast = a.clone();
        xor_into(&mut fast, &b);
        let mut slow = a;
        for (d, s) in slow.iter_mut().zip(&b) {
            *d ^= *s;
        }
        assert_eq!(fast, slow);
    }
}
