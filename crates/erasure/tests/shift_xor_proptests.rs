//! Property tests for the shift-XOR erasure code.
//!
//! For random blobs and random code shapes, every loss pattern of at most
//! `m` shards must recover the original blob byte-identically, and losing
//! more data shards than surviving parities must fail with the typed
//! `TooManyErasures` error — never a panic, never wrong bytes.

use proptest::prelude::*;

use alpenhorn_erasure::{encode, reconstruct, CodeParams, ErasureError};

fn arb_params() -> impl Strategy<Value = CodeParams> {
    (1usize..9, 0usize..4).prop_map(|(data, parity)| CodeParams::new(data, parity))
}

/// A subset of `0..total` with at most `max_len` elements, derived from a
/// generated bitmask so shrinking stays meaningful.
fn loss_pattern(mask: u16, total: usize, max_len: usize) -> Vec<usize> {
    let mut pattern: Vec<usize> = (0..total).filter(|i| mask & (1 << i) != 0).collect();
    pattern.truncate(max_len);
    pattern
}

proptest! {
    #[test]
    fn any_loss_within_parity_budget_round_trips(
        params in arb_params(),
        blob in proptest::collection::vec(any::<u8>(), 0..600),
        mask in any::<u16>(),
    ) {
        let encoded = encode(&params, &blob);
        prop_assert_eq!(encoded.len(), params.total());
        let pattern = loss_pattern(mask, params.total(), params.parity);
        let mut shards: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        for &lost in &pattern {
            shards[lost] = None;
        }
        let recovered = reconstruct(&params, blob.len(), &shards).unwrap();
        prop_assert_eq!(recovered, blob);
    }

    #[test]
    fn excess_data_loss_is_a_typed_error(
        params in (1usize..9, 0usize..4).prop_map(|(d, p)| CodeParams::new(d, p)),
        blob in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        // Erase parity+1 data shards (when the shape allows it): reconstruct
        // must refuse with TooManyErasures rather than fabricate bytes.
        let lose = params.parity + 1;
        prop_assume!(lose <= params.data);
        let mut shards: Vec<Option<Vec<u8>>> =
            encode(&params, &blob).into_iter().map(Some).collect();
        for slot in shards.iter_mut().take(lose) {
            *slot = None;
        }
        prop_assert_eq!(
            reconstruct(&params, blob.len(), &shards),
            Err(ErasureError::TooManyErasures {
                missing_data: lose,
                surviving_parity: params.parity,
            })
        );
    }

    #[test]
    fn parity_lengths_match_declared_shape(
        params in arb_params(),
        blob in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let encoded = encode(&params, &blob);
        for (i, shard) in encoded.iter().enumerate() {
            let expected = if i < params.data {
                params.shard_len(blob.len())
            } else {
                params.parity_len(blob.len(), i - params.data)
            };
            prop_assert_eq!(shard.len(), expected);
        }
    }
}
