//! Glue between the Alpenhorn client and the conversation protocol.
//!
//! This module is the analogue of the ~200-line change the paper describes
//! for integrating Alpenhorn into Vuvuzela (§8.5): it turns the events the
//! Alpenhorn client emits (`OutgoingCallPlaced`, `IncomingCall`) into live
//! [`Conversation`]s and provides the `/addfriend` and `/call`-style entry
//! points a chat client would wire to its UI.

use alpenhorn::SessionKey;
use alpenhorn::{Client, ClientError, ClientEvent, Identity, Transport};
use alpenhorn_wire::Round;

use crate::conversation::{Conversation, ConversationError};
use crate::deaddrop::DeadDropServer;

/// A live conversation session produced from an Alpenhorn call.
pub struct ConversationSession {
    /// The other party.
    pub peer: Identity,
    /// The application intent the call carried.
    pub intent: u32,
    /// The conversation endpoint (already keyed).
    pub conversation: Conversation,
    /// The conversation round counter (starts at 1, advances per exchange).
    pub next_round: Round,
}

impl ConversationSession {
    /// Builds a session from an Alpenhorn client event, if the event is a
    /// placed or received call. This is the entire "bootstrap" step —
    /// everything the original Vuvuzela needed out-of-band key distribution
    /// for.
    pub fn from_event(event: &ClientEvent) -> Option<ConversationSession> {
        match event {
            ClientEvent::OutgoingCallPlaced {
                friend,
                intent,
                session_key,
                ..
            } => Some(Self::new(friend.clone(), *intent, *session_key, true)),
            ClientEvent::IncomingCall {
                from,
                intent,
                session_key,
                ..
            } => Some(Self::new(from.clone(), *intent, *session_key, false)),
            _ => None,
        }
    }

    /// Creates a session directly from a session key (the standalone client
    /// described in §8.5 prints this key for pasting into Pond's PANDA).
    pub fn new(peer: Identity, intent: u32, key: SessionKey, is_caller: bool) -> Self {
        ConversationSession {
            peer,
            intent,
            conversation: Conversation::new(key, is_caller),
            next_round: Round(1),
        }
    }

    /// Deposits `message` for the current conversation round at the session's
    /// dead drop and advances the round. Returns the round used.
    pub fn send(
        &mut self,
        server: &mut DeadDropServer,
        message: &[u8],
    ) -> Result<Round, ConversationError> {
        let round = self.next_round;
        let ciphertext = self.conversation.seal(round, message)?;
        server.deposit(self.conversation.dead_drop(round), ciphertext);
        self.next_round = round.next();
        Ok(round)
    }

    /// Decrypts the peer's ciphertext retrieved from the dead-drop exchange
    /// for `round`.
    pub fn receive(&self, round: Round, ciphertext: &[u8]) -> Result<Vec<u8>, ConversationError> {
        self.conversation.open(round, ciphertext)
    }
}

/// Convenience wrapper mirroring the `/addfriend` command the paper added to
/// the Vuvuzela client: queue an add-friend request for `who`.
pub fn command_add_friend(client: &mut Client, who: &str) -> Result<(), ClientError> {
    let identity = Identity::new(who).map_err(|_| {
        ClientError::NotAFriend(
            Identity::new("invalid@invalid.invalid").expect("valid placeholder identity"),
        )
    })?;
    client.add_friend(identity, None);
    Ok(())
}

/// Convenience wrapper mirroring the `/call` command: queue a call to `who`.
pub fn command_call(client: &mut Client, who: &str, intent: u32) -> Result<(), ClientError> {
    let identity = Identity::new(who).map_err(|_| {
        ClientError::NotAFriend(
            Identity::new("invalid@invalid.invalid").expect("valid placeholder identity"),
        )
    })?;
    client.call(identity, intent)
}

/// Extracts every conversation session a batch of client events produced
/// (placed and received calls alike), in event order.
pub fn sessions_from_events(events: &[ClientEvent]) -> Vec<ConversationSession> {
    events
        .iter()
        .filter_map(ConversationSession::from_event)
        .collect()
}

/// Scans the just-closed dialing round's mailbox through any [`Transport`]
/// (loopback or a TCP connection to `alpenhornd`) and returns the
/// conversation sessions it produced. This is the chat client's per-round
/// hookup: incoming calls become live, already-keyed conversations with no
/// out-of-band exchange.
pub fn collect_sessions<T: Transport>(
    client: &mut Client,
    net: &mut T,
) -> Result<Vec<ConversationSession>, ClientError> {
    let events = client.process_dialing_mailbox(net)?;
    Ok(sessions_from_events(&events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Identity {
        Identity::new(s).unwrap()
    }

    #[test]
    fn sessions_from_matching_events_interoperate() {
        let key = SessionKey([3u8; 32]);
        let caller_event = ClientEvent::OutgoingCallPlaced {
            friend: id("bob@gmail.com"),
            intent: 1,
            session_key: key,
            round: Round(40),
        };
        let callee_event = ClientEvent::IncomingCall {
            from: id("alice@example.com"),
            intent: 1,
            session_key: key,
            round: Round(40),
        };
        let mut alice = ConversationSession::from_event(&caller_event).unwrap();
        let mut bob = ConversationSession::from_event(&callee_event).unwrap();
        assert_eq!(alice.peer, id("bob@gmail.com"));
        assert_eq!(bob.peer, id("alice@example.com"));

        // One conversation round through a dead-drop server.
        let mut server = DeadDropServer::new();
        let round_a = alice.send(&mut server, b"hi bob, it's alice").unwrap();
        let round_b = bob.send(&mut server, b"hey alice").unwrap();
        assert_eq!(round_a, round_b);

        let exchanged = server.exchange();
        let drop_id = alice.conversation.dead_drop(round_a);
        let pair = &exchanged[&drop_id];
        // Alice deposited first, so she receives pair[0]; Bob receives pair[1].
        assert_eq!(alice.receive(round_a, &pair[0]).unwrap(), b"hey alice");
        assert_eq!(
            bob.receive(round_b, &pair[1]).unwrap(),
            b"hi bob, it's alice"
        );
    }

    #[test]
    fn non_call_events_produce_no_session() {
        let event = ClientEvent::FriendConfirmed {
            friend: id("x@y.z"),
            dialing_round: Round(1),
        };
        assert!(ConversationSession::from_event(&event).is_none());
    }

    #[test]
    fn rounds_advance_per_send() {
        let mut session =
            ConversationSession::new(id("bob@gmail.com"), 0, SessionKey([1u8; 32]), true);
        let mut server = DeadDropServer::new();
        assert_eq!(session.send(&mut server, b"one").unwrap(), Round(1));
        assert_eq!(session.send(&mut server, b"two").unwrap(), Round(2));
        assert_eq!(session.next_round, Round(3));
    }

    #[test]
    fn collect_sessions_bootstraps_a_conversation_over_the_rpc_boundary() {
        // The §8.5 flow end-to-end, with all Alpenhorn traffic going through
        // the Transport RPC API: /addfriend, handshake rounds, /call, and
        // per-round session collection on the callee side.
        use alpenhorn::{ClientConfig, LoopbackTransport};
        use alpenhorn_coordinator::{Cluster, ClusterConfig};

        let mut net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(33)));
        let pkg_keys = net.with_cluster(|c| c.pkg_verifying_keys());
        let mut alice = Client::new(
            id("alice@example.com"),
            pkg_keys.clone(),
            ClientConfig::default(),
            [1u8; 32],
        );
        let mut bob = Client::new(
            id("bob@gmail.com"),
            pkg_keys,
            ClientConfig::default(),
            [2u8; 32],
        );
        alice.register(&mut net).unwrap();
        bob.register(&mut net).unwrap();

        command_add_friend(&mut alice, "bob@gmail.com").unwrap();
        let mut start = Round(0);
        for r in 1..=2u64 {
            net.with_cluster(|c| c.begin_add_friend_round(Round(r), 2))
                .unwrap();
            alice.participate_add_friend(&mut net).unwrap();
            bob.participate_add_friend(&mut net).unwrap();
            net.with_cluster(|c| c.close_add_friend_round(Round(r)))
                .unwrap();
            for e in alice.process_add_friend_mailbox(&mut net).unwrap() {
                if let ClientEvent::FriendConfirmed { dialing_round, .. } = e {
                    start = dialing_round;
                }
            }
            bob.process_add_friend_mailbox(&mut net).unwrap();
        }
        assert!(start.as_u64() > 0);

        command_call(&mut alice, "bob@gmail.com", 2).unwrap();
        let mut caller_sessions = Vec::new();
        let mut callee_sessions = Vec::new();
        for r in 1..=start.as_u64() {
            net.with_cluster(|c| c.begin_dialing_round(Round(r), 2))
                .unwrap();
            let placed: Vec<ClientEvent> = alice
                .participate_dialing(&mut net)
                .unwrap()
                .into_iter()
                .collect();
            bob.participate_dialing(&mut net).unwrap();
            net.with_cluster(|c| c.close_dialing_round(Round(r)))
                .unwrap();
            caller_sessions.extend(sessions_from_events(&placed));
            alice.process_dialing_mailbox(&mut net).unwrap();
            callee_sessions.extend(collect_sessions(&mut bob, &mut net).unwrap());
        }
        let mut alice_session = caller_sessions.pop().expect("alice placed the call");
        let mut bob_session = callee_sessions.pop().expect("bob received the call");
        assert_eq!(alice_session.intent, 2);
        assert_eq!(bob_session.intent, 2);

        // The sessions interoperate: one dead-drop exchange.
        let mut server = DeadDropServer::new();
        let round = alice_session
            .send(&mut server, b"bootstrapped over rpc")
            .unwrap();
        bob_session.send(&mut server, b"ack").unwrap();
        let exchanged = server.exchange();
        let pair = &exchanged[&alice_session.conversation.dead_drop(round)];
        assert_eq!(alice_session.receive(round, &pair[0]).unwrap(), b"ack");
        assert_eq!(
            bob_session.receive(round, &pair[1]).unwrap(),
            b"bootstrapped over rpc"
        );
    }
}
