//! A two-party conversation keyed by an Alpenhorn session key.
//!
//! Each conversation round, both parties derive the same dead-drop location
//! and a fresh message key from the session key, encrypt a fixed-size padded
//! message, and exchange ciphertexts through the [`crate::DeadDropServer`].
//! Fixed-size messages are what lets the surrounding mixnet make traffic
//! analysis useless; here they also exercise the same padding discipline.

use alpenhorn::SessionKey;
use alpenhorn_crypto::{aead, hmac_sha256};
use alpenhorn_wire::Round;

use crate::deaddrop::DeadDropId;

/// Fixed conversation message size (payload is padded to this length).
pub const MESSAGE_LEN: usize = 240;

/// Errors from conversation operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConversationError {
    /// The plaintext is longer than [`MESSAGE_LEN`] minus the length header.
    MessageTooLong {
        /// Maximum payload length.
        max: usize,
    },
    /// The peer's ciphertext failed to decrypt (corruption or wrong key).
    DecryptionFailed,
}

impl core::fmt::Display for ConversationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConversationError::MessageTooLong { max } => {
                write!(f, "message exceeds the {max}-byte conversation payload")
            }
            ConversationError::DecryptionFailed => write!(f, "failed to decrypt peer message"),
        }
    }
}

impl std::error::Error for ConversationError {}

/// One side of a two-party conversation.
///
/// Both sides construct a `Conversation` from the same Alpenhorn session key;
/// the `is_caller` flag only determines nonce separation so that the two
/// directions never reuse an (key, nonce) pair.
#[derive(Clone)]
pub struct Conversation {
    session_key: SessionKey,
    is_caller: bool,
}

impl Conversation {
    /// Creates a conversation endpoint from an Alpenhorn session key.
    pub fn new(session_key: SessionKey, is_caller: bool) -> Self {
        Conversation {
            session_key,
            is_caller,
        }
    }

    /// The dead-drop location for conversation round `round`.
    pub fn dead_drop(&self, round: Round) -> DeadDropId {
        let mut label = b"vuvuzela-dead-drop".to_vec();
        label.extend_from_slice(&round.0.to_be_bytes());
        let digest = hmac_sha256(self.session_key.as_bytes(), &label);
        let mut id = [0u8; 16];
        id.copy_from_slice(&digest[..16]);
        DeadDropId(id)
    }

    /// The message encryption key for `round`.
    fn round_key(&self, round: Round) -> [u8; 32] {
        let mut label = b"vuvuzela-message-key".to_vec();
        label.extend_from_slice(&round.0.to_be_bytes());
        hmac_sha256(self.session_key.as_bytes(), &label)
    }

    fn nonce(&self, sending: bool) -> [u8; aead::NONCE_LEN] {
        let mut nonce = [0u8; aead::NONCE_LEN];
        // Direction bit: the caller's outgoing messages use nonce 1, the
        // callee's use nonce 2; each key is used for at most one round.
        nonce[11] = if sending == self.is_caller { 1 } else { 2 };
        nonce
    }

    /// Encrypts a message for `round`, padding it to the fixed size.
    pub fn seal(&self, round: Round, message: &[u8]) -> Result<Vec<u8>, ConversationError> {
        let max = MESSAGE_LEN - 2;
        if message.len() > max {
            return Err(ConversationError::MessageTooLong { max });
        }
        let mut padded = vec![0u8; MESSAGE_LEN];
        padded[..2].copy_from_slice(&(message.len() as u16).to_be_bytes());
        padded[2..2 + message.len()].copy_from_slice(message);
        let key = self.round_key(round);
        Ok(aead::seal(
            &key,
            &self.nonce(true),
            b"vuvuzela-msg",
            &padded,
        ))
    }

    /// Decrypts the peer's ciphertext for `round` and strips the padding.
    pub fn open(&self, round: Round, ciphertext: &[u8]) -> Result<Vec<u8>, ConversationError> {
        let key = self.round_key(round);
        let padded = aead::open(&key, &self.nonce(false), b"vuvuzela-msg", ciphertext)
            .map_err(|_| ConversationError::DecryptionFailed)?;
        if padded.len() != MESSAGE_LEN {
            return Err(ConversationError::DecryptionFailed);
        }
        let len = u16::from_be_bytes([padded[0], padded[1]]) as usize;
        if len > MESSAGE_LEN - 2 {
            return Err(ConversationError::DecryptionFailed);
        }
        Ok(padded[2..2 + len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Conversation, Conversation) {
        let key = SessionKey([7u8; 32]);
        (Conversation::new(key, true), Conversation::new(key, false))
    }

    #[test]
    fn both_sides_derive_same_dead_drop() {
        let (alice, bob) = pair();
        assert_eq!(alice.dead_drop(Round(1)), bob.dead_drop(Round(1)));
        assert_ne!(alice.dead_drop(Round(1)), alice.dead_drop(Round(2)));
    }

    #[test]
    fn different_sessions_use_different_drops() {
        let a = Conversation::new(SessionKey([1u8; 32]), true);
        let b = Conversation::new(SessionKey([2u8; 32]), true);
        assert_ne!(a.dead_drop(Round(1)), b.dead_drop(Round(1)));
    }

    #[test]
    fn seal_open_round_trip() {
        let (alice, bob) = pair();
        let ct = alice.seal(Round(3), b"hello bob").unwrap();
        assert_eq!(ct.len(), MESSAGE_LEN + aead::TAG_LEN);
        assert_eq!(bob.open(Round(3), &ct).unwrap(), b"hello bob");
        // And the reverse direction.
        let ct = bob.seal(Round(3), b"hello alice").unwrap();
        assert_eq!(alice.open(Round(3), &ct).unwrap(), b"hello alice");
    }

    #[test]
    fn all_ciphertexts_same_size() {
        let (alice, _) = pair();
        let short = alice.seal(Round(1), b"").unwrap();
        let long = alice.seal(Round(1), &[7u8; 200]).unwrap();
        assert_eq!(short.len(), long.len());
    }

    #[test]
    fn oversized_message_rejected() {
        let (alice, _) = pair();
        assert_eq!(
            alice.seal(Round(1), &[0u8; MESSAGE_LEN]),
            Err(ConversationError::MessageTooLong {
                max: MESSAGE_LEN - 2
            })
        );
    }

    #[test]
    fn wrong_round_or_key_fails() {
        let (alice, bob) = pair();
        let ct = alice.seal(Round(1), b"round 1 message").unwrap();
        assert_eq!(
            bob.open(Round(2), &ct),
            Err(ConversationError::DecryptionFailed)
        );
        let eve = Conversation::new(SessionKey([9u8; 32]), false);
        assert_eq!(
            eve.open(Round(1), &ct),
            Err(ConversationError::DecryptionFailed)
        );
    }

    #[test]
    fn own_direction_cannot_be_confused_for_peer() {
        // Alice cannot "receive" her own ciphertext (distinct nonces per
        // direction), which matters when a dead drop echoes a lone deposit.
        let (alice, _) = pair();
        let ct = alice.seal(Round(1), b"to bob").unwrap();
        assert_eq!(
            alice.open(Round(1), &ct),
            Err(ConversationError::DecryptionFailed)
        );
    }
}
