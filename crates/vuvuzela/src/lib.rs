//! A minimal Vuvuzela-style conversation protocol, used to demonstrate how a
//! private messaging application bootstraps conversations with Alpenhorn
//! session keys (§8.5 of the paper).
//!
//! Vuvuzela's conversation protocol exchanges fixed-size messages through
//! *dead drops*: both parties derive the same pseudorandom dead-drop location
//! from their shared session key and the conversation round, deposit one
//! encrypted message there each round, and the (untrusted) conversation
//! server swaps whatever it finds at each location. The original Vuvuzela
//! dialing protocol assumed out-of-band public keys; integrating Alpenhorn
//! replaces that step: the `SessionKey` returned by `Call`/`IncomingCall`
//! directly seeds a [`Conversation`].
//!
//! The paper reports that integrating Alpenhorn into Vuvuzela took about 200
//! lines of changes. The analogous glue here is [`integration`], which is of
//! comparable size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conversation;
pub mod deaddrop;
pub mod integration;

pub use conversation::{Conversation, ConversationError, MESSAGE_LEN};
pub use deaddrop::{DeadDropId, DeadDropServer};
pub use integration::ConversationSession;
