//! The dead-drop exchange server.
//!
//! A dead drop is a pseudorandom 16-byte location. Each conversation round,
//! each of the two participants deposits one ciphertext at the location both
//! derive from their shared session key; the server pairs up the two deposits
//! at each location and returns each participant the other's ciphertext. The
//! server never learns who is talking to whom beyond seeing that *some* two
//! deposits met (in the real Vuvuzela the deposits also pass through a mixnet
//! and are padded with noise; that machinery already exists in
//! `alpenhorn-mixnet` and is not duplicated here).

use std::collections::HashMap;

/// A dead-drop location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeadDropId(pub [u8; 16]);

/// One round's worth of dead-drop state.
#[derive(Debug, Default)]
pub struct DeadDropServer {
    drops: HashMap<DeadDropId, Vec<Vec<u8>>>,
}

impl DeadDropServer {
    /// Creates an empty server (one instance per conversation round).
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits a ciphertext at `id`. Returns the deposit index (0 or 1 for a
    /// well-behaved conversation).
    pub fn deposit(&mut self, id: DeadDropId, ciphertext: Vec<u8>) -> usize {
        let entry = self.drops.entry(id).or_default();
        entry.push(ciphertext);
        entry.len() - 1
    }

    /// Completes the round: for every dead drop with exactly two deposits,
    /// returns the pair swapped (deposit 0 receives deposit 1 and vice
    /// versa). Drops with one deposit get their own message back (the peer
    /// was idle); extra deposits beyond two are discarded.
    pub fn exchange(self) -> HashMap<DeadDropId, [Vec<u8>; 2]> {
        let mut out = HashMap::new();
        for (id, mut deposits) in self.drops {
            deposits.truncate(2);
            let pair = match deposits.len() {
                2 => {
                    let b = deposits.pop().expect("two deposits");
                    let a = deposits.pop().expect("two deposits");
                    // Deposit 0 receives b, deposit 1 receives a.
                    [b, a]
                }
                1 => {
                    let a = deposits.pop().expect("one deposit");
                    [a.clone(), a]
                }
                _ => continue,
            };
            out.insert(id, pair);
        }
        out
    }

    /// Number of active dead drops this round.
    pub fn len(&self) -> usize {
        self.drops.len()
    }

    /// Whether no deposits have been made.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_deposits_are_swapped() {
        let mut server = DeadDropServer::new();
        let id = DeadDropId([1u8; 16]);
        assert_eq!(server.deposit(id, b"from alice".to_vec()), 0);
        assert_eq!(server.deposit(id, b"from bob".to_vec()), 1);
        let out = server.exchange();
        let pair = &out[&id];
        assert_eq!(pair[0], b"from bob");
        assert_eq!(pair[1], b"from alice");
    }

    #[test]
    fn single_deposit_is_echoed() {
        let mut server = DeadDropServer::new();
        let id = DeadDropId([2u8; 16]);
        server.deposit(id, b"lonely".to_vec());
        let out = server.exchange();
        assert_eq!(out[&id][0], b"lonely");
    }

    #[test]
    fn separate_drops_do_not_mix() {
        let mut server = DeadDropServer::new();
        let a = DeadDropId([3u8; 16]);
        let b = DeadDropId([4u8; 16]);
        server.deposit(a, b"a0".to_vec());
        server.deposit(a, b"a1".to_vec());
        server.deposit(b, b"b0".to_vec());
        server.deposit(b, b"b1".to_vec());
        assert_eq!(server.len(), 2);
        let out = server.exchange();
        assert_eq!(out[&a][0], b"a1");
        assert_eq!(out[&b][0], b"b1");
    }

    #[test]
    fn extra_deposits_discarded() {
        let mut server = DeadDropServer::new();
        let id = DeadDropId([5u8; 16]);
        server.deposit(id, b"one".to_vec());
        server.deposit(id, b"two".to_vec());
        server.deposit(id, b"three".to_vec());
        let out = server.exchange();
        assert_eq!(out[&id][0], b"two");
        assert_eq!(out[&id][1], b"one");
    }

    #[test]
    fn empty_server() {
        let server = DeadDropServer::new();
        assert!(server.is_empty());
        assert!(server.exchange().is_empty());
    }
}
