//! User identities.
//!
//! Alpenhorn identifies users by their email address (§3 of the paper); an
//! identity is the only thing a caller needs to know about a friend. The
//! [`Identity`] type normalizes addresses (lowercase ASCII) so that hashing
//! to mailboxes and IBE public keys is consistent between sender and
//! recipient.

use crate::constants::MAX_IDENTITY_LEN;
use crate::error::WireError;

/// A validated, normalized user identity (an email address).
///
/// # Examples
///
/// ```
/// use alpenhorn_wire::Identity;
///
/// let id = Identity::new("Alice@Example.COM").unwrap();
/// assert_eq!(id.as_str(), "alice@example.com");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Identity(String);

impl Identity {
    /// Parses and normalizes an identity string.
    ///
    /// The string must be non-empty ASCII of at most [`MAX_IDENTITY_LEN`]
    /// bytes, containing exactly one `@` with a non-empty local part and
    /// domain. Uppercase characters are folded to lowercase.
    pub fn new(s: &str) -> Result<Self, WireError> {
        let normalized = s.trim().to_ascii_lowercase();
        if normalized.is_empty()
            || normalized.len() > MAX_IDENTITY_LEN
            || !normalized.is_ascii()
            || normalized.chars().any(|c| c.is_control() || c == ' ')
        {
            return Err(WireError::InvalidIdentity(s.to_string()));
        }
        let mut parts = normalized.splitn(2, '@');
        let local = parts.next().unwrap_or("");
        let domain = parts.next().unwrap_or("");
        if local.is_empty() || domain.is_empty() || domain.contains('@') {
            return Err(WireError::InvalidIdentity(s.to_string()));
        }
        Ok(Identity(normalized))
    }

    /// Returns the normalized identity string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns the identity as bytes (the form that is hashed on the wire).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// The domain part of the address (used by the PKG's simulated email
    /// verification).
    pub fn domain(&self) -> &str {
        self.0.split_once('@').map(|(_, d)| d).unwrap_or("")
    }

    /// The local part of the address.
    pub fn local_part(&self) -> &str {
        self.0.split_once('@').map(|(l, _)| l).unwrap_or("")
    }
}

impl core::fmt::Display for Identity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl core::str::FromStr for Identity {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Identity::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_identities() {
        for s in [
            "alice@example.com",
            "bob@gmail.com",
            "a@b.co",
            "user.name+tag@sub.domain.org",
        ] {
            assert!(Identity::new(s).is_ok(), "{s}");
        }
    }

    #[test]
    fn normalization_lowercases_and_trims() {
        let id = Identity::new("  Bob@GMail.Com ").unwrap();
        assert_eq!(id.as_str(), "bob@gmail.com");
    }

    #[test]
    fn invalid_identities() {
        for s in [
            "",
            "no-at-sign",
            "@missing-local.com",
            "missing-domain@",
            "two@@ats.com",
            "has space@example.com",
            "ünïcode@example.com",
        ] {
            assert!(Identity::new(s).is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn too_long_identity_rejected() {
        let local = "a".repeat(MAX_IDENTITY_LEN);
        let s = format!("{local}@x.com");
        assert!(Identity::new(&s).is_err());
    }

    #[test]
    fn parts() {
        let id = Identity::new("carol@students.mit.edu").unwrap();
        assert_eq!(id.local_part(), "carol");
        assert_eq!(id.domain(), "students.mit.edu");
    }

    #[test]
    fn equality_after_normalization() {
        assert_eq!(
            Identity::new("Alice@Example.com").unwrap(),
            Identity::new("alice@example.COM").unwrap()
        );
    }

    #[test]
    fn from_str_works() {
        let id: Identity = "dave@example.net".parse().unwrap();
        assert_eq!(id.as_str(), "dave@example.net");
    }
}
