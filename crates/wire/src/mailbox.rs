//! Mailbox identifiers.
//!
//! At the end of the mixnet, requests are distributed into mailboxes based on
//! the intended recipient (§3.1 step 3 of the paper): the mailbox ID is the
//! hash of the recipient's email address modulo the number of mailboxes, and
//! many users share the same mailbox. A special mailbox ID is reserved for
//! cover traffic so that fake requests need not be processed further.

use crate::identity::Identity;

/// Identifier of a mailbox within one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MailboxId(pub u32);

impl MailboxId {
    /// The special mailbox ID used by cover (fake) requests.
    pub const COVER: MailboxId = MailboxId(u32::MAX);

    /// Computes the mailbox a recipient's requests land in, given the total
    /// number of mailboxes `count` for the round.
    ///
    /// Both the sender (when addressing a request) and the recipient (when
    /// deciding which mailbox to download) must use the same `count`, which
    /// the coordinator announces at the start of each round.
    pub fn for_recipient(recipient: &Identity, count: u32) -> MailboxId {
        assert!(count > 0, "mailbox count must be nonzero");
        let digest = alpenhorn_crypto::sha256(recipient.as_bytes());
        let value = u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"));
        MailboxId((value % count as u64) as u32)
    }

    /// Whether this is the cover-traffic mailbox.
    pub fn is_cover(self) -> bool {
        self == MailboxId::COVER
    }

    /// Raw mailbox index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl core::fmt::Display for MailboxId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_cover() {
            write!(f, "mailbox(cover)")
        } else {
            write!(f, "mailbox {}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Identity {
        Identity::new(s).unwrap()
    }

    #[test]
    fn deterministic() {
        let a = MailboxId::for_recipient(&id("alice@example.com"), 7);
        let b = MailboxId::for_recipient(&id("alice@example.com"), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn within_range() {
        for count in [1u32, 2, 7, 100] {
            for user in ["a@x.com", "b@x.com", "c@y.org", "d@z.net"] {
                let m = MailboxId::for_recipient(&id(user), count);
                assert!(m.as_u32() < count);
            }
        }
    }

    #[test]
    fn normalization_gives_same_mailbox() {
        assert_eq!(
            MailboxId::for_recipient(&id("Alice@Example.com"), 16),
            MailboxId::for_recipient(&id("alice@example.COM"), 16)
        );
    }

    #[test]
    fn single_mailbox_everything_maps_to_zero() {
        assert_eq!(MailboxId::for_recipient(&id("x@y.z"), 1), MailboxId(0));
    }

    #[test]
    fn cover_mailbox() {
        assert!(MailboxId::COVER.is_cover());
        assert!(!MailboxId(0).is_cover());
        assert_eq!(format!("{}", MailboxId::COVER), "mailbox(cover)");
        assert_eq!(format!("{}", MailboxId(3)), "mailbox 3");
    }

    #[test]
    fn spreads_across_mailboxes() {
        // With many users and several mailboxes, more than one mailbox must be
        // used (sanity check that we are not degenerate).
        let count = 8u32;
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let user = id(&format!("user{i}@example.com"));
            seen.insert(MailboxId::for_recipient(&user, count).as_u32());
        }
        assert!(seen.len() > 4);
    }
}
