//! Wire formats and common protocol types shared by every Alpenhorn component.
//!
//! This crate defines the on-the-wire representation of the protocol objects
//! from the paper:
//!
//! * identities (email addresses, §3) and mailbox IDs (§3.1 step 3),
//! * rounds for the add-friend and dialing protocols (§4.4, §5),
//! * the `FriendRequest` structure (Figure 3),
//! * dial tokens produced by the keywheel (§5),
//! * onion envelopes carried through the mixnet (§6, Algorithm 1 step 3),
//! * the fixed request sizes that drive the bandwidth analysis in §8.2.
//!
//! All encodings are hand-rolled fixed-layout binary (see [`codec`]): requests
//! must be fixed-size so that cover traffic is indistinguishable from real
//! traffic, and the exact sizes feed the evaluation's bandwidth model.
//!
//! The [`rpc`] module defines the versioned client ↔ coordinator RPC API
//! (requests, responses, typed errors), carried inside the checksummed
//! [`codec::Frame`]; see `docs/ARCHITECTURE.md` for the layering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdn;
pub mod codec;
pub mod constants;
pub mod dial;
pub mod error;
pub mod friend_request;
pub mod identity;
pub mod mailbox;
pub mod mixer;
pub mod onion;
pub mod round;
pub mod rpc;

pub use cdn::{CdnRequest, CdnResponse, ShardHeader};
pub use codec::{Decoder, Encoder, Frame, FrameIoError};
pub use constants::*;
pub use dial::{DialRequest, DialToken};
pub use error::WireError;
pub use friend_request::{AddFriendEnvelope, FriendRequest};
pub use identity::Identity;
pub use mailbox::MailboxId;
pub use mixer::{MixerRequest, MixerResponse};
pub use onion::{OnionEnvelope, OnionEnvelopeRef};
pub use round::{Round, RoundKind};
pub use rpc::{
    CdnStatsWire, RateLimitReason, RateLimitToken, Request, Response, RpcError, SpanWire,
    TelemetryWire,
};
