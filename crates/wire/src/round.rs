//! Protocol rounds.
//!
//! Both Alpenhorn protocols operate in numbered rounds (§3.1): clients submit
//! one fixed-size request per round, PKGs rotate IBE master keys per
//! add-friend round (§4.4), and keywheels advance once per dialing round
//! (§5.1). Add-friend and dialing rounds are independent sequences.

/// Which of the two Alpenhorn protocols a round belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundKind {
    /// An add-friend protocol round (IBE, higher latency).
    AddFriend,
    /// A dialing protocol round (keywheel, low latency).
    Dialing,
}

impl RoundKind {
    /// A short stable label, used in key-derivation domain separation.
    pub fn label(&self) -> &'static str {
        match self {
            RoundKind::AddFriend => "add-friend",
            RoundKind::Dialing => "dialing",
        }
    }

    /// The protocol code used on the wire and in telemetry correlation ids
    /// (0 = add-friend, 1 = dialing).
    pub fn code(&self) -> u8 {
        match self {
            RoundKind::AddFriend => 0,
            RoundKind::Dialing => 1,
        }
    }
}

impl core::fmt::Display for RoundKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// A round number within one protocol's sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Round(pub u64);

impl Round {
    /// The first round.
    pub const FIRST: Round = Round(1);

    /// Returns the next round.
    pub fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// Returns the round `n` rounds later.
    pub fn plus(self, n: u64) -> Round {
        Round(self.0 + n)
    }

    /// The raw round number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl core::fmt::Display for Round {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "round {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_and_plus() {
        assert_eq!(Round(1).next(), Round(2));
        assert_eq!(Round(10).plus(5), Round(15));
    }

    #[test]
    fn ordering() {
        assert!(Round(3) < Round(4));
        assert_eq!(Round::FIRST.as_u64(), 1);
    }

    #[test]
    fn labels() {
        assert_eq!(RoundKind::AddFriend.label(), "add-friend");
        assert_eq!(RoundKind::Dialing.label(), "dialing");
        assert_eq!(format!("{}", Round(7)), "round 7");
    }
}
