//! Dial tokens and dialing requests.
//!
//! A dial token is a 256-bit pseudorandom value generated from a keywheel
//! (§5 of the paper). To call a friend, a client submits the token for the
//! current round through the mixnet; the last mixnet server encodes each
//! dialing mailbox as a Bloom filter of the tokens it received.

use crate::codec::Decoder;
use crate::constants::{DIAL_REQUEST_LEN, DIAL_TOKEN_LEN};
use crate::error::WireError;
use crate::mailbox::MailboxId;

/// A 256-bit dial token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DialToken(pub [u8; DIAL_TOKEN_LEN]);

impl DialToken {
    /// Token bytes.
    pub fn as_bytes(&self) -> &[u8; DIAL_TOKEN_LEN] {
        &self.0
    }
}

/// A dialing request as submitted by a client to the mixnet: the recipient's
/// mailbox ID (in plaintext, like add-friend requests) and the dial token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DialRequest {
    /// Destination mailbox (or [`MailboxId::COVER`] for cover traffic).
    pub mailbox: MailboxId,
    /// The dial token. For cover traffic this is a uniformly random value,
    /// which is indistinguishable from a real token.
    pub token: DialToken,
}

impl DialRequest {
    /// Encodes the request into its fixed wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes the request into `out` (cleared first), so round-driven
    /// callers can reuse one buffer across rounds.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(DIAL_REQUEST_LEN);
        out.extend_from_slice(&self.mailbox.0.to_be_bytes());
        out.extend_from_slice(&self.token.0);
        debug_assert_eq!(out.len(), DIAL_REQUEST_LEN);
    }

    /// Decodes a request from its fixed wire form.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() != DIAL_REQUEST_LEN {
            return Err(WireError::WrongLength {
                expected: DIAL_REQUEST_LEN,
                actual: buf.len(),
            });
        }
        let mut d = Decoder::new(buf);
        let mailbox = MailboxId(d.get_u32("dial mailbox")?);
        let token = DialToken(d.get_array("dial token")?);
        d.finish()?;
        Ok(DialRequest { mailbox, token })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let req = DialRequest {
            mailbox: MailboxId(5),
            token: DialToken([0xabu8; 32]),
        };
        let buf = req.encode();
        assert_eq!(buf.len(), DIAL_REQUEST_LEN);
        assert_eq!(DialRequest::decode(&buf).unwrap(), req);
    }

    #[test]
    fn cover_round_trip() {
        let req = DialRequest {
            mailbox: MailboxId::COVER,
            token: DialToken([0u8; 32]),
        };
        let decoded = DialRequest::decode(&req.encode()).unwrap();
        assert!(decoded.mailbox.is_cover());
    }

    #[test]
    fn wrong_length_rejected() {
        assert!(matches!(
            DialRequest::decode(&[0u8; 10]),
            Err(WireError::WrongLength { .. })
        ));
        assert!(matches!(
            DialRequest::decode(&[0u8; DIAL_REQUEST_LEN + 1]),
            Err(WireError::WrongLength { .. })
        ));
    }

    #[test]
    fn all_requests_same_size() {
        let a = DialRequest {
            mailbox: MailboxId(0),
            token: DialToken([0u8; 32]),
        };
        let b = DialRequest {
            mailbox: MailboxId::COVER,
            token: DialToken([0xffu8; 32]),
        };
        assert_eq!(a.encode().len(), b.encode().len());
    }
}
