//! The coordinator/client ↔ CDN node (`cdnd`) RPC protocol, plus the
//! mailbox blob codecs the erasure layer shards.
//!
//! The paper's CDN (§7) serves each closed round's public mailbox state so
//! the coordinator doesn't have to. Here that state is erasure coded: a
//! mailbox blob is split into `k` data + `m` parity shards, shard `i` lands
//! on node `i mod n`, and a reader reconstructs from any `k` of the
//! `k + m` shards. Each stored shard carries its coding geometry
//! (`data_shards`, `parity_shards`, `blob_len`) so a reader needs no side
//! channel to decode.
//!
//! Two blob codecs live here so the coordinator and clients agree on the
//! bytes being sharded: an add-friend mailbox is its ciphertext list
//! ([`encode_add_friend_blob`]), and a dialing mailbox is the raw Bloom
//! filter bytes (no codec needed — `BloomFilter::to_bytes` is already a
//! canonical blob).

use crate::codec::{Decoder, Encoder};
use crate::error::WireError;
use crate::friend_request::AddFriendEnvelope;
use crate::mailbox::MailboxId;
use crate::round::{Round, RoundKind};
use crate::rpc::{get_detail, put_detail};

/// Upper bound on shard counts (`k + m`) a node will accept.
pub const MAX_SHARDS: usize = 256;

/// Geometry of one stored shard: enough for a reader to reconstruct the
/// blob without any metadata service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Number of data shards (k) in the blob's encoding.
    pub data_shards: u16,
    /// Number of parity shards (m) in the blob's encoding.
    pub parity_shards: u16,
    /// Original blob length in bytes (strips the zero padding).
    pub blob_len: u64,
}

/// A request to one `cdnd` node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdnRequest {
    /// Store one shard of a mailbox blob (coordinator → node, at round
    /// close).
    PutShard {
        /// Which protocol's mailbox the shard belongs to.
        kind: RoundKind,
        /// The closed round.
        round: Round,
        /// The mailbox within the round.
        mailbox: MailboxId,
        /// Shard index within the encoding (`0..k` data, `k..k+m` parity).
        index: u16,
        /// The blob's coding geometry.
        header: ShardHeader,
        /// The shard bytes.
        shard: Vec<u8>,
    },
    /// Fetch one shard (client/coordinator → node).
    GetShard {
        /// Which protocol's mailbox to read.
        kind: RoundKind,
        /// The closed round.
        round: Round,
        /// The mailbox within the round.
        mailbox: MailboxId,
        /// Shard index within the encoding.
        index: u16,
    },
    /// Drop all shards for rounds before `keep_from` (both protocols).
    Expire {
        /// First round to keep.
        keep_from: Round,
    },
    /// Fetch the node's serving counters.
    GetStats,
    /// Admin: fetch the node's metrics exposition and recent spans
    /// (see `docs/OBSERVABILITY.md`).
    GetTelemetry,
}

/// A response from a `cdnd` node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdnResponse {
    /// The request succeeded and carries no payload.
    Ack,
    /// The requested shard.
    Shard {
        /// The blob's coding geometry, echoed from the store.
        header: ShardHeader,
        /// The shard bytes.
        shard: Vec<u8>,
    },
    /// The node does not hold that shard (never stored, expired, or lost).
    NotFound,
    /// The node's serving counters.
    Stats {
        /// Shards currently stored.
        shards_stored: u64,
        /// Bytes currently stored across all shards.
        bytes_stored: u64,
        /// Shard fetches served.
        shard_fetches: u64,
        /// Shard bytes served.
        bytes_served: u64,
    },
    /// The node's telemetry: metrics exposition text and recent spans.
    Telemetry(crate::rpc::TelemetryWire),
    /// The request failed.
    Error(
        /// Human-readable description.
        String,
    ),
}

const CREQ_PUT_SHARD: u8 = 1;
const CREQ_GET_SHARD: u8 = 2;
const CREQ_EXPIRE: u8 = 3;
const CREQ_GET_STATS: u8 = 4;
const CREQ_GET_TELEMETRY: u8 = 5;

const CRESP_ACK: u8 = 1;
const CRESP_SHARD: u8 = 2;
const CRESP_NOT_FOUND: u8 = 3;
const CRESP_STATS: u8 = 4;
const CRESP_ERROR: u8 = 5;
const CRESP_TELEMETRY: u8 = 6;

fn put_kind(e: &mut Encoder, kind: RoundKind) {
    e.put_u8(match kind {
        RoundKind::AddFriend => 0,
        RoundKind::Dialing => 1,
    });
}

fn get_kind(d: &mut Decoder<'_>) -> Result<RoundKind, WireError> {
    match d.get_u8("cdn round kind")? {
        0 => Ok(RoundKind::AddFriend),
        1 => Ok(RoundKind::Dialing),
        _ => Err(WireError::InvalidValue {
            context: "cdn round kind",
        }),
    }
}

fn put_header(e: &mut Encoder, header: &ShardHeader) {
    e.put_u16(header.data_shards);
    e.put_u16(header.parity_shards);
    e.put_u64(header.blob_len);
}

fn get_header(d: &mut Decoder<'_>) -> Result<ShardHeader, WireError> {
    let header = ShardHeader {
        data_shards: d.get_u16("shard header data count")?,
        parity_shards: d.get_u16("shard header parity count")?,
        blob_len: d.get_u64("shard header blob len")?,
    };
    if header.data_shards == 0
        || header.data_shards as usize + header.parity_shards as usize > MAX_SHARDS
    {
        return Err(WireError::InvalidValue {
            context: "shard header shape",
        });
    }
    Ok(header)
}

impl CdnRequest {
    /// A stable, lowercase name for this request kind, suitable as a metric
    /// label value.
    pub fn name(&self) -> &'static str {
        match self {
            CdnRequest::PutShard { .. } => "put_shard",
            CdnRequest::GetShard { .. } => "get_shard",
            CdnRequest::Expire { .. } => "expire",
            CdnRequest::GetStats => "get_stats",
            CdnRequest::GetTelemetry => "get_telemetry",
        }
    }

    /// The (protocol, round) this request addresses, when it is round-scoped.
    /// Drives span correlation ids at the CDN boundary.
    pub fn round_scope(&self) -> Option<(RoundKind, Round)> {
        match self {
            CdnRequest::PutShard { kind, round, .. } | CdnRequest::GetShard { kind, round, .. } => {
                Some((*kind, *round))
            }
            CdnRequest::Expire { .. } | CdnRequest::GetStats | CdnRequest::GetTelemetry => None,
        }
    }

    /// Encodes the request into its wire form (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64);
        match self {
            CdnRequest::PutShard {
                kind,
                round,
                mailbox,
                index,
                header,
                shard,
            } => {
                e.put_u8(CREQ_PUT_SHARD);
                put_kind(&mut e, *kind);
                e.put_u64(round.0);
                e.put_u32(mailbox.0);
                e.put_u16(*index);
                put_header(&mut e, header);
                e.put_var_bytes(shard);
            }
            CdnRequest::GetShard {
                kind,
                round,
                mailbox,
                index,
            } => {
                e.put_u8(CREQ_GET_SHARD);
                put_kind(&mut e, *kind);
                e.put_u64(round.0);
                e.put_u32(mailbox.0);
                e.put_u16(*index);
            }
            CdnRequest::Expire { keep_from } => {
                e.put_u8(CREQ_EXPIRE);
                e.put_u64(keep_from.0);
            }
            CdnRequest::GetStats => {
                e.put_u8(CREQ_GET_STATS);
            }
            CdnRequest::GetTelemetry => {
                e.put_u8(CREQ_GET_TELEMETRY);
            }
        }
        e.finish()
    }

    /// Decodes a request from its wire form. Total: typed errors, no panics.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let tag = d.get_u8("cdn request tag")?;
        let request = match tag {
            CREQ_PUT_SHARD => CdnRequest::PutShard {
                kind: get_kind(&mut d)?,
                round: Round(d.get_u64("cdn round")?),
                mailbox: MailboxId(d.get_u32("cdn mailbox")?),
                index: d.get_u16("cdn shard index")?,
                header: get_header(&mut d)?,
                shard: d.get_var_bytes("cdn shard bytes")?.to_vec(),
            },
            CREQ_GET_SHARD => CdnRequest::GetShard {
                kind: get_kind(&mut d)?,
                round: Round(d.get_u64("cdn round")?),
                mailbox: MailboxId(d.get_u32("cdn mailbox")?),
                index: d.get_u16("cdn shard index")?,
            },
            CREQ_EXPIRE => CdnRequest::Expire {
                keep_from: Round(d.get_u64("cdn keep-from round")?),
            },
            CREQ_GET_STATS => CdnRequest::GetStats,
            CREQ_GET_TELEMETRY => CdnRequest::GetTelemetry,
            _ => {
                return Err(WireError::InvalidValue {
                    context: "cdn request tag",
                })
            }
        };
        d.finish()?;
        Ok(request)
    }
}

impl CdnResponse {
    /// Encodes the response into its wire form (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64);
        match self {
            CdnResponse::Ack => {
                e.put_u8(CRESP_ACK);
            }
            CdnResponse::Shard { header, shard } => {
                e.put_u8(CRESP_SHARD);
                put_header(&mut e, header);
                e.put_var_bytes(shard);
            }
            CdnResponse::NotFound => {
                e.put_u8(CRESP_NOT_FOUND);
            }
            CdnResponse::Stats {
                shards_stored,
                bytes_stored,
                shard_fetches,
                bytes_served,
            } => {
                e.put_u8(CRESP_STATS);
                e.put_u64(*shards_stored);
                e.put_u64(*bytes_stored);
                e.put_u64(*shard_fetches);
                e.put_u64(*bytes_served);
            }
            CdnResponse::Telemetry(telemetry) => {
                e.put_u8(CRESP_TELEMETRY);
                crate::rpc::put_telemetry(&mut e, telemetry);
            }
            CdnResponse::Error(detail) => {
                e.put_u8(CRESP_ERROR);
                put_detail(&mut e, detail);
            }
        }
        e.finish()
    }

    /// Decodes a response from its wire form. Total: typed errors, no panics.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let tag = d.get_u8("cdn response tag")?;
        let response = match tag {
            CRESP_ACK => CdnResponse::Ack,
            CRESP_SHARD => CdnResponse::Shard {
                header: get_header(&mut d)?,
                shard: d.get_var_bytes("cdn shard bytes")?.to_vec(),
            },
            CRESP_NOT_FOUND => CdnResponse::NotFound,
            CRESP_STATS => CdnResponse::Stats {
                shards_stored: d.get_u64("cdn shards stored")?,
                bytes_stored: d.get_u64("cdn bytes stored")?,
                shard_fetches: d.get_u64("cdn shard fetches")?,
                bytes_served: d.get_u64("cdn bytes served")?,
            },
            CRESP_ERROR => CdnResponse::Error(get_detail(&mut d, "cdn error detail")?),
            CRESP_TELEMETRY => CdnResponse::Telemetry(crate::rpc::get_telemetry(&mut d)?),
            _ => {
                return Err(WireError::InvalidValue {
                    context: "cdn response tag",
                })
            }
        };
        d.finish()?;
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Mailbox blob codecs
// ---------------------------------------------------------------------------

/// Serializes an add-friend mailbox (a list of fixed-size IBE ciphertexts)
/// into the canonical blob the erasure layer shards.
pub fn encode_add_friend_blob(contents: &[Vec<u8>]) -> Vec<u8> {
    let mut e = Encoder::with_capacity(4 + contents.len() * AddFriendEnvelope::CIPHERTEXT_LEN);
    e.put_u32(contents.len() as u32);
    for ciphertext in contents {
        debug_assert_eq!(ciphertext.len(), AddFriendEnvelope::CIPHERTEXT_LEN);
        e.put_bytes(ciphertext);
    }
    e.finish()
}

/// Parses an add-friend mailbox blob back into its ciphertext list.
pub fn decode_add_friend_blob(blob: &[u8]) -> Result<Vec<Vec<u8>>, WireError> {
    let mut d = Decoder::new(blob);
    let count = d.get_u32("blob ciphertext count")? as usize;
    if count * AddFriendEnvelope::CIPHERTEXT_LEN != d.remaining() {
        return Err(WireError::InvalidValue {
            context: "blob ciphertext count",
        });
    }
    let mut contents = Vec::with_capacity(count);
    for _ in 0..count {
        contents.push(
            d.get_bytes(AddFriendEnvelope::CIPHERTEXT_LEN, "blob ciphertext")?
                .to_vec(),
        );
    }
    d.finish()?;
    Ok(contents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ShardHeader {
        ShardHeader {
            data_shards: 3,
            parity_shards: 1,
            blob_len: 1000,
        }
    }

    #[test]
    fn cdn_messages_round_trip() {
        let requests = vec![
            CdnRequest::PutShard {
                kind: RoundKind::AddFriend,
                round: Round(5),
                mailbox: MailboxId(2),
                index: 3,
                header: header(),
                shard: vec![1u8; 334],
            },
            CdnRequest::GetShard {
                kind: RoundKind::Dialing,
                round: Round(5),
                mailbox: MailboxId(2),
                index: 0,
            },
            CdnRequest::Expire {
                keep_from: Round(4),
            },
            CdnRequest::GetStats,
        ];
        for request in requests {
            assert_eq!(
                CdnRequest::decode(&request.encode()).unwrap(),
                request,
                "{request:?}"
            );
        }
        let responses = vec![
            CdnResponse::Ack,
            CdnResponse::Shard {
                header: header(),
                shard: vec![2u8; 334],
            },
            CdnResponse::NotFound,
            CdnResponse::Stats {
                shards_stored: 12,
                bytes_stored: 4000,
                shard_fetches: 9,
                bytes_served: 3000,
            },
            CdnResponse::Error("shard index out of range".into()),
        ];
        for response in responses {
            assert_eq!(
                CdnResponse::decode(&response.encode()).unwrap(),
                response,
                "{response:?}"
            );
        }
    }

    #[test]
    fn degenerate_shard_headers_rejected() {
        // k = 0 and k + m > MAX_SHARDS are both hostile.
        for (data, parity) in [(0u16, 1u16), (200, 200)] {
            let request = CdnRequest::PutShard {
                kind: RoundKind::AddFriend,
                round: Round(1),
                mailbox: MailboxId(0),
                index: 0,
                header: ShardHeader {
                    data_shards: data,
                    parity_shards: parity,
                    blob_len: 10,
                },
                shard: vec![0u8; 4],
            };
            assert!(CdnRequest::decode(&request.encode()).is_err());
        }
    }

    #[test]
    fn add_friend_blob_round_trips() {
        let contents = vec![
            vec![7u8; AddFriendEnvelope::CIPHERTEXT_LEN],
            vec![9u8; AddFriendEnvelope::CIPHERTEXT_LEN],
        ];
        let blob = encode_add_friend_blob(&contents);
        assert_eq!(decode_add_friend_blob(&blob).unwrap(), contents);
        assert_eq!(
            decode_add_friend_blob(&encode_add_friend_blob(&[])).unwrap(),
            Vec::<Vec<u8>>::new()
        );
    }

    #[test]
    fn truncated_blob_rejected() {
        let contents = vec![vec![7u8; AddFriendEnvelope::CIPHERTEXT_LEN]];
        let mut blob = encode_add_friend_blob(&contents);
        blob.pop();
        assert!(decode_add_friend_blob(&blob).is_err());
    }
}
