//! The versioned client ↔ coordinator RPC protocol.
//!
//! The paper deploys Alpenhorn as real network services: clients talk to an
//! untrusted entry server (the coordinator) that fronts the PKGs and the
//! mixnet chain. This module defines that service boundary as an explicit,
//! versioned request/response API with fixed-layout binary encodings built on
//! the crate's [`Encoder`]/[`Decoder`]. On the wire every message travels
//! inside a [`crate::codec::Frame`], so malformed, mis-versioned, or
//! corrupted traffic is rejected before message decoding runs.
//!
//! The request surface covers the full round lifecycle:
//!
//! * account management: [`Request::Register`],
//!   [`Request::CompleteRegistration`], [`Request::Deregister`];
//! * round discovery: [`Request::GetAddFriendRoundInfo`],
//!   [`Request::GetDialingRoundInfo`], [`Request::GetPkgKeys`];
//! * the add-friend protocol: [`Request::ExtractIdentityKeys`],
//!   [`Request::SubmitAddFriend`], [`Request::FetchAddFriendMailbox`];
//! * the dialing protocol: [`Request::SubmitDialing`],
//!   [`Request::FetchDialingMailbox`];
//! * rate limiting (§9): [`Request::IssueRateLimitToken`] plus the
//!   [`RateLimitToken`] carried by submissions;
//! * round administration (the operator side of the entry server):
//!   [`Request::BeginAddFriendRound`] and friends.
//!
//! Decoding is total: any byte sequence either decodes to a message or
//! returns a typed [`WireError`]; nothing in this module panics on input.

use crate::codec::{Decoder, Encoder};
use crate::constants::{G1_LEN, G2_LEN, IDENTITY_FIELD_LEN, SIGNATURE_LEN, SIGNING_PK_LEN};
use crate::error::WireError;
use crate::friend_request::AddFriendEnvelope;
use crate::identity::Identity;
use crate::mailbox::MailboxId;
use crate::round::{Round, RoundKind};

/// Length of the client-chosen random serial inside a rate-limit token.
pub const RATE_LIMIT_SERIAL_LEN: usize = 16;

/// Upper bound on the number of mixnet servers (onion keys) announced per
/// round; a count beyond this is rejected as hostile input.
pub const MAX_CHAIN_KEYS: usize = 64;

/// Upper bound on the number of PKG key shares per round / response.
pub const MAX_PKG_KEYS: usize = 64;

/// Upper bound on free-form detail strings carried in errors.
pub const MAX_DETAIL_LEN: usize = 256;

/// A spendable rate-limit token: a client-chosen random serial plus the
/// unblinded BLS signature over the spend message for (protocol, round,
/// serial). The coordinator verifies the signature against the issuer key and
/// records the token against double spending; because issuance used a blind
/// signature, spending does not identify the client the token was issued to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateLimitToken {
    /// Client-chosen random serial, embedded in the signed spend message so
    /// tokens are single-use.
    pub serial: [u8; RATE_LIMIT_SERIAL_LEN],
    /// Unblinded BLS signature over the spend message.
    pub signature: [u8; SIGNATURE_LEN],
}

/// Everything a client needs to participate in the open add-friend round, in
/// wire form (compressed curve points as raw bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddFriendRoundWire {
    /// The round number.
    pub round: Round,
    /// Onion public keys of the mixnet servers, in chain order.
    pub onion_keys: Vec<[u8; G1_LEN]>,
    /// Each PKG's revealed master public key for the round; the client
    /// aggregates these into the Anytrust-IBE encryption key.
    pub pkg_publics: Vec<[u8; G1_LEN]>,
    /// Number of add-friend mailboxes this round.
    pub num_mailboxes: u32,
    /// The fixed size of a client submission (onion) this round.
    pub onion_len: u32,
    /// Whether submissions this round must carry a [`RateLimitToken`].
    pub rate_limited: bool,
}

/// Everything a client needs to participate in the open dialing round, in
/// wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DialingRoundWire {
    /// The round number.
    pub round: Round,
    /// Onion public keys of the mixnet servers, in chain order.
    pub onion_keys: Vec<[u8; G1_LEN]>,
    /// Number of dialing mailboxes this round.
    pub num_mailboxes: u32,
    /// The fixed size of a client submission (onion) this round.
    pub onion_len: u32,
    /// Whether submissions this round must carry a [`RateLimitToken`].
    pub rate_limited: bool,
}

/// One PKG's response to an identity-key extraction, in wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityKeyShareWire {
    /// The user's IBE identity private key share for the round (G2 point).
    pub identity_key: [u8; G2_LEN],
    /// The PKG's attestation signature over (identity, signing key, round).
    pub attestation: [u8; SIGNATURE_LEN],
}

/// Round statistics returned when an admin closes a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStatsWire {
    /// Messages submitted by clients.
    pub client_messages: u64,
    /// Noise messages added across all servers.
    pub total_noise: u64,
    /// Messages in the final batch (clients + noise - dropped).
    pub final_messages: u64,
}

/// A request from a client (or round-driving operator) to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Start registration of an identity under a long-term signing key; every
    /// PKG sends a confirmation email.
    Register {
        /// The identity (email address) to register.
        identity: Identity,
        /// The long-term signing public key to bind to it.
        signing_key: [u8; SIGNING_PK_LEN],
    },
    /// Complete registration by confirming the emailed tokens (in this
    /// reproduction the simulated inbox is read server-side; this request
    /// plays the role of the user clicking the confirmation links).
    CompleteRegistration {
        /// The identity being confirmed.
        identity: Identity,
    },
    /// Deregister an identity (signature over the deregistration message by
    /// the registered key).
    Deregister {
        /// The identity to deregister.
        identity: Identity,
        /// Signature authorizing the deregistration.
        signature: [u8; SIGNATURE_LEN],
    },
    /// Fetch the PKGs' long-term verification keys. Real clients ship with
    /// these keys (§3.3); the RPC exists for tooling and tests.
    GetPkgKeys,
    /// Fetch the currently open add-friend round's parameters.
    GetAddFriendRoundInfo,
    /// Fetch the currently open dialing round's parameters.
    GetDialingRoundInfo,
    /// Extract this round's IBE identity key shares from every PKG.
    ExtractIdentityKeys {
        /// The identity whose round key is extracted.
        identity: Identity,
        /// The add-friend round the extraction is for.
        round: Round,
        /// Signature over the extraction request message by the registered
        /// key.
        auth: [u8; SIGNATURE_LEN],
    },
    /// Request one blind-signed rate-limit token (§9). The blinded message
    /// hides the token from the issuer; `auth` proves account ownership the
    /// same way key extraction does.
    IssueRateLimitToken {
        /// The requesting identity (issuance is budgeted per user per day).
        identity: Identity,
        /// The blinded token message (G1 point).
        blinded: [u8; G1_LEN],
        /// Signature over the issuance message by the registered key.
        auth: [u8; SIGNATURE_LEN],
    },
    /// Submit one fixed-size (possibly cover) onion for the open add-friend
    /// round.
    SubmitAddFriend {
        /// The round being submitted to.
        round: Round,
        /// The onion-wrapped request, exactly `onion_len` bytes.
        onion: Vec<u8>,
        /// Rate-limit token, required when the round is rate limited.
        token: Option<RateLimitToken>,
    },
    /// Submit one fixed-size (possibly cover) dial onion for the open dialing
    /// round.
    SubmitDialing {
        /// The round being submitted to.
        round: Round,
        /// The onion-wrapped request, exactly `onion_len` bytes.
        onion: Vec<u8>,
        /// Rate-limit token, required when the round is rate limited.
        token: Option<RateLimitToken>,
    },
    /// Download one add-friend mailbox (a list of IBE ciphertexts) from the
    /// CDN.
    FetchAddFriendMailbox {
        /// The closed round to fetch from.
        round: Round,
        /// The mailbox to download.
        mailbox: MailboxId,
    },
    /// Download one dialing mailbox (a Bloom filter of dial tokens) from the
    /// CDN.
    FetchDialingMailbox {
        /// The closed round to fetch from.
        round: Round,
        /// The mailbox to download.
        mailbox: MailboxId,
    },
    /// Admin: open an add-friend round sized for the expected number of real
    /// requests.
    BeginAddFriendRound {
        /// The round number to open.
        round: Round,
        /// Expected number of real requests (drives mailbox sizing).
        expected_real: u64,
    },
    /// Admin: close the open add-friend round, running the mixnet and
    /// publishing mailboxes.
    CloseAddFriendRound {
        /// The round number to close.
        round: Round,
    },
    /// Admin: open a dialing round sized for the expected number of real
    /// tokens.
    BeginDialingRound {
        /// The round number to open.
        round: Round,
        /// Expected number of real dial tokens (drives mailbox sizing).
        expected_real: u64,
    },
    /// Admin: close the open dialing round.
    CloseDialingRound {
        /// The round number to close.
        round: Round,
    },
    /// Fetch the CDN's bandwidth counters (the evaluation's bandwidth
    /// figures; parity traffic is accounted separately from data so the
    /// erasure-coded deployment stays comparable to the origin-only one).
    GetCdnStats,
    /// Admin: fetch the process's metrics exposition and recent spans
    /// (see `docs/OBSERVABILITY.md`).
    GetTelemetry,
}

/// Why a submission or issuance was rate limited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateLimitReason {
    /// The round requires a token and the submission carried none.
    MissingToken,
    /// The token's signature did not verify under the issuer key.
    InvalidToken,
    /// The token was already spent.
    DoubleSpend,
    /// The user exhausted today's issuance budget.
    BudgetExhausted,
    /// Rate limiting is not enabled on this deployment.
    NotEnabled,
}

impl RateLimitReason {
    fn code(self) -> u8 {
        match self {
            RateLimitReason::MissingToken => 0,
            RateLimitReason::InvalidToken => 1,
            RateLimitReason::DoubleSpend => 2,
            RateLimitReason::BudgetExhausted => 3,
            RateLimitReason::NotEnabled => 4,
        }
    }

    fn from_code(code: u8) -> Result<Self, WireError> {
        Ok(match code {
            0 => RateLimitReason::MissingToken,
            1 => RateLimitReason::InvalidToken,
            2 => RateLimitReason::DoubleSpend,
            3 => RateLimitReason::BudgetExhausted,
            4 => RateLimitReason::NotEnabled,
            _ => {
                return Err(WireError::InvalidValue {
                    context: "rate limit reason",
                })
            }
        })
    }
}

impl core::fmt::Display for RateLimitReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RateLimitReason::MissingToken => write!(f, "submission carried no rate-limit token"),
            RateLimitReason::InvalidToken => write!(f, "rate-limit token is invalid"),
            RateLimitReason::DoubleSpend => write!(f, "rate-limit token was already spent"),
            RateLimitReason::BudgetExhausted => write!(f, "daily token budget exhausted"),
            RateLimitReason::NotEnabled => write!(f, "rate limiting is not enabled"),
        }
    }
}

/// A typed error reported by the coordinator over the RPC boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// An operation referred to a round that is not currently open.
    RoundNotOpen {
        /// The round that was requested.
        requested: Round,
    },
    /// No round of this protocol is currently open to query.
    NoOpenRound {
        /// Which protocol's round was queried.
        kind: RoundKind,
    },
    /// A round of this protocol is already open; close it first.
    RoundAlreadyOpen,
    /// A submitted request did not have the fixed size required this round.
    WrongRequestSize {
        /// Expected size in bytes.
        expected: u32,
        /// Actual size in bytes.
        actual: u32,
    },
    /// The requested mailbox does not exist for that round.
    UnknownMailbox,
    /// A PKG's revealed round key did not match its prior commitment.
    CommitmentMismatch {
        /// Index of the offending PKG.
        pkg_index: u32,
    },
    /// A PKG rejected the operation.
    Pkg {
        /// Stable numeric code for the PKG error variant.
        code: u8,
        /// Human-readable description.
        detail: String,
    },
    /// The operation was rate limited.
    RateLimited {
        /// Why the operation was rejected.
        reason: RateLimitReason,
    },
    /// The request was structurally valid but semantically unusable (bad
    /// point encoding, unknown identity, failed authentication, ...).
    BadRequest {
        /// Human-readable description.
        detail: String,
    },
    /// A transient server-side fault (e.g. the durable journal could not be
    /// written, or the server is shedding load). Unlike
    /// [`RpcError::BadRequest`], retrying the same request later is expected
    /// to succeed.
    Unavailable {
        /// Human-readable description.
        detail: String,
        /// Server's backoff hint: how long the client should wait before
        /// retrying, in milliseconds. `0` means "no hint" (retry on the
        /// client's own schedule).
        retry_after_ms: u32,
    },
}

impl core::fmt::Display for RpcError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RpcError::RoundNotOpen { requested } => {
                write!(f, "round {} is not open", requested.0)
            }
            RpcError::NoOpenRound { kind } => write!(f, "no {kind} round is open"),
            RpcError::RoundAlreadyOpen => write!(f, "a round is already open"),
            RpcError::WrongRequestSize { expected, actual } => {
                write!(f, "request must be {expected} bytes, got {actual}")
            }
            RpcError::UnknownMailbox => write!(f, "unknown mailbox"),
            RpcError::CommitmentMismatch { pkg_index } => {
                write!(
                    f,
                    "PKG {pkg_index} revealed a key not matching its commitment"
                )
            }
            RpcError::Pkg { detail, .. } => write!(f, "PKG error: {detail}"),
            RpcError::RateLimited { reason } => write!(f, "rate limited: {reason}"),
            RpcError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            RpcError::Unavailable {
                detail,
                retry_after_ms,
            } => {
                write!(f, "server temporarily unavailable: {detail}")?;
                if *retry_after_ms > 0 {
                    write!(f, " (retry after {retry_after_ms} ms)")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RpcError {}

/// A response from the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded and carries no payload.
    Ack,
    /// The PKGs' long-term verification keys, in PKG order.
    PkgKeys(Vec<[u8; SIGNING_PK_LEN]>),
    /// Parameters of the open add-friend round.
    AddFriendRoundInfo(AddFriendRoundWire),
    /// Parameters of the open dialing round.
    DialingRoundInfo(DialingRoundWire),
    /// One identity key share + attestation per PKG, in PKG order.
    IdentityKeys(Vec<IdentityKeyShareWire>),
    /// A blind-signed rate-limit token.
    TokenIssued {
        /// The blinded signature; the client unblinds it into the spendable
        /// token.
        blind_signature: [u8; G1_LEN],
    },
    /// Contents of one add-friend mailbox: fixed-size IBE ciphertexts.
    AddFriendMailbox {
        /// The ciphertexts, each exactly
        /// [`AddFriendEnvelope::CIPHERTEXT_LEN`] bytes.
        contents: Vec<Vec<u8>>,
    },
    /// Contents of one dialing mailbox: a serialized Bloom filter.
    DialingMailbox {
        /// The filter, as produced by `BloomFilter::to_bytes`.
        filter: Vec<u8>,
    },
    /// A round was closed; summary statistics.
    RoundClosed(RoundStatsWire),
    /// The CDN's bandwidth counters.
    CdnStats(CdnStatsWire),
    /// The process's telemetry: metrics exposition text and recent spans.
    Telemetry(TelemetryWire),
    /// The request failed with a typed error.
    Error(RpcError),
}

/// Upper bound on the metrics exposition text in a telemetry response
/// (1 MiB; a full registry is a few tens of KiB).
pub const MAX_TELEMETRY_TEXT_LEN: usize = 1 << 20;

/// Upper bound on the spans in a telemetry response (matches the span ring
/// capacity in `alpenhorn-obs`).
pub const MAX_TELEMETRY_SPANS: usize = 4096;

/// One process's telemetry, in wire form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryWire {
    /// The metric registry's text exposition (`name{label="v"} value` lines).
    pub exposition: String,
    /// Recently finished spans, oldest first.
    pub spans: Vec<SpanWire>,
}

/// One finished span, in wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanWire {
    /// The component that recorded it (`"coordinator"`, `"mixd"`, `"cdn"`, ...).
    pub component: String,
    /// What the interval covered (`"mix.round"`, `"cdn.put_shard"`, ...).
    pub name: String,
    /// Round correlation id (0 = not round-scoped).
    pub correlation: u64,
    /// Start, microseconds since the recording process started.
    pub start_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
}

/// CDN serving counters, in wire form. Data bytes are mailbox payload bytes
/// delivered to clients; parity bytes are the extra erasure-shard bytes
/// fetched to reconstruct them, kept separate so bandwidth figures remain
/// comparable to an origin-only deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdnStatsWire {
    /// Mailbox payload bytes served to clients.
    pub bytes_served: u64,
    /// Mailbox downloads served.
    pub downloads: u64,
    /// Extra parity-shard bytes fetched during erasure reconstruction.
    pub parity_bytes_served: u64,
    /// Individual shard fetches issued to CDN nodes.
    pub shard_fetches: u64,
}

// ---------------------------------------------------------------------------
// Encoding helpers
// ---------------------------------------------------------------------------

fn put_identity(e: &mut Encoder, identity: &Identity) {
    e.put_padded(identity.as_bytes(), IDENTITY_FIELD_LEN);
}

fn get_identity(d: &mut Decoder<'_>, context: &'static str) -> Result<Identity, WireError> {
    let raw = d.get_padded(IDENTITY_FIELD_LEN, context)?;
    let s =
        core::str::from_utf8(raw).map_err(|_| WireError::InvalidIdentity("<non-utf8>".into()))?;
    Identity::new(s)
}

fn put_point_list<const N: usize>(e: &mut Encoder, points: &[[u8; N]]) {
    e.put_u16(points.len() as u16);
    for p in points {
        e.put_bytes(p);
    }
}

fn get_point_list<const N: usize>(
    d: &mut Decoder<'_>,
    max: usize,
    context: &'static str,
) -> Result<Vec<[u8; N]>, WireError> {
    let count = d.get_u16(context)? as usize;
    if count > max || count * N > d.remaining() {
        return Err(WireError::InvalidValue { context });
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(d.get_array::<N>(context)?);
    }
    Ok(out)
}

fn put_token(e: &mut Encoder, token: &Option<RateLimitToken>) {
    match token {
        None => {
            e.put_u8(0);
        }
        Some(t) => {
            e.put_u8(1);
            e.put_bytes(&t.serial);
            e.put_bytes(&t.signature);
        }
    }
}

fn get_token(d: &mut Decoder<'_>) -> Result<Option<RateLimitToken>, WireError> {
    match d.get_u8("token flag")? {
        0 => Ok(None),
        1 => Ok(Some(RateLimitToken {
            serial: d.get_array("token serial")?,
            signature: d.get_array("token signature")?,
        })),
        _ => Err(WireError::InvalidValue {
            context: "token flag",
        }),
    }
}

pub(crate) fn put_detail(e: &mut Encoder, detail: &str) {
    let bytes = detail.as_bytes();
    let take = bytes.len().min(MAX_DETAIL_LEN);
    // Truncate on a char boundary so decoding back to UTF-8 cannot fail.
    let mut end = take;
    while end > 0 && !detail.is_char_boundary(end) {
        end -= 1;
    }
    e.put_var_bytes(&bytes[..end]);
}

pub(crate) fn get_detail(d: &mut Decoder<'_>, context: &'static str) -> Result<String, WireError> {
    let raw = d.get_var_bytes(context)?;
    if raw.len() > MAX_DETAIL_LEN {
        return Err(WireError::InvalidValue { context });
    }
    String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidValue { context })
}

pub(crate) fn put_telemetry(e: &mut Encoder, telemetry: &TelemetryWire) {
    let text = telemetry.exposition.as_bytes();
    let mut end = text.len().min(MAX_TELEMETRY_TEXT_LEN);
    while end > 0 && !telemetry.exposition.is_char_boundary(end) {
        end -= 1;
    }
    e.put_var_bytes(&text[..end]);
    let spans = &telemetry.spans[..telemetry.spans.len().min(MAX_TELEMETRY_SPANS)];
    e.put_u32(spans.len() as u32);
    for span in spans {
        put_detail(e, &span.component);
        put_detail(e, &span.name);
        e.put_u64(span.correlation);
        e.put_u64(span.start_us);
        e.put_u64(span.duration_us);
    }
}

pub(crate) fn get_telemetry(d: &mut Decoder<'_>) -> Result<TelemetryWire, WireError> {
    let raw = d.get_var_bytes("telemetry exposition")?;
    if raw.len() > MAX_TELEMETRY_TEXT_LEN {
        return Err(WireError::InvalidValue {
            context: "telemetry exposition",
        });
    }
    let exposition = String::from_utf8(raw.to_vec()).map_err(|_| WireError::InvalidValue {
        context: "telemetry exposition",
    })?;
    let count = d.get_u32("telemetry span count")? as usize;
    // Every span costs at least its three u64 fields on the wire, so the
    // count is bounded by the remaining bytes before any allocation.
    if count > MAX_TELEMETRY_SPANS || count * 24 > d.remaining() {
        return Err(WireError::InvalidValue {
            context: "telemetry span count",
        });
    }
    let mut spans = Vec::with_capacity(count);
    for _ in 0..count {
        spans.push(SpanWire {
            component: get_detail(d, "telemetry span component")?,
            name: get_detail(d, "telemetry span name")?,
            correlation: d.get_u64("telemetry span correlation")?,
            start_us: d.get_u64("telemetry span start")?,
            duration_us: d.get_u64("telemetry span duration")?,
        });
    }
    Ok(TelemetryWire { exposition, spans })
}

fn round_kind_code(kind: RoundKind) -> u8 {
    match kind {
        RoundKind::AddFriend => 0,
        RoundKind::Dialing => 1,
    }
}

fn round_kind_from_code(code: u8) -> Result<RoundKind, WireError> {
    match code {
        0 => Ok(RoundKind::AddFriend),
        1 => Ok(RoundKind::Dialing),
        _ => Err(WireError::InvalidValue {
            context: "round kind",
        }),
    }
}

// ---------------------------------------------------------------------------
// Request encoding
// ---------------------------------------------------------------------------

const REQ_REGISTER: u8 = 1;
const REQ_COMPLETE_REGISTRATION: u8 = 2;
const REQ_DEREGISTER: u8 = 3;
const REQ_GET_PKG_KEYS: u8 = 4;
const REQ_GET_ADD_FRIEND_ROUND: u8 = 5;
const REQ_GET_DIALING_ROUND: u8 = 6;
const REQ_EXTRACT_IDENTITY_KEYS: u8 = 7;
const REQ_ISSUE_RATE_LIMIT_TOKEN: u8 = 8;
const REQ_SUBMIT_ADD_FRIEND: u8 = 9;
const REQ_SUBMIT_DIALING: u8 = 10;
const REQ_FETCH_ADD_FRIEND_MAILBOX: u8 = 11;
const REQ_FETCH_DIALING_MAILBOX: u8 = 12;
const REQ_BEGIN_ADD_FRIEND_ROUND: u8 = 13;
const REQ_CLOSE_ADD_FRIEND_ROUND: u8 = 14;
const REQ_BEGIN_DIALING_ROUND: u8 = 15;
const REQ_CLOSE_DIALING_ROUND: u8 = 16;
const REQ_GET_CDN_STATS: u8 = 17;
const REQ_GET_TELEMETRY: u8 = 18;

impl Request {
    /// A stable, lowercase name for this request kind, suitable as a metric
    /// label value (`coordinator_rpc_total{rpc="submit_add_friend"}`).
    pub fn name(&self) -> &'static str {
        match self {
            Request::Register { .. } => "register",
            Request::CompleteRegistration { .. } => "complete_registration",
            Request::Deregister { .. } => "deregister",
            Request::GetPkgKeys => "get_pkg_keys",
            Request::GetAddFriendRoundInfo => "get_add_friend_round_info",
            Request::GetDialingRoundInfo => "get_dialing_round_info",
            Request::ExtractIdentityKeys { .. } => "extract_identity_keys",
            Request::IssueRateLimitToken { .. } => "issue_rate_limit_token",
            Request::SubmitAddFriend { .. } => "submit_add_friend",
            Request::SubmitDialing { .. } => "submit_dialing",
            Request::FetchAddFriendMailbox { .. } => "fetch_add_friend_mailbox",
            Request::FetchDialingMailbox { .. } => "fetch_dialing_mailbox",
            Request::BeginAddFriendRound { .. } => "begin_add_friend_round",
            Request::CloseAddFriendRound { .. } => "close_add_friend_round",
            Request::BeginDialingRound { .. } => "begin_dialing_round",
            Request::CloseDialingRound { .. } => "close_dialing_round",
            Request::GetCdnStats => "get_cdn_stats",
            Request::GetTelemetry => "get_telemetry",
        }
    }

    /// The `(protocol, round)` a round-scoped request operates on, used to
    /// derive its telemetry correlation id. `None` for requests that are not
    /// tied to a specific round (registration, key fetches, telemetry).
    pub fn round_scope(&self) -> Option<(crate::RoundKind, crate::Round)> {
        use crate::RoundKind;
        match self {
            Request::ExtractIdentityKeys { round, .. }
            | Request::SubmitAddFriend { round, .. }
            | Request::FetchAddFriendMailbox { round, .. }
            | Request::BeginAddFriendRound { round, .. }
            | Request::CloseAddFriendRound { round } => Some((RoundKind::AddFriend, *round)),
            Request::SubmitDialing { round, .. }
            | Request::FetchDialingMailbox { round, .. }
            | Request::BeginDialingRound { round, .. }
            | Request::CloseDialingRound { round } => Some((RoundKind::Dialing, *round)),
            _ => None,
        }
    }

    /// Encodes the request into its wire form (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(128);
        match self {
            Request::Register {
                identity,
                signing_key,
            } => {
                e.put_u8(REQ_REGISTER);
                put_identity(&mut e, identity);
                e.put_bytes(signing_key);
            }
            Request::CompleteRegistration { identity } => {
                e.put_u8(REQ_COMPLETE_REGISTRATION);
                put_identity(&mut e, identity);
            }
            Request::Deregister {
                identity,
                signature,
            } => {
                e.put_u8(REQ_DEREGISTER);
                put_identity(&mut e, identity);
                e.put_bytes(signature);
            }
            Request::GetPkgKeys => {
                e.put_u8(REQ_GET_PKG_KEYS);
            }
            Request::GetAddFriendRoundInfo => {
                e.put_u8(REQ_GET_ADD_FRIEND_ROUND);
            }
            Request::GetDialingRoundInfo => {
                e.put_u8(REQ_GET_DIALING_ROUND);
            }
            Request::ExtractIdentityKeys {
                identity,
                round,
                auth,
            } => {
                e.put_u8(REQ_EXTRACT_IDENTITY_KEYS);
                put_identity(&mut e, identity);
                e.put_u64(round.0);
                e.put_bytes(auth);
            }
            Request::IssueRateLimitToken {
                identity,
                blinded,
                auth,
            } => {
                e.put_u8(REQ_ISSUE_RATE_LIMIT_TOKEN);
                put_identity(&mut e, identity);
                e.put_bytes(blinded);
                e.put_bytes(auth);
            }
            Request::SubmitAddFriend {
                round,
                onion,
                token,
            } => {
                e.put_u8(REQ_SUBMIT_ADD_FRIEND);
                e.put_u64(round.0);
                put_token(&mut e, token);
                e.put_var_bytes(onion);
            }
            Request::SubmitDialing {
                round,
                onion,
                token,
            } => {
                e.put_u8(REQ_SUBMIT_DIALING);
                e.put_u64(round.0);
                put_token(&mut e, token);
                e.put_var_bytes(onion);
            }
            Request::FetchAddFriendMailbox { round, mailbox } => {
                e.put_u8(REQ_FETCH_ADD_FRIEND_MAILBOX);
                e.put_u64(round.0);
                e.put_u32(mailbox.0);
            }
            Request::FetchDialingMailbox { round, mailbox } => {
                e.put_u8(REQ_FETCH_DIALING_MAILBOX);
                e.put_u64(round.0);
                e.put_u32(mailbox.0);
            }
            Request::BeginAddFriendRound {
                round,
                expected_real,
            } => {
                e.put_u8(REQ_BEGIN_ADD_FRIEND_ROUND);
                e.put_u64(round.0);
                e.put_u64(*expected_real);
            }
            Request::CloseAddFriendRound { round } => {
                e.put_u8(REQ_CLOSE_ADD_FRIEND_ROUND);
                e.put_u64(round.0);
            }
            Request::BeginDialingRound {
                round,
                expected_real,
            } => {
                e.put_u8(REQ_BEGIN_DIALING_ROUND);
                e.put_u64(round.0);
                e.put_u64(*expected_real);
            }
            Request::CloseDialingRound { round } => {
                e.put_u8(REQ_CLOSE_DIALING_ROUND);
                e.put_u64(round.0);
            }
            Request::GetCdnStats => {
                e.put_u8(REQ_GET_CDN_STATS);
            }
            Request::GetTelemetry => {
                e.put_u8(REQ_GET_TELEMETRY);
            }
        }
        e.finish()
    }

    /// Decodes a request from its wire form. Total: returns a typed error on
    /// any malformed input and never panics.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let tag = d.get_u8("request tag")?;
        let request = match tag {
            REQ_REGISTER => Request::Register {
                identity: get_identity(&mut d, "register identity")?,
                signing_key: d.get_array("register signing key")?,
            },
            REQ_COMPLETE_REGISTRATION => Request::CompleteRegistration {
                identity: get_identity(&mut d, "complete-registration identity")?,
            },
            REQ_DEREGISTER => Request::Deregister {
                identity: get_identity(&mut d, "deregister identity")?,
                signature: d.get_array("deregister signature")?,
            },
            REQ_GET_PKG_KEYS => Request::GetPkgKeys,
            REQ_GET_ADD_FRIEND_ROUND => Request::GetAddFriendRoundInfo,
            REQ_GET_DIALING_ROUND => Request::GetDialingRoundInfo,
            REQ_EXTRACT_IDENTITY_KEYS => Request::ExtractIdentityKeys {
                identity: get_identity(&mut d, "extract identity")?,
                round: Round(d.get_u64("extract round")?),
                auth: d.get_array("extract auth")?,
            },
            REQ_ISSUE_RATE_LIMIT_TOKEN => Request::IssueRateLimitToken {
                identity: get_identity(&mut d, "issue identity")?,
                blinded: d.get_array("issue blinded message")?,
                auth: d.get_array("issue auth")?,
            },
            REQ_SUBMIT_ADD_FRIEND => Request::SubmitAddFriend {
                round: Round(d.get_u64("submit round")?),
                token: get_token(&mut d)?,
                onion: d.get_var_bytes("submit onion")?.to_vec(),
            },
            REQ_SUBMIT_DIALING => Request::SubmitDialing {
                round: Round(d.get_u64("submit round")?),
                token: get_token(&mut d)?,
                onion: d.get_var_bytes("submit onion")?.to_vec(),
            },
            REQ_FETCH_ADD_FRIEND_MAILBOX => Request::FetchAddFriendMailbox {
                round: Round(d.get_u64("fetch round")?),
                mailbox: MailboxId(d.get_u32("fetch mailbox")?),
            },
            REQ_FETCH_DIALING_MAILBOX => Request::FetchDialingMailbox {
                round: Round(d.get_u64("fetch round")?),
                mailbox: MailboxId(d.get_u32("fetch mailbox")?),
            },
            REQ_BEGIN_ADD_FRIEND_ROUND => Request::BeginAddFriendRound {
                round: Round(d.get_u64("begin round")?),
                expected_real: d.get_u64("begin expected")?,
            },
            REQ_CLOSE_ADD_FRIEND_ROUND => Request::CloseAddFriendRound {
                round: Round(d.get_u64("close round")?),
            },
            REQ_BEGIN_DIALING_ROUND => Request::BeginDialingRound {
                round: Round(d.get_u64("begin round")?),
                expected_real: d.get_u64("begin expected")?,
            },
            REQ_CLOSE_DIALING_ROUND => Request::CloseDialingRound {
                round: Round(d.get_u64("close round")?),
            },
            REQ_GET_CDN_STATS => Request::GetCdnStats,
            REQ_GET_TELEMETRY => Request::GetTelemetry,
            _ => {
                return Err(WireError::InvalidValue {
                    context: "request tag",
                })
            }
        };
        d.finish()?;
        Ok(request)
    }
}

// ---------------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------------

const RESP_ACK: u8 = 1;
const RESP_PKG_KEYS: u8 = 2;
const RESP_ADD_FRIEND_ROUND: u8 = 3;
const RESP_DIALING_ROUND: u8 = 4;
const RESP_IDENTITY_KEYS: u8 = 5;
const RESP_TOKEN_ISSUED: u8 = 6;
const RESP_ADD_FRIEND_MAILBOX: u8 = 7;
const RESP_DIALING_MAILBOX: u8 = 8;
const RESP_ROUND_CLOSED: u8 = 9;
const RESP_ERROR: u8 = 10;
const RESP_CDN_STATS: u8 = 11;
const RESP_TELEMETRY: u8 = 12;

const ERR_ROUND_NOT_OPEN: u8 = 1;
const ERR_NO_OPEN_ROUND: u8 = 2;
const ERR_ROUND_ALREADY_OPEN: u8 = 3;
const ERR_WRONG_REQUEST_SIZE: u8 = 4;
const ERR_UNKNOWN_MAILBOX: u8 = 5;
const ERR_COMMITMENT_MISMATCH: u8 = 6;
const ERR_PKG: u8 = 7;
const ERR_RATE_LIMITED: u8 = 8;
const ERR_BAD_REQUEST: u8 = 9;
const ERR_UNAVAILABLE: u8 = 10;

impl RpcError {
    fn encode_into(&self, e: &mut Encoder) {
        match self {
            RpcError::RoundNotOpen { requested } => {
                e.put_u8(ERR_ROUND_NOT_OPEN);
                e.put_u64(requested.0);
            }
            RpcError::NoOpenRound { kind } => {
                e.put_u8(ERR_NO_OPEN_ROUND);
                e.put_u8(round_kind_code(*kind));
            }
            RpcError::RoundAlreadyOpen => {
                e.put_u8(ERR_ROUND_ALREADY_OPEN);
            }
            RpcError::WrongRequestSize { expected, actual } => {
                e.put_u8(ERR_WRONG_REQUEST_SIZE);
                e.put_u32(*expected);
                e.put_u32(*actual);
            }
            RpcError::UnknownMailbox => {
                e.put_u8(ERR_UNKNOWN_MAILBOX);
            }
            RpcError::CommitmentMismatch { pkg_index } => {
                e.put_u8(ERR_COMMITMENT_MISMATCH);
                e.put_u32(*pkg_index);
            }
            RpcError::Pkg { code, detail } => {
                e.put_u8(ERR_PKG);
                e.put_u8(*code);
                put_detail(e, detail);
            }
            RpcError::RateLimited { reason } => {
                e.put_u8(ERR_RATE_LIMITED);
                e.put_u8(reason.code());
            }
            RpcError::BadRequest { detail } => {
                e.put_u8(ERR_BAD_REQUEST);
                put_detail(e, detail);
            }
            RpcError::Unavailable {
                detail,
                retry_after_ms,
            } => {
                e.put_u8(ERR_UNAVAILABLE);
                put_detail(e, detail);
                e.put_u32(*retry_after_ms);
            }
        }
    }

    fn decode_from(d: &mut Decoder<'_>) -> Result<Self, WireError> {
        let tag = d.get_u8("error tag")?;
        Ok(match tag {
            ERR_ROUND_NOT_OPEN => RpcError::RoundNotOpen {
                requested: Round(d.get_u64("error round")?),
            },
            ERR_NO_OPEN_ROUND => RpcError::NoOpenRound {
                kind: round_kind_from_code(d.get_u8("error round kind")?)?,
            },
            ERR_ROUND_ALREADY_OPEN => RpcError::RoundAlreadyOpen,
            ERR_WRONG_REQUEST_SIZE => RpcError::WrongRequestSize {
                expected: d.get_u32("error expected size")?,
                actual: d.get_u32("error actual size")?,
            },
            ERR_UNKNOWN_MAILBOX => RpcError::UnknownMailbox,
            ERR_COMMITMENT_MISMATCH => RpcError::CommitmentMismatch {
                pkg_index: d.get_u32("error pkg index")?,
            },
            ERR_PKG => RpcError::Pkg {
                code: d.get_u8("error pkg code")?,
                detail: get_detail(d, "error pkg detail")?,
            },
            ERR_RATE_LIMITED => RpcError::RateLimited {
                reason: RateLimitReason::from_code(d.get_u8("error rate limit reason")?)?,
            },
            ERR_BAD_REQUEST => RpcError::BadRequest {
                detail: get_detail(d, "error detail")?,
            },
            ERR_UNAVAILABLE => RpcError::Unavailable {
                detail: get_detail(d, "error detail")?,
                retry_after_ms: d.get_u32("error retry-after hint")?,
            },
            _ => {
                return Err(WireError::InvalidValue {
                    context: "error tag",
                })
            }
        })
    }
}

fn put_round_common(
    e: &mut Encoder,
    round: Round,
    num_mailboxes: u32,
    onion_len: u32,
    rate_limited: bool,
) {
    e.put_u64(round.0);
    e.put_u32(num_mailboxes);
    e.put_u32(onion_len);
    e.put_u8(rate_limited as u8);
}

fn get_bool(d: &mut Decoder<'_>, context: &'static str) -> Result<bool, WireError> {
    match d.get_u8(context)? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::InvalidValue { context }),
    }
}

impl Response {
    /// Encodes the response into its wire form (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(128);
        match self {
            Response::Ack => {
                e.put_u8(RESP_ACK);
            }
            Response::PkgKeys(keys) => {
                e.put_u8(RESP_PKG_KEYS);
                put_point_list(&mut e, keys);
            }
            Response::AddFriendRoundInfo(info) => {
                e.put_u8(RESP_ADD_FRIEND_ROUND);
                put_round_common(
                    &mut e,
                    info.round,
                    info.num_mailboxes,
                    info.onion_len,
                    info.rate_limited,
                );
                put_point_list(&mut e, &info.onion_keys);
                put_point_list(&mut e, &info.pkg_publics);
            }
            Response::DialingRoundInfo(info) => {
                e.put_u8(RESP_DIALING_ROUND);
                put_round_common(
                    &mut e,
                    info.round,
                    info.num_mailboxes,
                    info.onion_len,
                    info.rate_limited,
                );
                put_point_list(&mut e, &info.onion_keys);
            }
            Response::IdentityKeys(shares) => {
                e.put_u8(RESP_IDENTITY_KEYS);
                e.put_u16(shares.len() as u16);
                for share in shares {
                    e.put_bytes(&share.identity_key);
                    e.put_bytes(&share.attestation);
                }
            }
            Response::TokenIssued { blind_signature } => {
                e.put_u8(RESP_TOKEN_ISSUED);
                e.put_bytes(blind_signature);
            }
            Response::AddFriendMailbox { contents } => {
                e.put_u8(RESP_ADD_FRIEND_MAILBOX);
                e.put_u32(contents.len() as u32);
                for ciphertext in contents {
                    debug_assert_eq!(ciphertext.len(), AddFriendEnvelope::CIPHERTEXT_LEN);
                    e.put_bytes(ciphertext);
                }
            }
            Response::DialingMailbox { filter } => {
                e.put_u8(RESP_DIALING_MAILBOX);
                e.put_var_bytes(filter);
            }
            Response::RoundClosed(stats) => {
                e.put_u8(RESP_ROUND_CLOSED);
                e.put_u64(stats.client_messages);
                e.put_u64(stats.total_noise);
                e.put_u64(stats.final_messages);
            }
            Response::CdnStats(stats) => {
                e.put_u8(RESP_CDN_STATS);
                e.put_u64(stats.bytes_served);
                e.put_u64(stats.downloads);
                e.put_u64(stats.parity_bytes_served);
                e.put_u64(stats.shard_fetches);
            }
            Response::Telemetry(telemetry) => {
                e.put_u8(RESP_TELEMETRY);
                put_telemetry(&mut e, telemetry);
            }
            Response::Error(err) => {
                e.put_u8(RESP_ERROR);
                err.encode_into(&mut e);
            }
        }
        e.finish()
    }

    /// Decodes a response from its wire form. Total: returns a typed error on
    /// any malformed input and never panics.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let tag = d.get_u8("response tag")?;
        let response = match tag {
            RESP_ACK => Response::Ack,
            RESP_PKG_KEYS => Response::PkgKeys(get_point_list(&mut d, MAX_PKG_KEYS, "pkg keys")?),
            RESP_ADD_FRIEND_ROUND => {
                let round = Round(d.get_u64("round")?);
                let num_mailboxes = d.get_u32("num mailboxes")?;
                let onion_len = d.get_u32("onion len")?;
                let rate_limited = get_bool(&mut d, "rate limited flag")?;
                let onion_keys = get_point_list(&mut d, MAX_CHAIN_KEYS, "onion keys")?;
                let pkg_publics = get_point_list(&mut d, MAX_PKG_KEYS, "pkg publics")?;
                Response::AddFriendRoundInfo(AddFriendRoundWire {
                    round,
                    onion_keys,
                    pkg_publics,
                    num_mailboxes,
                    onion_len,
                    rate_limited,
                })
            }
            RESP_DIALING_ROUND => {
                let round = Round(d.get_u64("round")?);
                let num_mailboxes = d.get_u32("num mailboxes")?;
                let onion_len = d.get_u32("onion len")?;
                let rate_limited = get_bool(&mut d, "rate limited flag")?;
                let onion_keys = get_point_list(&mut d, MAX_CHAIN_KEYS, "onion keys")?;
                Response::DialingRoundInfo(DialingRoundWire {
                    round,
                    onion_keys,
                    num_mailboxes,
                    onion_len,
                    rate_limited,
                })
            }
            RESP_IDENTITY_KEYS => {
                let count = d.get_u16("identity key count")? as usize;
                if count > MAX_PKG_KEYS || count * (G2_LEN + SIGNATURE_LEN) > d.remaining() {
                    return Err(WireError::InvalidValue {
                        context: "identity key count",
                    });
                }
                let mut shares = Vec::with_capacity(count);
                for _ in 0..count {
                    shares.push(IdentityKeyShareWire {
                        identity_key: d.get_array("identity key")?,
                        attestation: d.get_array("attestation")?,
                    });
                }
                Response::IdentityKeys(shares)
            }
            RESP_TOKEN_ISSUED => Response::TokenIssued {
                blind_signature: d.get_array("blind signature")?,
            },
            RESP_ADD_FRIEND_MAILBOX => {
                let count = d.get_u32("mailbox entry count")? as usize;
                if count * AddFriendEnvelope::CIPHERTEXT_LEN != d.remaining() {
                    return Err(WireError::InvalidValue {
                        context: "mailbox entry count",
                    });
                }
                let mut contents = Vec::with_capacity(count);
                for _ in 0..count {
                    contents.push(
                        d.get_bytes(AddFriendEnvelope::CIPHERTEXT_LEN, "mailbox ciphertext")?
                            .to_vec(),
                    );
                }
                Response::AddFriendMailbox { contents }
            }
            RESP_DIALING_MAILBOX => Response::DialingMailbox {
                filter: d.get_var_bytes("dialing filter")?.to_vec(),
            },
            RESP_ROUND_CLOSED => Response::RoundClosed(RoundStatsWire {
                client_messages: d.get_u64("client messages")?,
                total_noise: d.get_u64("total noise")?,
                final_messages: d.get_u64("final messages")?,
            }),
            RESP_ERROR => Response::Error(RpcError::decode_from(&mut d)?),
            RESP_CDN_STATS => Response::CdnStats(CdnStatsWire {
                bytes_served: d.get_u64("cdn bytes served")?,
                downloads: d.get_u64("cdn downloads")?,
                parity_bytes_served: d.get_u64("cdn parity bytes served")?,
                shard_fetches: d.get_u64("cdn shard fetches")?,
            }),
            RESP_TELEMETRY => Response::Telemetry(get_telemetry(&mut d)?),
            _ => {
                return Err(WireError::InvalidValue {
                    context: "response tag",
                })
            }
        };
        d.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(s: &str) -> Identity {
        Identity::new(s).unwrap()
    }

    #[test]
    fn request_round_trips() {
        let requests = vec![
            Request::Register {
                identity: identity("alice@example.com"),
                signing_key: [1u8; SIGNING_PK_LEN],
            },
            Request::CompleteRegistration {
                identity: identity("alice@example.com"),
            },
            Request::Deregister {
                identity: identity("bob@x.org"),
                signature: [2u8; SIGNATURE_LEN],
            },
            Request::GetPkgKeys,
            Request::GetAddFriendRoundInfo,
            Request::GetDialingRoundInfo,
            Request::ExtractIdentityKeys {
                identity: identity("alice@example.com"),
                round: Round(7),
                auth: [3u8; SIGNATURE_LEN],
            },
            Request::IssueRateLimitToken {
                identity: identity("alice@example.com"),
                blinded: [4u8; G1_LEN],
                auth: [5u8; SIGNATURE_LEN],
            },
            Request::SubmitAddFriend {
                round: Round(9),
                onion: vec![6u8; 100],
                token: None,
            },
            Request::SubmitDialing {
                round: Round(9),
                onion: vec![7u8; 50],
                token: Some(RateLimitToken {
                    serial: [8u8; RATE_LIMIT_SERIAL_LEN],
                    signature: [9u8; SIGNATURE_LEN],
                }),
            },
            Request::FetchAddFriendMailbox {
                round: Round(3),
                mailbox: MailboxId(5),
            },
            Request::FetchDialingMailbox {
                round: Round(3),
                mailbox: MailboxId::COVER,
            },
            Request::BeginAddFriendRound {
                round: Round(1),
                expected_real: 100,
            },
            Request::CloseAddFriendRound { round: Round(1) },
            Request::BeginDialingRound {
                round: Round(2),
                expected_real: 500,
            },
            Request::CloseDialingRound { round: Round(2) },
        ];
        for request in requests {
            let encoded = request.encode();
            assert_eq!(Request::decode(&encoded).unwrap(), request, "{request:?}");
        }
    }

    #[test]
    fn response_round_trips() {
        let responses = vec![
            Response::Ack,
            Response::PkgKeys(vec![[1u8; SIGNING_PK_LEN]; 3]),
            Response::AddFriendRoundInfo(AddFriendRoundWire {
                round: Round(4),
                onion_keys: vec![[2u8; G1_LEN]; 3],
                pkg_publics: vec![[3u8; G1_LEN]; 3],
                num_mailboxes: 16,
                onion_len: 500,
                rate_limited: true,
            }),
            Response::DialingRoundInfo(DialingRoundWire {
                round: Round(4),
                onion_keys: vec![[2u8; G1_LEN]; 3],
                num_mailboxes: 16,
                onion_len: 228,
                rate_limited: false,
            }),
            Response::IdentityKeys(vec![
                IdentityKeyShareWire {
                    identity_key: [4u8; G2_LEN],
                    attestation: [5u8; SIGNATURE_LEN],
                };
                3
            ]),
            Response::TokenIssued {
                blind_signature: [6u8; G1_LEN],
            },
            Response::AddFriendMailbox {
                contents: vec![vec![7u8; AddFriendEnvelope::CIPHERTEXT_LEN]; 4],
            },
            Response::DialingMailbox {
                filter: vec![8u8; 64],
            },
            Response::RoundClosed(RoundStatsWire {
                client_messages: 10,
                total_noise: 300,
                final_messages: 310,
            }),
            Response::Error(RpcError::RoundNotOpen {
                requested: Round(9),
            }),
            Response::Error(RpcError::NoOpenRound {
                kind: RoundKind::Dialing,
            }),
            Response::Error(RpcError::RoundAlreadyOpen),
            Response::Error(RpcError::WrongRequestSize {
                expected: 500,
                actual: 499,
            }),
            Response::Error(RpcError::UnknownMailbox),
            Response::Error(RpcError::CommitmentMismatch { pkg_index: 2 }),
            Response::Error(RpcError::Pkg {
                code: 3,
                detail: "identity not registered".into(),
            }),
            Response::Error(RpcError::RateLimited {
                reason: RateLimitReason::DoubleSpend,
            }),
            Response::Error(RpcError::BadRequest {
                detail: "malformed point".into(),
            }),
        ];
        for response in responses {
            let encoded = response.encode();
            assert_eq!(
                Response::decode(&encoded).unwrap(),
                response,
                "{response:?}"
            );
        }
    }

    #[test]
    fn detail_strings_are_truncated_on_char_boundaries() {
        let long = "é".repeat(MAX_DETAIL_LEN); // 2 bytes per char
        let response = Response::Error(RpcError::BadRequest { detail: long });
        let decoded = Response::decode(&response.encode()).unwrap();
        let Response::Error(RpcError::BadRequest { detail }) = decoded else {
            panic!("wrong variant");
        };
        assert!(detail.len() <= MAX_DETAIL_LEN);
        assert!(detail.chars().all(|c| c == 'é'));
    }

    #[test]
    fn oversized_point_counts_rejected_without_allocation() {
        // A response claiming 65535 onion keys but carrying none must fail
        // cleanly (count bound + remaining-bytes check).
        let mut e = Encoder::new();
        e.put_u8(RESP_PKG_KEYS);
        e.put_u16(u16::MAX);
        assert!(Response::decode(&e.finish()).is_err());
    }

    #[test]
    fn mailbox_count_must_match_remaining_bytes() {
        let mut e = Encoder::new();
        e.put_u8(RESP_ADD_FRIEND_MAILBOX);
        e.put_u32(1_000_000);
        e.put_bytes(&[0u8; 64]);
        assert!(Response::decode(&e.finish()).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Request::decode(&[0xff]),
            Err(WireError::InvalidValue { .. })
        ));
        assert!(matches!(
            Response::decode(&[0xff]),
            Err(WireError::InvalidValue { .. })
        ));
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = Request::GetPkgKeys.encode();
        encoded.push(0);
        assert!(matches!(
            Request::decode(&encoded),
            Err(WireError::TrailingBytes { .. })
        ));
    }
}
