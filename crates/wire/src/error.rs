//! Error type for wire encoding and decoding.

/// Errors produced while encoding or decoding wire messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the expected field.
    UnexpectedEnd {
        /// Field or context that was being decoded.
        context: &'static str,
    },
    /// A length prefix or enum tag had an invalid value.
    InvalidValue {
        /// Field or context that was being decoded.
        context: &'static str,
    },
    /// An identity string was malformed (empty, too long, not ASCII, or
    /// missing the `@` separator).
    InvalidIdentity(String),
    /// Trailing bytes remained after decoding a complete message.
    TrailingBytes {
        /// Number of unexpected trailing bytes.
        remaining: usize,
    },
    /// The message had a different fixed size than the protocol requires.
    WrongLength {
        /// Expected size in bytes.
        expected: usize,
        /// Actual size in bytes.
        actual: usize,
    },
    /// A frame did not start with the protocol magic bytes.
    BadMagic,
    /// A frame carried a protocol version this implementation does not speak.
    UnsupportedVersion {
        /// The version byte found in the frame header.
        version: u8,
    },
    /// A frame's length prefix exceeded the maximum payload size.
    FrameTooLarge {
        /// The length the frame header claimed.
        claimed: usize,
    },
    /// A frame's checksum did not match its contents (corruption in transit).
    ChecksumMismatch,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::UnexpectedEnd { context } => {
                write!(f, "unexpected end of input while decoding {context}")
            }
            WireError::InvalidValue { context } => write!(f, "invalid value for {context}"),
            WireError::InvalidIdentity(s) => write!(f, "invalid identity {s:?}"),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after message")
            }
            WireError::WrongLength { expected, actual } => {
                write!(f, "wrong message length: expected {expected}, got {actual}")
            }
            WireError::BadMagic => write!(f, "frame does not start with the protocol magic"),
            WireError::UnsupportedVersion { version } => {
                write!(f, "unsupported protocol version {version}")
            }
            WireError::FrameTooLarge { claimed } => {
                write!(
                    f,
                    "frame length prefix {claimed} exceeds the maximum payload size"
                )
            }
            WireError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl std::error::Error for WireError {}
