//! The coordinator ↔ mix-server daemon (`mixd`) RPC protocol.
//!
//! The paper deploys the mixnet as N independent servers chained over the
//! network (§7); the coordinator drives them in sequence each round. This
//! module is that boundary: three requests per (protocol, round) — a
//! begin-round key exchange, the batch hand-off, and an end-round — each
//! carried inside a checksummed [`crate::codec::Frame`], mirroring the
//! client ↔ coordinator API in [`crate::rpc`].
//!
//! Every request names its round explicitly, and a mix server derives all
//! per-round randomness (onion keypair, noise, shuffle) from (seed, round id)
//! alone. Repeating a request for the same round therefore reproduces the
//! byte-identical response, so coordinator-side retries after connection
//! drops or timeouts are safe with no replay cache and no rng rewind.
//!
//! A `process` batch travels in one frame, bounding it by
//! [`crate::codec::MAX_PAYLOAD_LEN`] (16 MiB) — ample for this
//! reproduction's round sizes; a deployment at the paper's scale would
//! stream chunks.

use crate::codec::{Decoder, Encoder};
use crate::constants::G1_LEN;
use crate::error::WireError;
use crate::round::{Round, RoundKind};
use crate::rpc::{get_detail, put_detail};

/// Upper bound on the number of onions in one `process` batch.
pub const MAX_BATCH_ONIONS: usize = 1 << 20;

/// A request from the coordinator to one `mixd` daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixerRequest {
    /// Start a round: the server ratchets its per-round onion keypair and
    /// returns the public half for inclusion in the round announcement.
    BeginRound {
        /// Which protocol's chain this round belongs to.
        protocol: RoundKind,
        /// The round number (replay key for idempotent retries).
        round: Round,
    },
    /// Hand the server the full onion batch for one round. The server peels
    /// its layer, injects noise onions addressed through the remaining
    /// (downstream) servers, drops malformed onions, shuffles, and returns
    /// the permuted batch.
    Process {
        /// Which protocol's chain this round belongs to.
        protocol: RoundKind,
        /// The round number.
        round: Round,
        /// Mailbox count this round (noise onions address a random mailbox).
        num_mailboxes: u32,
        /// Noise distribution location parameter (`mu`), as IEEE-754 bits so
        /// the value survives the wire exactly.
        noise_mu: u64,
        /// Noise distribution scale parameter (`b`), as IEEE-754 bits.
        noise_b: u64,
        /// Onion public keys of the servers *after* this one, in chain
        /// order; noise onions are wrapped for these layers.
        downstream: Vec<[u8; G1_LEN]>,
        /// The onion batch, one entry per message.
        batch: Vec<Vec<u8>>,
    },
    /// Close the round: the server discards its per-round secret.
    EndRound {
        /// Which protocol's chain this round belongs to.
        protocol: RoundKind,
        /// The round number.
        round: Round,
    },
    /// Admin: fetch the daemon's metrics exposition and recent spans
    /// (see `docs/OBSERVABILITY.md`).
    GetTelemetry,
}

/// A response from a `mixd` daemon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MixerResponse {
    /// The round is open; the server's per-round onion public key.
    RoundKey(
        /// Compressed G1 point bytes of the round public key.
        [u8; G1_LEN],
    ),
    /// The processed (peeled + noised + shuffled) batch.
    Processed {
        /// The permuted output batch.
        batch: Vec<Vec<u8>>,
        /// Noise onions this server injected.
        noise_added: u64,
        /// Malformed onions this server dropped.
        dropped: u64,
    },
    /// `EndRound` succeeded.
    Ack,
    /// The daemon's telemetry: metrics exposition text and recent spans.
    Telemetry(crate::rpc::TelemetryWire),
    /// The request failed (wrong round, decode failure, ...). The
    /// coordinator treats this as fatal for the round: mixers cannot be
    /// asked to redo work without desynchronizing their rng streams.
    Error(
        /// Human-readable description.
        String,
    ),
}

const MREQ_BEGIN_ROUND: u8 = 1;
const MREQ_PROCESS: u8 = 2;
const MREQ_END_ROUND: u8 = 3;
const MREQ_GET_TELEMETRY: u8 = 4;

const MRESP_ROUND_KEY: u8 = 1;
const MRESP_PROCESSED: u8 = 2;
const MRESP_ACK: u8 = 3;
const MRESP_ERROR: u8 = 4;
const MRESP_TELEMETRY: u8 = 5;

fn put_protocol(e: &mut Encoder, protocol: RoundKind) {
    e.put_u8(match protocol {
        RoundKind::AddFriend => 0,
        RoundKind::Dialing => 1,
    });
}

fn get_protocol(d: &mut Decoder<'_>) -> Result<RoundKind, WireError> {
    match d.get_u8("mixer protocol")? {
        0 => Ok(RoundKind::AddFriend),
        1 => Ok(RoundKind::Dialing),
        _ => Err(WireError::InvalidValue {
            context: "mixer protocol",
        }),
    }
}

fn put_batch(e: &mut Encoder, batch: &[Vec<u8>]) {
    e.put_u32(batch.len() as u32);
    for onion in batch {
        e.put_var_bytes(onion);
    }
}

fn get_batch(d: &mut Decoder<'_>) -> Result<Vec<Vec<u8>>, WireError> {
    let count = d.get_u32("batch count")? as usize;
    if count > MAX_BATCH_ONIONS || count * 4 > d.remaining() {
        return Err(WireError::InvalidValue {
            context: "batch count",
        });
    }
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        batch.push(d.get_var_bytes("batch onion")?.to_vec());
    }
    Ok(batch)
}

impl MixerRequest {
    /// A stable, lowercase name for this request kind, suitable as a metric
    /// label value.
    pub fn name(&self) -> &'static str {
        match self {
            MixerRequest::BeginRound { .. } => "begin_round",
            MixerRequest::Process { .. } => "process",
            MixerRequest::EndRound { .. } => "end_round",
            MixerRequest::GetTelemetry => "get_telemetry",
        }
    }

    /// The (protocol, round) this request addresses, when it is round-scoped
    /// (everything except `GetTelemetry`). Drives span correlation ids.
    pub fn round_scope(&self) -> Option<(RoundKind, Round)> {
        match self {
            MixerRequest::BeginRound { protocol, round }
            | MixerRequest::Process {
                protocol, round, ..
            }
            | MixerRequest::EndRound { protocol, round } => Some((*protocol, *round)),
            MixerRequest::GetTelemetry => None,
        }
    }

    /// Encodes the request into its wire form (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64);
        match self {
            MixerRequest::BeginRound { protocol, round } => {
                e.put_u8(MREQ_BEGIN_ROUND);
                put_protocol(&mut e, *protocol);
                e.put_u64(round.0);
            }
            MixerRequest::Process {
                protocol,
                round,
                num_mailboxes,
                noise_mu,
                noise_b,
                downstream,
                batch,
            } => {
                e.put_u8(MREQ_PROCESS);
                put_protocol(&mut e, *protocol);
                e.put_u64(round.0);
                e.put_u32(*num_mailboxes);
                e.put_u64(*noise_mu);
                e.put_u64(*noise_b);
                e.put_u16(downstream.len() as u16);
                for key in downstream {
                    e.put_bytes(key);
                }
                put_batch(&mut e, batch);
            }
            MixerRequest::EndRound { protocol, round } => {
                e.put_u8(MREQ_END_ROUND);
                put_protocol(&mut e, *protocol);
                e.put_u64(round.0);
            }
            MixerRequest::GetTelemetry => {
                e.put_u8(MREQ_GET_TELEMETRY);
            }
        }
        e.finish()
    }

    /// Decodes a request from its wire form. Total: typed errors, no panics.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let tag = d.get_u8("mixer request tag")?;
        let request = match tag {
            MREQ_BEGIN_ROUND => MixerRequest::BeginRound {
                protocol: get_protocol(&mut d)?,
                round: Round(d.get_u64("mixer round")?),
            },
            MREQ_PROCESS => {
                let protocol = get_protocol(&mut d)?;
                let round = Round(d.get_u64("mixer round")?);
                let num_mailboxes = d.get_u32("mixer num mailboxes")?;
                let noise_mu = d.get_u64("mixer noise mu")?;
                let noise_b = d.get_u64("mixer noise b")?;
                let count = d.get_u16("downstream count")? as usize;
                if count * G1_LEN > d.remaining() {
                    return Err(WireError::InvalidValue {
                        context: "downstream count",
                    });
                }
                let mut downstream = Vec::with_capacity(count);
                for _ in 0..count {
                    downstream.push(d.get_array::<G1_LEN>("downstream key")?);
                }
                MixerRequest::Process {
                    protocol,
                    round,
                    num_mailboxes,
                    noise_mu,
                    noise_b,
                    downstream,
                    batch: get_batch(&mut d)?,
                }
            }
            MREQ_END_ROUND => MixerRequest::EndRound {
                protocol: get_protocol(&mut d)?,
                round: Round(d.get_u64("mixer round")?),
            },
            MREQ_GET_TELEMETRY => MixerRequest::GetTelemetry,
            _ => {
                return Err(WireError::InvalidValue {
                    context: "mixer request tag",
                })
            }
        };
        d.finish()?;
        Ok(request)
    }
}

impl MixerResponse {
    /// Encodes the response into its wire form (without framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64);
        match self {
            MixerResponse::RoundKey(key) => {
                e.put_u8(MRESP_ROUND_KEY);
                e.put_bytes(key);
            }
            MixerResponse::Processed {
                batch,
                noise_added,
                dropped,
            } => {
                e.put_u8(MRESP_PROCESSED);
                e.put_u64(*noise_added);
                e.put_u64(*dropped);
                put_batch(&mut e, batch);
            }
            MixerResponse::Ack => {
                e.put_u8(MRESP_ACK);
            }
            MixerResponse::Telemetry(telemetry) => {
                e.put_u8(MRESP_TELEMETRY);
                crate::rpc::put_telemetry(&mut e, telemetry);
            }
            MixerResponse::Error(detail) => {
                e.put_u8(MRESP_ERROR);
                put_detail(&mut e, detail);
            }
        }
        e.finish()
    }

    /// Decodes a response from its wire form. Total: typed errors, no panics.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        let mut d = Decoder::new(buf);
        let tag = d.get_u8("mixer response tag")?;
        let response = match tag {
            MRESP_ROUND_KEY => MixerResponse::RoundKey(d.get_array("round key")?),
            MRESP_PROCESSED => {
                let noise_added = d.get_u64("noise added")?;
                let dropped = d.get_u64("dropped")?;
                MixerResponse::Processed {
                    batch: get_batch(&mut d)?,
                    noise_added,
                    dropped,
                }
            }
            MRESP_ACK => MixerResponse::Ack,
            MRESP_ERROR => MixerResponse::Error(get_detail(&mut d, "mixer error detail")?),
            MRESP_TELEMETRY => MixerResponse::Telemetry(crate::rpc::get_telemetry(&mut d)?),
            _ => {
                return Err(WireError::InvalidValue {
                    context: "mixer response tag",
                })
            }
        };
        d.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixer_messages_round_trip() {
        let requests = vec![
            MixerRequest::BeginRound {
                protocol: RoundKind::AddFriend,
                round: Round(7),
            },
            MixerRequest::Process {
                protocol: RoundKind::Dialing,
                round: Round(7),
                num_mailboxes: 16,
                noise_mu: 300.0f64.to_bits(),
                noise_b: 13.8f64.to_bits(),
                downstream: vec![[9u8; G1_LEN]; 2],
                batch: vec![vec![1u8; 40], vec![2u8; 40]],
            },
            MixerRequest::EndRound {
                protocol: RoundKind::AddFriend,
                round: Round(8),
            },
        ];
        for request in requests {
            assert_eq!(
                MixerRequest::decode(&request.encode()).unwrap(),
                request,
                "{request:?}"
            );
        }
        let responses = vec![
            MixerResponse::RoundKey([3u8; G1_LEN]),
            MixerResponse::Processed {
                batch: vec![vec![4u8; 12]; 3],
                noise_added: 310,
                dropped: 2,
            },
            MixerResponse::Ack,
            MixerResponse::Error("round 9 is not open".into()),
        ];
        for response in responses {
            assert_eq!(
                MixerResponse::decode(&response.encode()).unwrap(),
                response,
                "{response:?}"
            );
        }
    }

    #[test]
    fn noise_params_survive_bit_exactly() {
        let mu = core::f64::consts::PI * 100.0;
        let request = MixerRequest::Process {
            protocol: RoundKind::AddFriend,
            round: Round(1),
            num_mailboxes: 1,
            noise_mu: mu.to_bits(),
            noise_b: (mu / 7.0).to_bits(),
            downstream: vec![],
            batch: vec![],
        };
        let MixerRequest::Process {
            noise_mu, noise_b, ..
        } = MixerRequest::decode(&request.encode()).unwrap()
        else {
            panic!("wrong variant");
        };
        assert_eq!(f64::from_bits(noise_mu), mu);
        assert_eq!(f64::from_bits(noise_b), mu / 7.0);
    }

    #[test]
    fn hostile_batch_counts_rejected() {
        let mut e = Encoder::new();
        e.put_u8(MREQ_PROCESS);
        e.put_u8(0);
        e.put_u64(1);
        e.put_u32(1);
        e.put_u64(0);
        e.put_u64(0);
        e.put_u16(0);
        e.put_u32(u32::MAX); // claims 4 billion onions, carries none
        assert!(MixerRequest::decode(&e.finish()).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(MixerRequest::decode(&[0xee]).is_err());
        assert!(MixerResponse::decode(&[0xee]).is_err());
        assert!(MixerRequest::decode(&[]).is_err());
        assert!(MixerResponse::decode(&[]).is_err());
    }
}
