//! Onion envelopes carried through the mixnet.
//!
//! Algorithm 1 step 3 of the paper: a client wraps its request in one layer
//! of encryption per mixnet server, in reverse order, so that the first
//! server peels the outermost layer. Each layer consists of the client's
//! ephemeral Diffie-Hellman public key for that hop plus an AEAD ciphertext
//! of the next layer.
//!
//! This module only defines the *format*; the key exchange and sealing live
//! in the `alpenhorn-mixnet` crate (which knows about the server keys).

use crate::codec::{Decoder, Encoder};
use crate::constants::{DH_PK_LEN, ONION_LAYER_OVERHEAD};
use crate::error::WireError;

/// One onion layer: the sender's ephemeral public key for this hop and the
/// AEAD-sealed payload (which is either the next layer or the innermost
/// request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnionEnvelope {
    /// Ephemeral Diffie-Hellman public key (compressed G1).
    pub ephemeral_pk: [u8; DH_PK_LEN],
    /// AEAD ciphertext (payload plus tag).
    pub sealed: Vec<u8>,
}

impl OnionEnvelope {
    /// Encodes the envelope: ephemeral key followed by the sealed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(DH_PK_LEN + self.sealed.len());
        e.put_bytes(&self.ephemeral_pk);
        e.put_bytes(&self.sealed);
        e.finish()
    }

    /// Decodes an envelope. The sealed payload is everything after the
    /// ephemeral key (onion sizes are fixed per round and per hop, so no
    /// explicit length is needed).
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() < DH_PK_LEN {
            return Err(WireError::UnexpectedEnd {
                context: "onion ephemeral key",
            });
        }
        let mut d = Decoder::new(buf);
        let ephemeral_pk = d.get_array("onion ephemeral key")?;
        let sealed = d.get_bytes(buf.len() - DH_PK_LEN, "onion payload")?.to_vec();
        d.finish()?;
        Ok(OnionEnvelope {
            ephemeral_pk,
            sealed,
        })
    }

    /// The total wire size of an onion with `hops` layers wrapped around a
    /// payload of `payload_len` bytes.
    ///
    /// Each layer adds an ephemeral key and an AEAD tag. This function drives
    /// the bandwidth model for client upload costs.
    pub fn onion_len(payload_len: usize, hops: usize) -> usize {
        payload_len + hops * ONION_LAYER_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let env = OnionEnvelope {
            ephemeral_pk: [7u8; DH_PK_LEN],
            sealed: vec![1, 2, 3, 4, 5],
        };
        let buf = env.encode();
        assert_eq!(buf.len(), DH_PK_LEN + 5);
        assert_eq!(OnionEnvelope::decode(&buf).unwrap(), env);
    }

    #[test]
    fn empty_payload() {
        let env = OnionEnvelope {
            ephemeral_pk: [0u8; DH_PK_LEN],
            sealed: vec![],
        };
        assert_eq!(OnionEnvelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn too_short_rejected() {
        assert!(OnionEnvelope::decode(&[0u8; DH_PK_LEN - 1]).is_err());
    }

    #[test]
    fn onion_len_grows_linearly_with_hops() {
        let base = 100;
        assert_eq!(OnionEnvelope::onion_len(base, 0), base);
        let three = OnionEnvelope::onion_len(base, 3);
        let five = OnionEnvelope::onion_len(base, 5);
        assert_eq!(five - three, 2 * ONION_LAYER_OVERHEAD);
    }
}
