//! Onion envelopes carried through the mixnet.
//!
//! Algorithm 1 step 3 of the paper: a client wraps its request in one layer
//! of encryption per mixnet server, in reverse order, so that the first
//! server peels the outermost layer. Each layer consists of the client's
//! ephemeral Diffie-Hellman public key for that hop plus an AEAD ciphertext
//! of the next layer.
//!
//! This module only defines the *format*; the key exchange and sealing live
//! in the `alpenhorn-mixnet` crate (which knows about the server keys).

use crate::codec::Encoder;
use crate::constants::{DH_PK_LEN, ONION_LAYER_OVERHEAD};
use crate::error::WireError;

/// One onion layer: the sender's ephemeral public key for this hop and the
/// AEAD-sealed payload (which is either the next layer or the innermost
/// request).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnionEnvelope {
    /// Ephemeral Diffie-Hellman public key (compressed G1).
    pub ephemeral_pk: [u8; DH_PK_LEN],
    /// AEAD ciphertext (payload plus tag).
    pub sealed: Vec<u8>,
}

/// A borrowed view of one onion layer: the same wire layout as
/// [`OnionEnvelope`], parsed without copying either component.
///
/// This is the zero-copy way to inspect a layer — [`OnionEnvelope::decode`]
/// is a thin copying wrapper over it, and entry-facing code can use it to
/// look at a submission without cloning the ciphertext. (The mixnet peel
/// loop itself decrypts in place inside the buffer, so it splits the borrow
/// mutably rather than going through this read-only view.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnionEnvelopeRef<'a> {
    /// Ephemeral Diffie-Hellman public key (compressed G1).
    pub ephemeral_pk: &'a [u8; DH_PK_LEN],
    /// AEAD ciphertext (payload plus tag), borrowed from the input buffer.
    pub sealed: &'a [u8],
}

impl<'a> OnionEnvelopeRef<'a> {
    /// Parses an envelope without allocating; the returned components borrow
    /// from `buf`.
    pub fn parse(buf: &'a [u8]) -> Result<Self, WireError> {
        if buf.len() < DH_PK_LEN {
            return Err(WireError::UnexpectedEnd {
                context: "onion ephemeral key",
            });
        }
        let (pk, sealed) = buf.split_at(DH_PK_LEN);
        Ok(OnionEnvelopeRef {
            ephemeral_pk: pk.try_into().expect("split at DH_PK_LEN"),
            sealed,
        })
    }

    /// Copies the borrowed view into an owned [`OnionEnvelope`].
    pub fn to_owned(&self) -> OnionEnvelope {
        OnionEnvelope {
            ephemeral_pk: *self.ephemeral_pk,
            sealed: self.sealed.to_vec(),
        }
    }
}

impl OnionEnvelope {
    /// Encodes the envelope: ephemeral key followed by the sealed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(DH_PK_LEN + self.sealed.len());
        e.put_bytes(&self.ephemeral_pk);
        e.put_bytes(&self.sealed);
        e.finish()
    }

    /// Decodes an envelope. The sealed payload is everything after the
    /// ephemeral key (onion sizes are fixed per round and per hop, so no
    /// explicit length is needed).
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        Ok(OnionEnvelopeRef::parse(buf)?.to_owned())
    }

    /// The total wire size of an onion with `hops` layers wrapped around a
    /// payload of `payload_len` bytes.
    ///
    /// Each layer adds an ephemeral key and an AEAD tag. This function drives
    /// the bandwidth model for client upload costs.
    pub fn onion_len(payload_len: usize, hops: usize) -> usize {
        payload_len + hops * ONION_LAYER_OVERHEAD
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let env = OnionEnvelope {
            ephemeral_pk: [7u8; DH_PK_LEN],
            sealed: vec![1, 2, 3, 4, 5],
        };
        let buf = env.encode();
        assert_eq!(buf.len(), DH_PK_LEN + 5);
        assert_eq!(OnionEnvelope::decode(&buf).unwrap(), env);
    }

    #[test]
    fn empty_payload() {
        let env = OnionEnvelope {
            ephemeral_pk: [0u8; DH_PK_LEN],
            sealed: vec![],
        };
        assert_eq!(OnionEnvelope::decode(&env.encode()).unwrap(), env);
    }

    #[test]
    fn too_short_rejected() {
        assert!(OnionEnvelope::decode(&[0u8; DH_PK_LEN - 1]).is_err());
        assert!(OnionEnvelopeRef::parse(&[0u8; DH_PK_LEN - 1]).is_err());
    }

    #[test]
    fn borrowed_parse_matches_owned_decode() {
        let env = OnionEnvelope {
            ephemeral_pk: [3u8; DH_PK_LEN],
            sealed: vec![9, 8, 7],
        };
        let buf = env.encode();
        let parsed = OnionEnvelopeRef::parse(&buf).unwrap();
        assert_eq!(parsed.ephemeral_pk, &env.ephemeral_pk);
        assert_eq!(parsed.sealed, &env.sealed[..]);
        assert_eq!(parsed.to_owned(), env);
    }

    #[test]
    fn onion_len_grows_linearly_with_hops() {
        let base = 100;
        assert_eq!(OnionEnvelope::onion_len(base, 0), base);
        let three = OnionEnvelope::onion_len(base, 3);
        let five = OnionEnvelope::onion_len(base, 5);
        assert_eq!(five - three, 2 * ONION_LAYER_OVERHEAD);
    }
}
