//! A small fixed-layout binary codec and the RPC frame format.
//!
//! Alpenhorn messages must be fixed-size (cover traffic has to be
//! indistinguishable from real traffic), so the codec favours explicit
//! fixed-width fields; variable-length data is always carried with an
//! explicit length prefix inside a fixed-size padded field.
//!
//! [`Frame`] is the outermost envelope of the client ↔ coordinator RPC
//! protocol (see [`crate::rpc`]): a magic-tagged, versioned, length-prefixed,
//! checksummed wrapper that lets the receiving side reject malformed,
//! mis-versioned, or corrupted traffic at the boundary before any message
//! decoding runs.

use std::io::{Read, Write};

use crate::error::WireError;

/// Append-only encoder producing a byte vector.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends raw bytes with no length prefix (fixed-size field).
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends variable-length bytes with a `u32` length prefix.
    pub fn put_var_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.put_bytes(v)
    }

    /// Appends `v` into a field of exactly `width` bytes: one length byte,
    /// the data, and zero padding. Panics if `v.len() >= width`.
    pub fn put_padded(&mut self, v: &[u8], width: usize) -> &mut Self {
        assert!(
            v.len() < width,
            "padded field overflow: {} bytes into width {width}",
            v.len()
        );
        self.put_u8(v.len() as u8);
        self.put_bytes(v);
        for _ in 0..(width - 1 - v.len()) {
            self.buf.push(0);
        }
        self
    }

    /// Returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length of the encoded buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor-based decoder over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::UnexpectedEnd { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, context)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, context)
    }

    /// Reads a fixed-size array.
    pub fn get_array<const N: usize>(
        &mut self,
        context: &'static str,
    ) -> Result<[u8; N], WireError> {
        let b = self.take(N, context)?;
        let mut out = [0u8; N];
        out.copy_from_slice(b);
        Ok(out)
    }

    /// Reads variable-length bytes written by [`Encoder::put_var_bytes`].
    pub fn get_var_bytes(&mut self, context: &'static str) -> Result<&'a [u8], WireError> {
        let len = self.get_u32(context)? as usize;
        self.take(len, context)
    }

    /// Reads a padded field written by [`Encoder::put_padded`].
    pub fn get_padded(
        &mut self,
        width: usize,
        context: &'static str,
    ) -> Result<&'a [u8], WireError> {
        let len = self.get_u8(context)? as usize;
        if len >= width {
            return Err(WireError::InvalidValue { context });
        }
        let field = self.take(width - 1, context)?;
        Ok(&field[..len])
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns an error if any input remains.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Errors from reading a frame off a byte stream: either the underlying I/O
/// failed or the frame itself was malformed.
#[derive(Debug)]
pub enum FrameIoError {
    /// The underlying reader or writer failed.
    Io(std::io::Error),
    /// The frame was structurally invalid (bad magic, version, length, or
    /// checksum).
    Wire(WireError),
}

impl core::fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameIoError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameIoError::Wire(e) => write!(f, "frame decode error: {e}"),
        }
    }
}

impl std::error::Error for FrameIoError {}

impl From<std::io::Error> for FrameIoError {
    fn from(e: std::io::Error) -> Self {
        FrameIoError::Io(e)
    }
}

impl From<WireError> for FrameIoError {
    fn from(e: WireError) -> Self {
        FrameIoError::Wire(e)
    }
}

/// The length-prefixed, versioned, checksummed RPC frame.
///
/// Layout (all integers big-endian):
///
/// ```text
/// v3: +-------+---------+-----------+----------------+------------+
///     | magic | version |  length   |    payload     |  checksum  |
///     | 2 B   | 1 B     | 4 B (u32) | `length` bytes | 4 B        |
///     +-------+---------+-----------+----------------+------------+
/// v4: +-------+---------+-----------+-------------+----------------+------------+
///     | magic | version |  length   | correlation |    payload     |  checksum  |
///     | 2 B   | 1 B     | 4 B (u32) | 8 B (u64)   | `length` bytes | 4 B        |
///     +-------+---------+-----------+-------------+----------------+------------+
/// ```
///
/// The checksum is the first four bytes of SHA-256 over everything before it
/// (header, telemetry block if present, payload), so truncation, bit flips,
/// and length corruption are all caught.
///
/// Versioning rule: any change to the frame layout or to the encoding of the
/// RPC messages inside it bumps [`Frame::VERSION`]. v4 introduced the first
/// *optional* extension: a telemetry block carrying the round correlation id
/// (`alpenhorn_obs::correlation_id`) so spans in different processes can be
/// stitched into one trace. Frames without telemetry are still emitted as
/// byte-identical v3, and receivers accept both v3 and v4 — a PR 9-era peer
/// that never sends the block interoperates unchanged. Anything outside
/// `[PLAIN_VERSION, VERSION]` is rejected with
/// [`WireError::UnsupportedVersion`].
pub struct Frame;

impl Frame {
    /// Magic bytes every frame starts with ("AH" for Alpenhorn).
    pub const MAGIC: [u8; 2] = *b"AH";
    /// The newest protocol version this implementation speaks. History:
    /// v1 = the PR 4 RPC surface; v2 added
    /// [`crate::rpc::RpcError::Unavailable`] (typed transient server faults,
    /// PR 5); v3 added the `retry_after_ms` backoff hint to `Unavailable`
    /// (overload shedding, PR 6); v4 added the optional telemetry block
    /// (round correlation id, PR 10).
    pub const VERSION: u8 = 4;
    /// The telemetry-free frame version. [`Frame::encode`] still emits it,
    /// byte-identical to a PR 9 peer's frames.
    pub const PLAIN_VERSION: u8 = 3;
    /// Header length: magic + version + length prefix.
    pub const HEADER_LEN: usize = 2 + 1 + 4;
    /// Length of the v4 telemetry block (the correlation id).
    pub const TELEMETRY_LEN: usize = 8;
    /// Trailing checksum length.
    pub const CHECKSUM_LEN: usize = 4;
    /// Maximum payload size a frame may carry (16 MiB). A length prefix
    /// beyond this is rejected before any allocation happens, so a hostile
    /// peer cannot make the receiver reserve unbounded memory.
    pub const MAX_PAYLOAD_LEN: usize = 1 << 24;

    fn checksum_parts(parts: &[&[u8]]) -> [u8; Self::CHECKSUM_LEN] {
        let mut hasher = alpenhorn_crypto::sha256::Sha256::new();
        for part in parts {
            hasher.update(part);
        }
        let digest = hasher.finalize();
        let mut out = [0u8; Self::CHECKSUM_LEN];
        out.copy_from_slice(&digest[..Self::CHECKSUM_LEN]);
        out
    }

    fn header(version: u8, payload_len: usize) -> [u8; Self::HEADER_LEN] {
        let mut header = [0u8; Self::HEADER_LEN];
        header[..2].copy_from_slice(&Self::MAGIC);
        header[2] = version;
        header[3..].copy_from_slice(&(payload_len as u32).to_be_bytes());
        header
    }

    fn encode_inner(payload: &[u8], telemetry: Option<u64>) -> Vec<u8> {
        assert!(
            payload.len() <= Self::MAX_PAYLOAD_LEN,
            "frame payload of {} bytes exceeds the maximum",
            payload.len()
        );
        let version = if telemetry.is_some() {
            Self::VERSION
        } else {
            Self::PLAIN_VERSION
        };
        let header = Self::header(version, payload.len());
        let mut out = Vec::with_capacity(
            Self::HEADER_LEN + Self::TELEMETRY_LEN + payload.len() + Self::CHECKSUM_LEN,
        );
        out.extend_from_slice(&header);
        if let Some(correlation) = telemetry {
            out.extend_from_slice(&correlation.to_be_bytes());
        }
        out.extend_from_slice(payload);
        let checksum = Self::checksum_parts(&[&out]);
        out.extend_from_slice(&checksum);
        out
    }

    /// Wraps `payload` in a complete telemetry-free frame — byte-identical
    /// to what a v3 (PR 9) implementation emits.
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`Frame::MAX_PAYLOAD_LEN`]; no RPC
    /// message comes close (mailbox responses are the largest and are bounded
    /// by the round's mailbox size).
    pub fn encode(payload: &[u8]) -> Vec<u8> {
        Self::encode_inner(payload, None)
    }

    /// Wraps `payload` in a v4 frame carrying `correlation` in the telemetry
    /// block. Same panic condition as [`Frame::encode`].
    pub fn encode_with_telemetry(payload: &[u8], correlation: u64) -> Vec<u8> {
        Self::encode_inner(payload, Some(correlation))
    }

    /// Decodes one complete frame from `buf`, returning the payload and the
    /// correlation id when the sender attached one (v4 frames only).
    ///
    /// The whole buffer must be exactly one frame; malformed input (wrong
    /// magic, unsupported version, oversized or lying length prefix,
    /// truncation, checksum mismatch) is rejected with a typed error and
    /// never panics.
    pub fn decode_with_telemetry(buf: &[u8]) -> Result<(&[u8], Option<u64>), WireError> {
        if buf.len() < Self::HEADER_LEN + Self::CHECKSUM_LEN {
            return Err(WireError::UnexpectedEnd {
                context: "frame header",
            });
        }
        if buf[..2] != Self::MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = buf[2];
        if version != Self::PLAIN_VERSION && version != Self::VERSION {
            return Err(WireError::UnsupportedVersion { version });
        }
        let telemetry_len = if version == Self::VERSION {
            Self::TELEMETRY_LEN
        } else {
            0
        };
        let claimed = u32::from_be_bytes([buf[3], buf[4], buf[5], buf[6]]) as usize;
        if claimed > Self::MAX_PAYLOAD_LEN {
            return Err(WireError::FrameTooLarge { claimed });
        }
        let total = Self::HEADER_LEN + telemetry_len + claimed + Self::CHECKSUM_LEN;
        if buf.len() < total {
            return Err(WireError::UnexpectedEnd {
                context: "frame payload",
            });
        }
        if buf.len() > total {
            return Err(WireError::TrailingBytes {
                remaining: buf.len() - total,
            });
        }
        let body_end = total - Self::CHECKSUM_LEN;
        let expected = Self::checksum_parts(&[&buf[..body_end]]);
        if buf[body_end..] != expected {
            return Err(WireError::ChecksumMismatch);
        }
        let payload_start = Self::HEADER_LEN + telemetry_len;
        let telemetry = (telemetry_len > 0).then(|| {
            u64::from_be_bytes(
                buf[Self::HEADER_LEN..payload_start]
                    .try_into()
                    .expect("telemetry block is 8 bytes"),
            )
        });
        Ok((&buf[payload_start..body_end], telemetry))
    }

    /// Decodes one complete frame from `buf`, returning the payload and
    /// discarding any telemetry block.
    pub fn decode(buf: &[u8]) -> Result<&[u8], WireError> {
        Self::decode_with_telemetry(buf).map(|(payload, _)| payload)
    }

    /// Writes `payload` as one telemetry-free frame to `writer` and flushes.
    pub fn write_to(writer: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
        writer.write_all(&Frame::encode(payload))?;
        writer.flush()
    }

    /// Writes `payload` as one frame to `writer` and flushes, attaching the
    /// telemetry block when `correlation` is `Some`.
    pub fn write_to_with_telemetry(
        writer: &mut impl Write,
        payload: &[u8],
        correlation: Option<u64>,
    ) -> std::io::Result<()> {
        writer.write_all(&Frame::encode_inner(payload, correlation))?;
        writer.flush()
    }

    /// Reads one complete frame from `reader`, returning the payload and the
    /// sender's correlation id if one was attached.
    ///
    /// Validates magic, version, length bound, and checksum before returning;
    /// the oversized-length check runs before the payload allocation.
    pub fn read_from_with_telemetry(
        reader: &mut impl Read,
    ) -> Result<(Vec<u8>, Option<u64>), FrameIoError> {
        let mut header = [0u8; Self::HEADER_LEN];
        reader.read_exact(&mut header)?;
        if header[..2] != Self::MAGIC {
            return Err(WireError::BadMagic.into());
        }
        let version = header[2];
        if version != Self::PLAIN_VERSION && version != Self::VERSION {
            return Err(WireError::UnsupportedVersion { version }.into());
        }
        let mut telemetry = None;
        let mut telemetry_bytes = [0u8; Self::TELEMETRY_LEN];
        if version == Self::VERSION {
            reader.read_exact(&mut telemetry_bytes)?;
            telemetry = Some(u64::from_be_bytes(telemetry_bytes));
        }
        let claimed = u32::from_be_bytes([header[3], header[4], header[5], header[6]]) as usize;
        if claimed > Self::MAX_PAYLOAD_LEN {
            return Err(WireError::FrameTooLarge { claimed }.into());
        }
        let mut payload = vec![0u8; claimed];
        reader.read_exact(&mut payload)?;
        let mut checksum = [0u8; Self::CHECKSUM_LEN];
        reader.read_exact(&mut checksum)?;
        let expected = if telemetry.is_some() {
            Self::checksum_parts(&[&header, &telemetry_bytes, &payload])
        } else {
            Self::checksum_parts(&[&header, &payload])
        };
        if checksum != expected {
            return Err(WireError::ChecksumMismatch.into());
        }
        Ok((payload, telemetry))
    }

    /// Reads one complete frame from `reader`, returning the payload and
    /// discarding any telemetry block.
    pub fn read_from(reader: &mut impl Read) -> Result<Vec<u8>, FrameIoError> {
        Self::read_from_with_telemetry(reader).map(|(payload, _)| payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut e = Encoder::new();
        e.put_u8(7).put_u16(300).put_u32(70_000).put_u64(1 << 40);
        let buf = e.finish();
        assert_eq!(buf.len(), 1 + 2 + 4 + 8);
        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_u8("a").unwrap(), 7);
        assert_eq!(d.get_u16("b").unwrap(), 300);
        assert_eq!(d.get_u32("c").unwrap(), 70_000);
        assert_eq!(d.get_u64("d").unwrap(), 1 << 40);
        d.finish().unwrap();
    }

    #[test]
    fn var_bytes_round_trip() {
        let mut e = Encoder::new();
        e.put_var_bytes(b"hello");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_var_bytes("v").unwrap(), b"hello");
    }

    #[test]
    fn padded_field_is_fixed_width() {
        let mut e = Encoder::new();
        e.put_padded(b"alice@example.org", 64);
        let buf = e.finish();
        assert_eq!(buf.len(), 64);
        let mut d = Decoder::new(&buf);
        assert_eq!(d.get_padded(64, "email").unwrap(), b"alice@example.org");
        d.finish().unwrap();
    }

    #[test]
    fn padded_field_same_size_regardless_of_content() {
        let mut short = Encoder::new();
        short.put_padded(b"a@b", 64);
        let mut long = Encoder::new();
        long.put_padded(b"someone.with.a.long.name@example.com", 64);
        assert_eq!(short.finish().len(), long.finish().len());
    }

    #[test]
    #[should_panic(expected = "padded field overflow")]
    fn padded_field_overflow_panics() {
        let mut e = Encoder::new();
        e.put_padded(&[0u8; 64], 64);
    }

    #[test]
    fn decoder_detects_truncation() {
        let buf = [1u8, 2];
        let mut d = Decoder::new(&buf);
        assert!(matches!(
            d.get_u32("field"),
            Err(WireError::UnexpectedEnd { context: "field" })
        ));
    }

    #[test]
    fn decoder_detects_trailing_bytes() {
        let buf = [1u8, 2, 3];
        let mut d = Decoder::new(&buf);
        d.get_u8("x").unwrap();
        assert_eq!(d.finish(), Err(WireError::TrailingBytes { remaining: 2 }));
    }

    #[test]
    fn get_array_round_trip() {
        let mut e = Encoder::new();
        e.put_bytes(&[9u8; 32]);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let arr: [u8; 32] = d.get_array("key").unwrap();
        assert_eq!(arr, [9u8; 32]);
    }

    #[test]
    fn plain_frames_are_byte_identical_to_v3() {
        // Reconstruct the PR 9 frame layout by hand: a current encoder with
        // no telemetry must produce exactly these bytes.
        let payload = b"hello alpenhorn";
        let mut v3 = Vec::new();
        v3.extend_from_slice(&Frame::MAGIC);
        v3.push(3);
        v3.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        v3.extend_from_slice(payload);
        let mut hasher = alpenhorn_crypto::sha256::Sha256::new();
        hasher.update(&v3);
        v3.extend_from_slice(&hasher.finalize()[..Frame::CHECKSUM_LEN]);
        assert_eq!(Frame::encode(payload), v3);
        assert_eq!(Frame::decode(&v3).unwrap(), payload);
    }

    #[test]
    fn telemetry_frames_round_trip() {
        let payload = b"round work";
        let framed = Frame::encode_with_telemetry(payload, 0xABCD_1234);
        assert_eq!(framed[2], Frame::VERSION);
        let (got, telemetry) = Frame::decode_with_telemetry(&framed).unwrap();
        assert_eq!(got, payload);
        assert_eq!(telemetry, Some(0xABCD_1234));
        // The plain decoder accepts the frame and discards the block.
        assert_eq!(Frame::decode(&framed).unwrap(), payload);
        // And the plain frame reports no telemetry.
        let plain = Frame::encode(payload);
        assert_eq!(
            Frame::decode_with_telemetry(&plain).unwrap(),
            (&payload[..], None)
        );
    }

    #[test]
    fn telemetry_frames_round_trip_through_streams() {
        let mut wire = Vec::new();
        Frame::write_to_with_telemetry(&mut wire, b"with", Some(7)).unwrap();
        Frame::write_to_with_telemetry(&mut wire, b"without", None).unwrap();
        let mut reader = &wire[..];
        assert_eq!(
            Frame::read_from_with_telemetry(&mut reader).unwrap(),
            (b"with".to_vec(), Some(7))
        );
        // A telemetry-unaware reader still gets the payload.
        assert_eq!(Frame::read_from(&mut reader).unwrap(), b"without".to_vec());
    }

    #[test]
    fn corrupted_telemetry_block_fails_the_checksum() {
        let mut framed = Frame::encode_with_telemetry(b"payload", 99);
        framed[Frame::HEADER_LEN] ^= 0x01; // flip a correlation-id bit
        assert_eq!(
            Frame::decode_with_telemetry(&framed),
            Err(WireError::ChecksumMismatch)
        );
    }

    #[test]
    fn padded_rejects_corrupt_length() {
        let mut buf = vec![0u8; 64];
        buf[0] = 64; // length byte >= width
        let mut d = Decoder::new(&buf);
        assert!(matches!(
            d.get_padded(64, "email"),
            Err(WireError::InvalidValue { .. })
        ));
    }
}
