//! Protocol-wide size constants.
//!
//! These sizes define the fixed wire layout of requests. They are chosen to
//! match the cryptographic primitives used by this reproduction (BLS12-381
//! points for keys and signatures, ChaCha20-Poly1305 for the AEAD). The
//! paper's prototype used the BN-256 curve, so absolute sizes differ slightly
//! (the paper's add-friend request is 308 bytes; ours is
//! [`ADD_FRIEND_REQUEST_LEN`]); EXPERIMENTS.md reports both.

/// Maximum length of an identity (email address) on the wire, including the
/// one-byte length prefix of the padded field.
pub const IDENTITY_FIELD_LEN: usize = 64;

/// Maximum number of characters in an identity string.
pub const MAX_IDENTITY_LEN: usize = IDENTITY_FIELD_LEN - 1;

/// Compressed BLS12-381 G1 point length (DH keys, signatures, IBE ephemeral keys).
pub const G1_LEN: usize = 48;

/// Compressed BLS12-381 G2 point length (long-term signing public keys, IBE
/// identity keys).
pub const G2_LEN: usize = 96;

/// Long-term signing public key length (BLS public key in G2).
pub const SIGNING_PK_LEN: usize = G2_LEN;

/// Signature length (BLS signature in G1).
pub const SIGNATURE_LEN: usize = G1_LEN;

/// Aggregated PKG multi-signature length (same as a single BLS signature).
pub const MULTISIG_LEN: usize = G1_LEN;

/// Ephemeral Diffie-Hellman public key length (G1).
pub const DH_PK_LEN: usize = G1_LEN;

/// IBE ciphertext ephemeral component length (G1).
pub const IBE_EPHEMERAL_LEN: usize = G1_LEN;

/// AEAD tag length.
pub const AEAD_TAG_LEN: usize = 16;

/// AEAD nonce length.
pub const AEAD_NONCE_LEN: usize = 12;

/// Dial token length (256-bit pseudorandom value, §5).
pub const DIAL_TOKEN_LEN: usize = 32;

/// Session key length returned by `Call` (§3).
pub const SESSION_KEY_LEN: usize = 32;

/// Length of the plaintext `FriendRequest` body (Figure 3) on the wire:
/// identity field + signing key + sender signature + PKG multi-signature +
/// DH key + dialing round.
pub const FRIEND_REQUEST_LEN: usize =
    IDENTITY_FIELD_LEN + SIGNING_PK_LEN + SIGNATURE_LEN + MULTISIG_LEN + DH_PK_LEN + 8;

/// Length of an IBE-encrypted friend request: ephemeral G1 point plus the
/// AEAD-sealed body.
pub const IBE_CIPHERTEXT_LEN: usize = IBE_EPHEMERAL_LEN + FRIEND_REQUEST_LEN + AEAD_TAG_LEN;

/// Length of a complete add-friend request as submitted to the mixnet
/// (mailbox ID in plaintext plus the IBE ciphertext). This is the per-request
/// unit of mailbox bandwidth in Figure 6.
pub const ADD_FRIEND_REQUEST_LEN: usize = 4 + IBE_CIPHERTEXT_LEN;

/// Length of a dialing request as submitted to the mixnet (mailbox ID plus
/// dial token). Dialing mailboxes are encoded as Bloom filters, so this size
/// only affects upstream bandwidth.
pub const DIAL_REQUEST_LEN: usize = 4 + DIAL_TOKEN_LEN;

/// Bloom filter bits per dial token (§5.2 of the paper: 48 bits per element
/// gives a false-positive rate around 1e-10).
pub const BLOOM_BITS_PER_ELEMENT: usize = 48;

/// Per-hop overhead added by one onion layer: ephemeral DH public key plus
/// the AEAD tag.
pub const ONION_LAYER_OVERHEAD: usize = DH_PK_LEN + AEAD_TAG_LEN;

/// The paper's measured add-friend request size in bytes (for reporting
/// alongside ours in the evaluation harness).
pub const PAPER_ADD_FRIEND_REQUEST_LEN: usize = 308;

/// The paper's IBE ciphertext component size in bytes (§8.6).
pub const PAPER_IBE_CIPHERTEXT_LEN: usize = 64;

// Size-relationship invariants, checked at compile time.
//
// Our BLS12-381-based add-friend layout is somewhat larger than the paper's
// BN-256 layout but within the same order of magnitude (< 2x), and the
// dialing protocol's efficiency claim (§5) rests on dial requests being much
// smaller than add-friend requests.
const _: () = {
    assert!(FRIEND_REQUEST_LEN == 64 + 96 + 48 + 48 + 48 + 8);
    assert!(ADD_FRIEND_REQUEST_LEN < 2 * PAPER_ADD_FRIEND_REQUEST_LEN);
    assert!(ADD_FRIEND_REQUEST_LEN > PAPER_ADD_FRIEND_REQUEST_LEN / 2);
    assert!(DIAL_REQUEST_LEN * 5 < ADD_FRIEND_REQUEST_LEN);
};
