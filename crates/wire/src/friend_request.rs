//! The friend request structure (Figure 3 of the paper) and its envelope.
//!
//! A [`FriendRequest`] is the plaintext that one user IBE-encrypts to another
//! during the add-friend protocol: the sender's identity, long-term signing
//! key, a signature by that key, the PKGs' multi-signature attesting that the
//! key belongs to the identity, and an ephemeral Diffie-Hellman key plus the
//! dialing round at which the resulting keywheel starts.
//!
//! An [`AddFriendEnvelope`] is what actually enters the mixnet: the
//! recipient's mailbox ID in plaintext plus the fixed-size IBE ciphertext
//! (or all zeros for cover traffic).

use crate::codec::{Decoder, Encoder};
use crate::constants::{
    ADD_FRIEND_REQUEST_LEN, DH_PK_LEN, FRIEND_REQUEST_LEN, IBE_CIPHERTEXT_LEN, IDENTITY_FIELD_LEN,
    MULTISIG_LEN, SIGNATURE_LEN, SIGNING_PK_LEN,
};
use crate::error::WireError;
use crate::identity::Identity;
use crate::mailbox::MailboxId;
use crate::round::Round;

/// The plaintext body of an add-friend request (Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FriendRequest {
    /// The sender's email address.
    pub sender: Identity,
    /// The sender's long-term signing public key (BLS, G2).
    pub sender_key: [u8; SIGNING_PK_LEN],
    /// Signature by `sender_key` over `(sender, dialing_key, dialing_round)`.
    pub sender_sig: [u8; SIGNATURE_LEN],
    /// Aggregated multi-signature by the PKGs over `(sender, sender_key, round)`,
    /// attesting that `sender_key` is the registered key for `sender`.
    pub pkg_sigs: [u8; MULTISIG_LEN],
    /// The add-friend round in which the PKG signatures were issued.
    pub pkg_round: Round,
    /// Ephemeral Diffie-Hellman public key (G1) for the keywheel shared secret.
    pub dialing_key: [u8; DH_PK_LEN],
    /// The dialing round at which the new keywheel starts.
    pub dialing_round: Round,
}

impl FriendRequest {
    /// Encodes the request body into its fixed wire form.
    ///
    /// The identity is carried in a padded fixed-width field so that every
    /// friend request has exactly the same length regardless of the email
    /// address.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(FRIEND_REQUEST_LEN + 8);
        e.put_padded(self.sender.as_bytes(), IDENTITY_FIELD_LEN);
        e.put_bytes(&self.sender_key);
        e.put_bytes(&self.sender_sig);
        e.put_bytes(&self.pkg_sigs);
        e.put_u64(self.pkg_round.0);
        e.put_bytes(&self.dialing_key);
        e.put_u64(self.dialing_round.0);
        e.finish()
    }

    /// Wire length of an encoded friend request body.
    pub const ENCODED_LEN: usize = FRIEND_REQUEST_LEN + 8;

    /// Decodes a request body.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() != Self::ENCODED_LEN {
            return Err(WireError::WrongLength {
                expected: Self::ENCODED_LEN,
                actual: buf.len(),
            });
        }
        let mut d = Decoder::new(buf);
        let raw_id = d.get_padded(IDENTITY_FIELD_LEN, "sender identity")?;
        let sender = Identity::new(
            core::str::from_utf8(raw_id)
                .map_err(|_| WireError::InvalidIdentity("<non-utf8>".into()))?,
        )?;
        let sender_key = d.get_array("sender key")?;
        let sender_sig = d.get_array("sender signature")?;
        let pkg_sigs = d.get_array("pkg multi-signature")?;
        let pkg_round = Round(d.get_u64("pkg round")?);
        let dialing_key = d.get_array("dialing key")?;
        let dialing_round = Round(d.get_u64("dialing round")?);
        d.finish()?;
        Ok(FriendRequest {
            sender,
            sender_key,
            sender_sig,
            pkg_sigs,
            pkg_round,
            dialing_key,
            dialing_round,
        })
    }

    /// The message that the sender signs with their long-term key:
    /// `(sender, dialing_key, dialing_round)` as in Algorithm 1 step 2a.
    pub fn sender_signed_message(&self) -> Vec<u8> {
        Self::signed_message_parts(&self.sender, &self.dialing_key, self.dialing_round)
    }

    /// Builds the sender-signed message from its parts (used by the sender
    /// before the request exists).
    pub fn signed_message_parts(
        sender: &Identity,
        dialing_key: &[u8; DH_PK_LEN],
        dialing_round: Round,
    ) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(b"alpenhorn-friend-request-v1");
        e.put_padded(sender.as_bytes(), IDENTITY_FIELD_LEN);
        e.put_bytes(dialing_key);
        e.put_u64(dialing_round.0);
        e.finish()
    }

    /// The message that the PKGs sign when extracting a user's round key:
    /// `(identity, signing key, round)` as in Algorithm 1 step 1.
    pub fn pkg_attestation_message(
        identity: &Identity,
        signing_key: &[u8; SIGNING_PK_LEN],
        round: Round,
    ) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_bytes(b"alpenhorn-pkg-attestation-v1");
        e.put_padded(identity.as_bytes(), IDENTITY_FIELD_LEN);
        e.put_bytes(signing_key);
        e.put_u64(round.0);
        e.finish()
    }
}

/// A complete add-friend submission as sent into the mixnet (innermost layer
/// of the onion): a plaintext mailbox ID plus the fixed-size IBE ciphertext.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddFriendEnvelope {
    /// Destination mailbox, or [`MailboxId::COVER`] for cover traffic.
    pub mailbox: MailboxId,
    /// IBE ciphertext of the encoded [`FriendRequest`], or all zeros for
    /// cover traffic. Always exactly [`IBE_CIPHERTEXT_LEN`] + 8 bytes
    /// (the body carries the extra `pkg_round` field).
    pub ciphertext: Vec<u8>,
}

impl AddFriendEnvelope {
    /// The fixed ciphertext length carried in every envelope.
    pub const CIPHERTEXT_LEN: usize = IBE_CIPHERTEXT_LEN + 8;
    /// The fixed total envelope length.
    pub const ENCODED_LEN: usize = ADD_FRIEND_REQUEST_LEN + 8;

    /// Creates a cover-traffic envelope (all-zero ciphertext).
    pub fn cover() -> Self {
        AddFriendEnvelope {
            mailbox: MailboxId::COVER,
            ciphertext: vec![0u8; Self::CIPHERTEXT_LEN],
        }
    }

    /// Whether this envelope is (structurally) cover traffic.
    pub fn is_cover(&self) -> bool {
        self.mailbox.is_cover()
    }

    /// Encodes the envelope into its fixed wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encodes the envelope into `out` (cleared first), so round-driven
    /// callers can reuse one buffer across rounds.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        assert_eq!(
            self.ciphertext.len(),
            Self::CIPHERTEXT_LEN,
            "envelope ciphertext must be fixed-size"
        );
        out.clear();
        out.reserve(Self::ENCODED_LEN);
        out.extend_from_slice(&self.mailbox.0.to_be_bytes());
        out.extend_from_slice(&self.ciphertext);
        debug_assert_eq!(out.len(), Self::ENCODED_LEN);
    }

    /// Decodes an envelope from its fixed wire form.
    pub fn decode(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() != Self::ENCODED_LEN {
            return Err(WireError::WrongLength {
                expected: Self::ENCODED_LEN,
                actual: buf.len(),
            });
        }
        let mut d = Decoder::new(buf);
        let mailbox = MailboxId(d.get_u32("envelope mailbox")?);
        let ciphertext = d
            .get_bytes(Self::CIPHERTEXT_LEN, "envelope ciphertext")?
            .to_vec();
        d.finish()?;
        Ok(AddFriendEnvelope {
            mailbox,
            ciphertext,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> FriendRequest {
        FriendRequest {
            sender: Identity::new("alice@example.com").unwrap(),
            sender_key: [1u8; SIGNING_PK_LEN],
            sender_sig: [2u8; SIGNATURE_LEN],
            pkg_sigs: [3u8; MULTISIG_LEN],
            pkg_round: Round(17),
            dialing_key: [4u8; DH_PK_LEN],
            dialing_round: Round(42),
        }
    }

    #[test]
    fn friend_request_round_trip() {
        let req = sample_request();
        let buf = req.encode();
        assert_eq!(buf.len(), FriendRequest::ENCODED_LEN);
        assert_eq!(FriendRequest::decode(&buf).unwrap(), req);
    }

    #[test]
    fn encoded_length_independent_of_identity() {
        let mut a = sample_request();
        a.sender = Identity::new("a@b.co").unwrap();
        let mut b = sample_request();
        b.sender = Identity::new("a.much.longer.address@some.subdomain.example.org").unwrap();
        assert_eq!(a.encode().len(), b.encode().len());
    }

    #[test]
    fn truncated_request_rejected() {
        let buf = sample_request().encode();
        assert!(matches!(
            FriendRequest::decode(&buf[..buf.len() - 1]),
            Err(WireError::WrongLength { .. })
        ));
    }

    #[test]
    fn corrupt_identity_rejected() {
        let mut buf = sample_request().encode();
        buf[0] = 63; // claim a 63-byte identity, mostly zero padding bytes
        assert!(FriendRequest::decode(&buf).is_err());
    }

    #[test]
    fn signed_messages_are_domain_separated() {
        let req = sample_request();
        let sender_msg = req.sender_signed_message();
        let pkg_msg =
            FriendRequest::pkg_attestation_message(&req.sender, &req.sender_key, Round(17));
        assert_ne!(sender_msg, pkg_msg);
    }

    #[test]
    fn signed_message_depends_on_round() {
        let req = sample_request();
        let m1 = FriendRequest::signed_message_parts(&req.sender, &req.dialing_key, Round(1));
        let m2 = FriendRequest::signed_message_parts(&req.sender, &req.dialing_key, Round(2));
        assert_ne!(m1, m2);
    }

    #[test]
    fn envelope_round_trip() {
        let env = AddFriendEnvelope {
            mailbox: MailboxId(9),
            ciphertext: vec![5u8; AddFriendEnvelope::CIPHERTEXT_LEN],
        };
        let buf = env.encode();
        assert_eq!(buf.len(), AddFriendEnvelope::ENCODED_LEN);
        assert_eq!(AddFriendEnvelope::decode(&buf).unwrap(), env);
    }

    #[test]
    fn cover_envelope_same_size_as_real() {
        let cover = AddFriendEnvelope::cover();
        let real = AddFriendEnvelope {
            mailbox: MailboxId(3),
            ciphertext: vec![0xaa; AddFriendEnvelope::CIPHERTEXT_LEN],
        };
        assert_eq!(cover.encode().len(), real.encode().len());
        assert!(cover.is_cover());
        assert!(!real.is_cover());
    }

    #[test]
    #[should_panic(expected = "fixed-size")]
    fn envelope_with_wrong_ciphertext_size_panics_on_encode() {
        let env = AddFriendEnvelope {
            mailbox: MailboxId(0),
            ciphertext: vec![0u8; 10],
        };
        env.encode();
    }
}
