//! Property tests for the RPC codec and the frame layer.
//!
//! Round-trips cover every `Request` and `Response` variant with generated
//! payloads; the adversarial suite feeds truncated frames, bad version bytes,
//! corrupted checksums, oversized length prefixes, and arbitrary byte soup to
//! the decoders, which must fail cleanly (typed errors) and never panic.

use proptest::prelude::*;

use alpenhorn_wire::rpc::{
    AddFriendRoundWire, DialingRoundWire, IdentityKeyShareWire, RoundStatsWire,
    RATE_LIMIT_SERIAL_LEN,
};
use alpenhorn_wire::{
    AddFriendEnvelope, CdnStatsWire, Frame, Identity, MailboxId, RateLimitReason, RateLimitToken,
    Request, Response, Round, RoundKind, RpcError, WireError, G1_LEN, G2_LEN, SIGNATURE_LEN,
    SIGNING_PK_LEN,
};

fn arb_identity() -> impl Strategy<Value = Identity> {
    ("[a-z0-9]{1,12}", "[a-z0-9]{1,10}", "[a-z]{2,5}")
        .prop_map(|(local, domain, tld)| Identity::new(&format!("{local}@{domain}.{tld}")).unwrap())
}

/// Builds one of every `Request` variant from a handful of generated values,
/// so each proptest case exercises the complete request surface.
fn all_requests(
    identity: Identity,
    round: u64,
    fill: u8,
    onion_len: usize,
    with_token: bool,
) -> Vec<Request> {
    let token = with_token.then_some(RateLimitToken {
        serial: [fill; RATE_LIMIT_SERIAL_LEN],
        signature: [fill.wrapping_add(1); SIGNATURE_LEN],
    });
    vec![
        Request::Register {
            identity: identity.clone(),
            signing_key: [fill; SIGNING_PK_LEN],
        },
        Request::CompleteRegistration {
            identity: identity.clone(),
        },
        Request::Deregister {
            identity: identity.clone(),
            signature: [fill; SIGNATURE_LEN],
        },
        Request::GetPkgKeys,
        Request::GetAddFriendRoundInfo,
        Request::GetDialingRoundInfo,
        Request::ExtractIdentityKeys {
            identity: identity.clone(),
            round: Round(round),
            auth: [fill; SIGNATURE_LEN],
        },
        Request::IssueRateLimitToken {
            identity,
            blinded: [fill; G1_LEN],
            auth: [fill.wrapping_add(2); SIGNATURE_LEN],
        },
        Request::SubmitAddFriend {
            round: Round(round),
            onion: vec![fill; onion_len],
            token,
        },
        Request::SubmitDialing {
            round: Round(round),
            onion: vec![fill.wrapping_add(3); onion_len],
            token,
        },
        Request::FetchAddFriendMailbox {
            round: Round(round),
            mailbox: MailboxId(fill as u32),
        },
        Request::FetchDialingMailbox {
            round: Round(round),
            mailbox: MailboxId::COVER,
        },
        Request::BeginAddFriendRound {
            round: Round(round),
            expected_real: round ^ 0x55,
        },
        Request::CloseAddFriendRound {
            round: Round(round),
        },
        Request::BeginDialingRound {
            round: Round(round),
            expected_real: round.wrapping_mul(3),
        },
        Request::CloseDialingRound {
            round: Round(round),
        },
        Request::GetCdnStats,
    ]
}

/// Builds one of every `Response` variant (including every error variant).
fn all_responses(round: u64, fill: u8, counts: (usize, usize), detail: String) -> Vec<Response> {
    let (num_keys, num_entries) = counts;
    let mut responses = vec![
        Response::Ack,
        Response::PkgKeys(vec![[fill; SIGNING_PK_LEN]; num_keys]),
        Response::AddFriendRoundInfo(AddFriendRoundWire {
            round: Round(round),
            onion_keys: vec![[fill; G1_LEN]; num_keys],
            pkg_publics: vec![[fill.wrapping_add(1); G1_LEN]; num_keys],
            num_mailboxes: fill as u32 + 1,
            onion_len: 500,
            rate_limited: fill.is_multiple_of(2),
        }),
        Response::DialingRoundInfo(DialingRoundWire {
            round: Round(round),
            onion_keys: vec![[fill; G1_LEN]; num_keys],
            num_mailboxes: fill as u32 + 1,
            onion_len: 228,
            rate_limited: !fill.is_multiple_of(2),
        }),
        Response::IdentityKeys(vec![
            IdentityKeyShareWire {
                identity_key: [fill; G2_LEN],
                attestation: [fill.wrapping_add(2); SIGNATURE_LEN],
            };
            num_keys
        ]),
        Response::TokenIssued {
            blind_signature: [fill; G1_LEN],
        },
        Response::AddFriendMailbox {
            contents: vec![vec![fill; AddFriendEnvelope::CIPHERTEXT_LEN]; num_entries],
        },
        Response::DialingMailbox {
            filter: vec![fill; num_entries * 8 + 20],
        },
        Response::RoundClosed(RoundStatsWire {
            client_messages: round,
            total_noise: round.wrapping_mul(7),
            final_messages: round.wrapping_add(99),
        }),
        Response::CdnStats(CdnStatsWire {
            bytes_served: round,
            downloads: round.wrapping_mul(3),
            parity_bytes_served: round.wrapping_mul(5),
            shard_fetches: round.wrapping_add(1),
        }),
    ];
    let errors = vec![
        RpcError::RoundNotOpen {
            requested: Round(round),
        },
        RpcError::NoOpenRound {
            kind: if fill.is_multiple_of(2) {
                RoundKind::AddFriend
            } else {
                RoundKind::Dialing
            },
        },
        RpcError::RoundAlreadyOpen,
        RpcError::WrongRequestSize {
            expected: fill as u32 + 1,
            actual: fill as u32,
        },
        RpcError::UnknownMailbox,
        RpcError::CommitmentMismatch {
            pkg_index: fill as u32,
        },
        RpcError::Pkg {
            code: fill,
            detail: detail.clone(),
        },
        RpcError::RateLimited {
            reason: match fill % 5 {
                0 => RateLimitReason::MissingToken,
                1 => RateLimitReason::InvalidToken,
                2 => RateLimitReason::DoubleSpend,
                3 => RateLimitReason::BudgetExhausted,
                _ => RateLimitReason::NotEnabled,
            },
        },
        RpcError::BadRequest {
            detail: detail.clone(),
        },
        RpcError::Unavailable {
            detail,
            retry_after_ms: fill as u32 * 100,
        },
    ];
    responses.extend(errors.into_iter().map(Response::Error));
    responses
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_request_variant_round_trips(
        identity in arb_identity(),
        round in 0u64..u64::MAX,
        fill in any::<u8>(),
        onion_len in 0usize..600,
        with_token in any::<bool>(),
    ) {
        for request in all_requests(identity, round, fill, onion_len, with_token) {
            let encoded = request.encode();
            prop_assert_eq!(Request::decode(&encoded).unwrap(), request);
        }
    }

    #[test]
    fn every_response_variant_round_trips(
        round in 0u64..u64::MAX,
        fill in any::<u8>(),
        num_keys in 0usize..8,
        num_entries in 0usize..6,
        detail in "[ -~]{0,40}",
    ) {
        for response in all_responses(round, fill, (num_keys, num_entries), detail.clone()) {
            let encoded = response.encode();
            prop_assert_eq!(Response::decode(&encoded).unwrap(), response);
        }
    }

    #[test]
    fn request_and_response_survive_framing(
        identity in arb_identity(),
        round in 0u64..1_000_000,
        fill in any::<u8>(),
    ) {
        for request in all_requests(identity, round, fill, 64, true) {
            let framed = Frame::encode(&request.encode());
            let payload = Frame::decode(&framed).unwrap();
            prop_assert_eq!(Request::decode(payload).unwrap(), request);
        }
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any result is fine; what matters is that nothing panics and errors
        // are typed.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn truncated_frames_fail_cleanly(
        identity in arb_identity(),
        cut in any::<u16>(),
    ) {
        let request = Request::CompleteRegistration { identity };
        let framed = Frame::encode(&request.encode());
        let cut = (cut as usize) % framed.len();
        // Every strict prefix must be rejected, never panic.
        prop_assert!(Frame::decode(&framed[..cut]).is_err());
    }

    #[test]
    fn telemetry_frames_round_trip_with_and_without_the_field(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        correlation in any::<u64>(),
    ) {
        // With the telemetry field: a v4 frame carrying the correlation id.
        let with = Frame::encode_with_telemetry(&payload, correlation);
        let (decoded, telemetry) = Frame::decode_with_telemetry(&with).unwrap();
        prop_assert_eq!(decoded, payload.as_slice());
        prop_assert_eq!(telemetry, Some(correlation));
        // The plain decoder accepts the same v4 frame, dropping the field.
        prop_assert_eq!(Frame::decode(&with).unwrap(), payload.as_slice());

        // Without the field: byte-identical to a PR 9-era (v3) frame.
        let without = Frame::encode(&payload);
        let (decoded, telemetry) = Frame::decode_with_telemetry(&without).unwrap();
        prop_assert_eq!(decoded, payload.as_slice());
        prop_assert_eq!(telemetry, None);
    }

    #[test]
    fn pr9_era_peer_interoperates_with_telemetry_frames(
        identity in arb_identity(),
        round in 0u64..1_000_000,
        fill in any::<u8>(),
        correlation in any::<u64>(),
    ) {
        for request in all_requests(identity, round, fill, 64, true) {
            // A PR 9 peer emits exactly `Frame::encode` bytes (the telemetry-
            // free encoding *is* the v3 encoding); a telemetry-aware receiver
            // must accept them and see no correlation id.
            let legacy = Frame::encode(&request.encode());
            let (payload, telemetry) = Frame::decode_with_telemetry(&legacy).unwrap();
            prop_assert_eq!(telemetry, None);
            prop_assert_eq!(Request::decode(payload).unwrap(), request.clone());

            // And a PR 9 peer receiving a v4 frame would reject the unknown
            // version rather than misparse it, so a telemetry-aware sender
            // talks to an old receiver by sending plain frames — which this
            // stream does: both framings of the same request, read back to
            // back through the streaming reader.
            let mut wire = Vec::new();
            Frame::write_to_with_telemetry(&mut wire, &request.encode(), Some(correlation)).unwrap();
            Frame::write_to_with_telemetry(&mut wire, &request.encode(), None).unwrap();
            let mut reader = std::io::Cursor::new(wire);
            let (first, t1) = Frame::read_from_with_telemetry(&mut reader).unwrap();
            let (second, t2) = Frame::read_from_with_telemetry(&mut reader).unwrap();
            prop_assert_eq!(t1, Some(correlation));
            prop_assert_eq!(t2, None);
            prop_assert_eq!(Request::decode(&first).unwrap(), request.clone());
            prop_assert_eq!(Request::decode(&second).unwrap(), request);
        }
    }

    #[test]
    fn bit_flips_anywhere_are_rejected_or_caught_by_checksum(
        identity in arb_identity(),
        position in any::<u16>(),
        flip in 1u8..255,
    ) {
        let request = Request::CompleteRegistration { identity };
        let mut framed = Frame::encode(&request.encode());
        let position = (position as usize) % framed.len();
        framed[position] ^= flip;
        // A flipped bit anywhere (magic, version, length, payload, checksum)
        // must make frame decoding fail: the payload is covered by the
        // checksum and the header fields are validated explicitly.
        prop_assert!(Frame::decode(&framed).is_err());
    }
}

#[test]
fn bad_version_byte_is_rejected_with_typed_error() {
    let mut framed = Frame::encode(b"payload");
    framed[2] = Frame::VERSION + 1;
    assert_eq!(
        Frame::decode(&framed),
        Err(WireError::UnsupportedVersion {
            version: Frame::VERSION + 1
        })
    );
    // read_from agrees.
    let mut cursor = std::io::Cursor::new(framed);
    assert!(Frame::read_from(&mut cursor).is_err());
}

#[test]
fn bad_magic_is_rejected() {
    let mut framed = Frame::encode(b"payload");
    framed[0] = b'X';
    assert_eq!(Frame::decode(&framed), Err(WireError::BadMagic));
}

#[test]
fn corrupted_checksum_is_rejected() {
    let mut framed = Frame::encode(b"payload");
    let last = framed.len() - 1;
    framed[last] ^= 0x01;
    assert_eq!(Frame::decode(&framed), Err(WireError::ChecksumMismatch));
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // Claim a payload far beyond MAX_PAYLOAD_LEN; the decoder must reject it
    // from the header alone (no attempt to read or allocate the payload).
    let mut framed = Frame::encode(b"x").to_vec();
    framed[3..7].copy_from_slice(&u32::MAX.to_be_bytes());
    assert_eq!(
        Frame::decode(&framed),
        Err(WireError::FrameTooLarge {
            claimed: u32::MAX as usize
        })
    );
    let mut cursor = std::io::Cursor::new(framed);
    assert!(Frame::read_from(&mut cursor).is_err());
}

#[test]
fn lying_length_prefix_within_bounds_is_caught() {
    // A length prefix that is in-bounds but does not match the actual
    // payload shifts the checksum window and must fail.
    let framed = Frame::encode(b"hello world");
    let mut shorter = framed.clone();
    let true_len = u32::from_be_bytes([framed[3], framed[4], framed[5], framed[6]]);
    shorter[3..7].copy_from_slice(&(true_len - 1).to_be_bytes());
    assert!(Frame::decode(&shorter).is_err());
}
