//! Bloom filter encoding of Alpenhorn dialing mailboxes.
//!
//! §5.2 of the paper: the last mixnet server encodes the set of dial tokens
//! destined to one dialing mailbox as a Bloom filter, which clients download
//! instead of the raw token list. Alpenhorn tunes the filter to roughly 48
//! bits per element, giving a false-positive rate around 1e-10 (about one
//! phantom call per decade per user) and *no* false negatives, so calls are
//! never missed.
//!
//! The filter hashes elements with the double-hashing technique (two
//! independent 64-bit hashes derived from SHA-256, combined as
//! `h1 + i * h2`), which is standard and sufficient for the pseudorandom
//! 256-bit dial tokens stored here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use alpenhorn_crypto::sha256::Sha256;

/// Parameters of a Bloom filter: number of bits and number of hash functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomParams {
    /// Total number of bits in the filter (at least 1).
    pub bits: usize,
    /// Number of hash functions (at least 1).
    pub hashes: u32,
}

impl BloomParams {
    /// Chooses parameters for an expected number of elements using the
    /// paper's sizing rule of `bits_per_element` bits per element (48 in the
    /// deployment described in §5.2) and the optimal number of hash
    /// functions `k = bits_per_element * ln 2`.
    pub fn for_elements(expected_elements: usize, bits_per_element: usize) -> Self {
        let bits = (expected_elements.max(1)) * bits_per_element.max(1);
        let hashes = ((bits_per_element as f64) * core::f64::consts::LN_2).round() as u32;
        BloomParams {
            bits,
            hashes: hashes.max(1),
        }
    }

    /// The paper's configuration: 48 bits per element.
    pub fn paper_default(expected_elements: usize) -> Self {
        Self::for_elements(expected_elements, 48)
    }

    /// Theoretical false-positive probability when `n` elements are inserted.
    pub fn false_positive_rate(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let k = self.hashes as f64;
        let m = self.bits as f64;
        let fill = 1.0 - (-(k * n as f64) / m).exp();
        fill.powf(k)
    }

    /// Size of the encoded filter in bytes (excluding the header).
    pub fn byte_len(&self) -> usize {
        self.bits.div_ceil(8)
    }
}

/// A Bloom filter over arbitrary byte strings.
///
/// # Examples
///
/// ```
/// use alpenhorn_bloom::{BloomFilter, BloomParams};
///
/// let mut filter = BloomFilter::new(BloomParams::paper_default(1000));
/// filter.insert(b"dial token");
/// assert!(filter.contains(b"dial token"));
/// assert!(!filter.contains(b"a different token"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    params: BloomParams,
    bits: Vec<u8>,
    inserted: u64,
}

impl BloomFilter {
    /// Creates an empty filter with the given parameters.
    pub fn new(params: BloomParams) -> Self {
        assert!(params.bits > 0, "bloom filter must have at least one bit");
        assert!(params.hashes > 0, "bloom filter needs at least one hash");
        BloomFilter {
            bits: vec![0u8; params.byte_len()],
            params,
            inserted: 0,
        }
    }

    /// The filter's parameters.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of elements inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Derives the two base hashes for double hashing.
    fn base_hashes(item: &[u8]) -> (u64, u64) {
        let mut h = Sha256::new();
        h.update(b"alpenhorn-bloom-v1");
        h.update(item);
        let digest = h.finalize();
        let h1 = u64::from_be_bytes(digest[0..8].try_into().expect("8 bytes"));
        let h2 = u64::from_be_bytes(digest[8..16].try_into().expect("8 bytes"));
        // h2 must be odd so that it is coprime with power-of-two moduli and
        // never collapses the probe sequence to a single position.
        (h1, h2 | 1)
    }

    /// The bit index probed by hash function `i` for `item`.
    fn bit_index(&self, h1: u64, h2: u64, i: u32) -> usize {
        let combined = h1.wrapping_add(h2.wrapping_mul(i as u64));
        (combined % self.params.bits as u64) as usize
    }

    /// Inserts an element.
    pub fn insert(&mut self, item: &[u8]) {
        let (h1, h2) = Self::base_hashes(item);
        for i in 0..self.params.hashes {
            let idx = self.bit_index(h1, h2, i);
            self.bits[idx / 8] |= 1 << (idx % 8);
        }
        self.inserted += 1;
    }

    /// Tests whether an element may be in the set.
    ///
    /// Returns `true` for every inserted element (no false negatives) and
    /// `false` for non-members except with the configured false-positive
    /// probability.
    pub fn contains(&self, item: &[u8]) -> bool {
        let (h1, h2) = Self::base_hashes(item);
        for i in 0..self.params.hashes {
            let idx = self.bit_index(h1, h2, i);
            if self.bits[idx / 8] & (1 << (idx % 8)) == 0 {
                return false;
            }
        }
        true
    }

    /// Merges another filter with identical parameters into this one (set union).
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(
            self.params, other.params,
            "cannot union filters with different parameters"
        );
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= *b;
        }
        self.inserted += other.inserted;
    }

    /// Fraction of bits that are set (useful for diagnostics).
    pub fn fill_ratio(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|b| b.count_ones()).sum();
        set as f64 / self.params.bits as f64
    }

    /// Serializes the filter: bit count, hash count, inserted count, then the bit array.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.bits.len());
        out.extend_from_slice(&(self.params.bits as u64).to_be_bytes());
        out.extend_from_slice(&self.params.hashes.to_be_bytes());
        out.extend_from_slice(&self.inserted.to_be_bytes());
        out.extend_from_slice(&self.bits);
        out
    }

    /// Deserializes a filter produced by [`BloomFilter::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Option<BloomFilter> {
        if buf.len() < 20 {
            return None;
        }
        let bits = u64::from_be_bytes(buf[0..8].try_into().ok()?) as usize;
        let hashes = u32::from_be_bytes(buf[8..12].try_into().ok()?);
        let inserted = u64::from_be_bytes(buf[12..20].try_into().ok()?);
        let params = BloomParams { bits, hashes };
        if bits == 0 || hashes == 0 || buf.len() != 20 + params.byte_len() {
            return None;
        }
        Some(BloomFilter {
            params,
            bits: buf[20..].to_vec(),
            inserted,
        })
    }

    /// Total size of the serialized filter in bytes. This is what a client
    /// downloads per dialing mailbox per round (Figure 7's bandwidth driver).
    pub fn encoded_len(&self) -> usize {
        20 + self.bits.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn params_paper_default() {
        let p = BloomParams::paper_default(1000);
        assert_eq!(p.bits, 48_000);
        // 48 * ln 2 ≈ 33 hash functions.
        assert_eq!(p.hashes, 33);
        assert!(p.false_positive_rate(1000) < 1e-9);
    }

    #[test]
    fn no_false_negatives_small() {
        let mut f = BloomFilter::new(BloomParams::paper_default(100));
        let items: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_be_bytes().to_vec()).collect();
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            assert!(f.contains(item));
        }
        assert_eq!(f.inserted(), 100);
    }

    #[test]
    fn few_false_positives_at_paper_parameters() {
        let mut f = BloomFilter::new(BloomParams::paper_default(1000));
        for i in 0..1000u32 {
            f.insert(format!("member-{i}").as_bytes());
        }
        let mut fp = 0;
        for i in 0..10_000u32 {
            if f.contains(format!("non-member-{i}").as_bytes()) {
                fp += 1;
            }
        }
        // With a 1e-10 theoretical rate, zero false positives are expected in
        // a 10k probe sample.
        assert_eq!(fp, 0);
    }

    #[test]
    fn false_positive_rate_monotone_in_load() {
        let p = BloomParams::paper_default(1000);
        assert!(p.false_positive_rate(500) < p.false_positive_rate(2000));
        assert_eq!(p.false_positive_rate(0), 0.0);
    }

    #[test]
    fn union_contains_both_sets() {
        let params = BloomParams::paper_default(10);
        let mut a = BloomFilter::new(params);
        let mut b = BloomFilter::new(params);
        a.insert(b"from-a");
        b.insert(b"from-b");
        a.union(&b);
        assert!(a.contains(b"from-a"));
        assert!(a.contains(b"from-b"));
        assert_eq!(a.inserted(), 2);
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn union_mismatched_params_panics() {
        let mut a = BloomFilter::new(BloomParams::paper_default(10));
        let b = BloomFilter::new(BloomParams::paper_default(20));
        a.union(&b);
    }

    #[test]
    fn serialization_round_trip() {
        let mut f = BloomFilter::new(BloomParams::paper_default(50));
        for i in 0..50u32 {
            f.insert(&i.to_le_bytes());
        }
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), f.encoded_len());
        let g = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
        for i in 0..50u32 {
            assert!(g.contains(&i.to_le_bytes()));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BloomFilter::from_bytes(&[]).is_none());
        assert!(BloomFilter::from_bytes(&[0u8; 19]).is_none());
        // Valid header but truncated body.
        let f = BloomFilter::new(BloomParams::paper_default(100));
        let mut bytes = f.to_bytes();
        bytes.pop();
        assert!(BloomFilter::from_bytes(&bytes).is_none());
        // Zero bits.
        let mut zeros = vec![0u8; 20];
        zeros[8..12].copy_from_slice(&1u32.to_be_bytes());
        assert!(BloomFilter::from_bytes(&zeros).is_none());
    }

    #[test]
    fn paper_mailbox_size_matches_section_8_2() {
        // §8.2: 125,000 dial tokens at 48 bits per token is a 0.75 MB filter.
        let params = BloomParams::paper_default(125_000);
        let mb = params.byte_len() as f64 / 1e6;
        assert!((mb - 0.75).abs() < 0.01, "got {mb} MB");
    }

    #[test]
    fn fill_ratio_reasonable() {
        let mut f = BloomFilter::new(BloomParams::paper_default(1000));
        assert_eq!(f.fill_ratio(), 0.0);
        for i in 0..1000u32 {
            f.insert(&i.to_be_bytes());
        }
        // Optimal fill for a Bloom filter is about 50%.
        let fill = f.fill_ratio();
        assert!(fill > 0.3 && fill < 0.7, "fill {fill}");
    }

    #[test]
    fn randomized_no_false_negatives() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let params = BloomParams::for_elements(500, 48);
        let mut f = BloomFilter::new(params);
        let items: Vec<[u8; 32]> = (0..500).map(|_| rng.gen()).collect();
        for item in &items {
            f.insert(item);
        }
        for item in &items {
            assert!(f.contains(item));
        }
    }
}
