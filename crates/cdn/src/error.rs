//! Typed errors for the CDN node boundary.

use alpenhorn_erasure::ErasureError;
use alpenhorn_wire::{FrameIoError, WireError};

/// Why talking to (or decoding from) CDN nodes failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdnError {
    /// A message or frame failed to encode or decode.
    Wire(WireError),
    /// The connection to a node failed.
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// A node reported a request-level failure. Terminal: retrying the
    /// identical request returns the identical answer.
    Node(
        /// The node's description of the failure.
        String,
    ),
    /// A node answered with a response variant the request cannot produce.
    UnexpectedResponse,
    /// Too few shards survived to reconstruct the blob: fewer than `k` of
    /// the `k + m` shards were retrievable across all nodes.
    NotEnoughShards(ErasureError),
    /// Too few shards could be stored at publish time: more than `m` of the
    /// `k + m` shards failed to land, so a future reader might not be able
    /// to reconstruct.
    PublishDegraded {
        /// Shards stored successfully.
        stored: usize,
        /// Shards whose `PutShard` failed.
        failed: usize,
    },
}

impl core::fmt::Display for CdnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CdnError::Wire(e) => write!(f, "cdn wire error: {e}"),
            CdnError::Io { kind, detail } => write!(f, "cdn I/O error ({kind:?}): {detail}"),
            CdnError::Node(detail) => write!(f, "cdn node error: {detail}"),
            CdnError::UnexpectedResponse => {
                write!(f, "cdn node sent a response of the wrong kind")
            }
            CdnError::NotEnoughShards(e) => {
                write!(f, "cannot reconstruct mailbox blob: {e}")
            }
            CdnError::PublishDegraded { stored, failed } => write!(
                f,
                "publish degraded below reconstruction threshold: \
                 {stored} shards stored, {failed} failed"
            ),
        }
    }
}

impl std::error::Error for CdnError {}

impl From<WireError> for CdnError {
    fn from(e: WireError) -> Self {
        CdnError::Wire(e)
    }
}

impl From<std::io::Error> for CdnError {
    fn from(e: std::io::Error) -> Self {
        CdnError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

impl From<FrameIoError> for CdnError {
    fn from(e: FrameIoError) -> Self {
        match e {
            FrameIoError::Io(e) => e.into(),
            FrameIoError::Wire(e) => e.into(),
        }
    }
}
