//! Erasure-coded mailbox CDN nodes and the any-k-of-n client layer.
//!
//! The paper's deployment (§7) serves each closed round's public mailbox
//! state from a CDN so the coordinator doesn't have to. This crate is that
//! tier, erasure coded so it also survives node loss:
//!
//! * [`CdnNodeState`] — one node's shard store behind the
//!   [`CdnRequest`](alpenhorn_wire::CdnRequest) protocol, optionally
//!   mirrored to a data directory so an acknowledged shard survives a node
//!   restart.
//! * [`serve`] — the framed TCP accept loop (`cdnd` binary).
//! * [`NodeClient`] — a handle to one node: [`LoopbackNode`] (in-process,
//!   full codec, with a liveness switch for scripted node loss) or
//!   [`TcpNode`] (framed TCP, lazy reconnect).
//! * [`ShardedCdn`] — the fleet layer: each mailbox blob is `k` data + `m`
//!   parity shift-XOR shards ([`alpenhorn_erasure`]), shard `i` on node
//!   `i mod n`. Reads are data-first (no decoding when the fleet is
//!   healthy) and fall back to XOR-only parity reconstruction when up to
//!   `m` shards are unreachable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod node;
pub mod sharded;

pub use client::{LoopbackNode, NodeClient, TcpNode};
pub use error::CdnError;
pub use node::{serve, CdnNodeHandle, CdnNodeState};
pub use sharded::{CdnFleetStats, FetchOutcome, PublishOutcome, ShardedCdn};
