//! `cdnd` — one erasure-coded mailbox CDN node as a standalone daemon.
//!
//! Stores and serves shards of closed rounds' mailbox blobs for the
//! coordinator and clients. With `--data-dir` the node is durable: every
//! acknowledged shard is mirrored to disk and reloaded on restart, before
//! the listener binds. Losing a node entirely is also fine — readers
//! reconstruct from any `k` of the `k + m` shards on the surviving fleet.
//!
//! ```text
//! cdnd [--listen ADDR] [--data-dir DIR] [--log-level LEVEL]
//!      [--metrics-dump-secs N]
//! ```

use alpenhorn_cdn::{serve, CdnNodeState};
use alpenhorn_obs::log::Level;
use alpenhorn_obs::{log_error, log_info};

/// The log/metrics target tag for this daemon.
const TARGET: &str = "cdnd";

struct Options {
    listen: String,
    data_dir: Option<String>,
    log_level: Level,
    metrics_dump_secs: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cdnd [--listen ADDR] [--data-dir DIR]\n\
         \x20           [--log-level off|error|warn|info|debug] [--metrics-dump-secs N]\n\
         \x20      --listen ADDR listen address (default 127.0.0.1:7307; port 0 for ephemeral)\n\
         \x20      --data-dir D  persist shards under DIR and reload them on restart\n\
         \x20      --log-level L log verbosity (default info)\n\
         \x20      --metrics-dump-secs N  dump the metrics exposition every N seconds"
    );
    std::process::exit(2)
}

fn parse_options() -> Options {
    let mut options = Options {
        listen: "127.0.0.1:7307".to_string(),
        data_dir: None,
        log_level: Level::Info,
        metrics_dump_secs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("cdnd: {name} requires a value");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => options.listen = value("--listen"),
            "--data-dir" => options.data_dir = Some(value("--data-dir")),
            "--log-level" => {
                options.log_level = Level::parse(&value("--log-level")).unwrap_or_else(|| usage())
            }
            "--metrics-dump-secs" => {
                options.metrics_dump_secs = Some(
                    value("--metrics-dump-secs")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("cdnd: unknown flag {other}");
                usage()
            }
        }
    }
    options
}

fn main() {
    let options = parse_options();
    alpenhorn_obs::log::set_level(options.log_level);
    if let Some(secs) = options.metrics_dump_secs {
        alpenhorn_obs::spawn_metrics_dump(TARGET, std::time::Duration::from_secs(secs.max(1)));
    }
    // Recovery happens here, before the listener binds: a durable node
    // never serves until its previous life's shards are back.
    let state = match &options.data_dir {
        None => CdnNodeState::new(),
        Some(dir) => match CdnNodeState::with_data_dir(dir) {
            Ok(state) => {
                log_info!(
                    TARGET,
                    "recovered {} shards ({} bytes) from {dir}",
                    state.shards_stored(),
                    state.bytes_stored()
                );
                state
            }
            Err(e) => {
                log_error!(TARGET, "cannot open data dir {dir}: {e}");
                std::process::exit(1);
            }
        },
    };
    let handle = match serve(state, options.listen.as_str()) {
        Ok(handle) => handle,
        Err(e) => {
            log_error!(TARGET, "cannot listen on {}: {e}", options.listen);
            std::process::exit(1);
        }
    };
    log_info!(
        TARGET,
        "listening on {} (durability {})",
        handle.local_addr(),
        if options.data_dir.is_some() {
            "on"
        } else {
            "off"
        },
    );
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
