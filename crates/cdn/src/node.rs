//! One CDN node: an erasure-shard store behind the `cdnd` request protocol.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use alpenhorn_obs::SpanGuard;
use alpenhorn_wire::cdn::MAX_SHARDS;
use alpenhorn_wire::rpc::{SpanWire, TelemetryWire};
use alpenhorn_wire::{CdnRequest, CdnResponse, Frame, Round, RoundKind, ShardHeader};

/// The span component tag for code running inside a CDN node. In a real
/// deployment each `cdnd` process only ever records spans with this tag; in
/// single-process tests the tag is what separates node-side spans from
/// coordinator- and mixer-side ones.
pub const SPAN_COMPONENT: &str = "cdn";

/// Node-side serving counters mirrored into the shared registry, so fleet
/// accounting can be reconciled against the coordinator's `CdnStats`-style
/// totals without polling every node's `GetStats`.
struct NodeMetrics {
    shard_puts: Arc<alpenhorn_obs::Counter>,
    shard_fetches: Arc<alpenhorn_obs::Counter>,
    bytes_served: Arc<alpenhorn_obs::Counter>,
}

fn node_metrics() -> &'static NodeMetrics {
    static METRICS: std::sync::OnceLock<NodeMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = alpenhorn_obs::global();
        NodeMetrics {
            shard_puts: r.counter("cdn_node_shard_puts_total", &[]),
            shard_fetches: r.counter("cdn_node_shard_fetches_total", &[]),
            bytes_served: r.counter("cdn_node_bytes_served_total", &[]),
        }
    })
}

/// Builds the node's [`CdnResponse::Telemetry`] payload: the global metrics
/// exposition plus every recent span recorded under [`SPAN_COMPONENT`].
pub fn telemetry_wire() -> TelemetryWire {
    TelemetryWire {
        exposition: alpenhorn_obs::global().expose(),
        spans: alpenhorn_obs::spans_for(SPAN_COMPONENT)
            .into_iter()
            .map(|s| SpanWire {
                component: s.component.to_string(),
                name: s.name.to_string(),
                correlation: s.correlation,
                start_us: s.start_us,
                duration_us: s.duration_us,
            })
            .collect(),
    }
}

/// A stored-shard key, ordered round-first so expiry is a range delete.
pub(crate) type ShardKey = (u64, u8, u32, u16);

pub(crate) fn shard_key(kind: RoundKind, round: Round, mailbox: u32, index: u16) -> ShardKey {
    let kind = match kind {
        RoundKind::AddFriend => 0u8,
        RoundKind::Dialing => 1u8,
    };
    (round.0, kind, mailbox, index)
}

struct StoredShard {
    header: ShardHeader,
    bytes: Vec<u8>,
}

/// One CDN node's state: stored shards plus serving counters. With a data
/// directory attached, every put/expire is mirrored to disk and a restarted
/// node reloads its shards before serving — a node crash loses nothing that
/// was acknowledged.
pub struct CdnNodeState {
    shards: BTreeMap<ShardKey, StoredShard>,
    data_dir: Option<PathBuf>,
    shard_fetches: u64,
    bytes_served: u64,
}

impl Default for CdnNodeState {
    fn default() -> Self {
        Self::new()
    }
}

impl CdnNodeState {
    /// An empty, memory-only node.
    pub fn new() -> Self {
        CdnNodeState {
            shards: BTreeMap::new(),
            data_dir: None,
            shard_fetches: 0,
            bytes_served: 0,
        }
    }

    /// A durable node: shards live under `dir` (one file per shard) and are
    /// reloaded here, before the caller binds a listener.
    pub fn with_data_dir(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut node = CdnNodeState::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(key) = parse_shard_filename(name) else {
                continue;
            };
            let bytes = std::fs::read(&path)?;
            if let Some((header, shard)) = decode_shard_file(&bytes) {
                node.shards.insert(
                    key,
                    StoredShard {
                        header,
                        bytes: shard,
                    },
                );
            }
        }
        node.data_dir = Some(dir);
        Ok(node)
    }

    /// Shards currently stored.
    pub fn shards_stored(&self) -> u64 {
        self.shards.len() as u64
    }

    /// Bytes currently stored across all shards.
    pub fn bytes_stored(&self) -> u64 {
        self.shards.values().map(|s| s.bytes.len() as u64).sum()
    }

    /// Dispatches one request. Failures come back as
    /// [`CdnResponse::Error`], never a panic.
    pub fn handle(&mut self, request: CdnRequest) -> CdnResponse {
        match request {
            CdnRequest::PutShard {
                kind,
                round,
                mailbox,
                index,
                header,
                shard,
            } => {
                let total = header.data_shards as usize + header.parity_shards as usize;
                if index as usize >= total || total > MAX_SHARDS {
                    return CdnResponse::Error(format!(
                        "shard index {index} out of range for {}+{} encoding",
                        header.data_shards, header.parity_shards
                    ));
                }
                let key = shard_key(kind, round, mailbox.0, index);
                if let Some(dir) = &self.data_dir {
                    let path = dir.join(shard_filename(key));
                    if let Err(e) = std::fs::write(&path, encode_shard_file(&header, &shard)) {
                        return CdnResponse::Error(format!(
                            "cannot persist shard to {}: {e}",
                            path.display()
                        ));
                    }
                }
                self.shards.insert(
                    key,
                    StoredShard {
                        header,
                        bytes: shard,
                    },
                );
                node_metrics().shard_puts.inc();
                CdnResponse::Ack
            }
            CdnRequest::GetShard {
                kind,
                round,
                mailbox,
                index,
            } => match self.shards.get(&shard_key(kind, round, mailbox.0, index)) {
                Some(stored) => {
                    self.shard_fetches += 1;
                    self.bytes_served += stored.bytes.len() as u64;
                    let m = node_metrics();
                    m.shard_fetches.inc();
                    m.bytes_served.add(stored.bytes.len() as u64);
                    CdnResponse::Shard {
                        header: stored.header,
                        shard: stored.bytes.clone(),
                    }
                }
                None => CdnResponse::NotFound,
            },
            CdnRequest::Expire { keep_from } => {
                let kept = self.shards.split_off(&(keep_from.0, 0, 0, 0));
                let dropped = std::mem::replace(&mut self.shards, kept);
                if let Some(dir) = &self.data_dir {
                    for key in dropped.keys() {
                        let _ = std::fs::remove_file(dir.join(shard_filename(*key)));
                    }
                }
                CdnResponse::Ack
            }
            CdnRequest::GetStats => CdnResponse::Stats {
                shards_stored: self.shards_stored(),
                bytes_stored: self.bytes_stored(),
                shard_fetches: self.shard_fetches,
                bytes_served: self.bytes_served,
            },
            CdnRequest::GetTelemetry => CdnResponse::Telemetry(telemetry_wire()),
        }
    }

    /// Handles one framed request payload, returning the encoded response.
    /// Undecodable payloads come back as encoded [`CdnResponse::Error`]s,
    /// keeping the connection alive and aligned.
    pub fn handle_request_bytes(&mut self, payload: &[u8]) -> Vec<u8> {
        self.handle_request_bytes_with_correlation(payload, None)
    }

    /// Like [`CdnNodeState::handle_request_bytes`], with the correlation id
    /// the peer attached to the request frame (if any): round-scoped
    /// requests record a node-side span under it, so one add-friend round
    /// can be traced from the coordinator into every node that stored or
    /// served its shards.
    pub fn handle_request_bytes_with_correlation(
        &mut self,
        payload: &[u8],
        correlation: Option<u64>,
    ) -> Vec<u8> {
        let response = match CdnRequest::decode(payload) {
            Ok(request) => {
                let correlation = correlation.or_else(|| {
                    request
                        .round_scope()
                        .map(|(kind, round)| alpenhorn_obs::correlation_id(kind.code(), round.0))
                });
                let _span =
                    correlation.map(|corr| SpanGuard::begin(SPAN_COMPONENT, request.name(), corr));
                self.handle(request)
            }
            Err(e) => CdnResponse::Error(format!("undecodable cdn request: {e}")),
        };
        let bytes = response.encode();
        if bytes.len() > Frame::MAX_PAYLOAD_LEN {
            return CdnResponse::Error("response exceeds the maximum frame size".to_string())
                .encode();
        }
        bytes
    }
}

fn shard_filename(key: ShardKey) -> String {
    let (round, kind, mailbox, index) = key;
    format!("r{round}-k{kind}-m{mailbox}-s{index}.shard")
}

fn parse_shard_filename(name: &str) -> Option<ShardKey> {
    let rest = name.strip_suffix(".shard")?;
    let mut parts = rest.split('-');
    let round = parts.next()?.strip_prefix('r')?.parse().ok()?;
    let kind: u8 = parts.next()?.strip_prefix('k')?.parse().ok()?;
    let mailbox = parts.next()?.strip_prefix('m')?.parse().ok()?;
    let index = parts.next()?.strip_prefix('s')?.parse().ok()?;
    if parts.next().is_some() || kind > 1 {
        return None;
    }
    Some((round, kind, mailbox, index))
}

/// On-disk shard file: 12-byte geometry header, then the shard bytes.
fn encode_shard_file(header: &ShardHeader, shard: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + shard.len());
    out.extend_from_slice(&header.data_shards.to_be_bytes());
    out.extend_from_slice(&header.parity_shards.to_be_bytes());
    out.extend_from_slice(&header.blob_len.to_be_bytes());
    out.extend_from_slice(shard);
    out
}

fn decode_shard_file(bytes: &[u8]) -> Option<(ShardHeader, Vec<u8>)> {
    if bytes.len() < 12 {
        return None;
    }
    let header = ShardHeader {
        data_shards: u16::from_be_bytes(bytes[0..2].try_into().ok()?),
        parity_shards: u16::from_be_bytes(bytes[2..4].try_into().ok()?),
        blob_len: u64::from_be_bytes(bytes[4..12].try_into().ok()?),
    };
    if header.data_shards == 0 {
        return None;
    }
    Some((header, bytes[12..].to_vec()))
}

/// A handle to a running [`serve`] loop.
pub struct CdnNodeHandle {
    local_addr: std::net::SocketAddr,
    state: Arc<Mutex<CdnNodeState>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
}

impl CdnNodeHandle {
    /// The bound listen address (with the OS-assigned port for `:0` binds).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The served node state, shared with the accept loop.
    pub fn state(&self) -> Arc<Mutex<CdnNodeState>> {
        Arc::clone(&self.state)
    }

    /// Kills the daemon: the listener closes (new connects are refused) and
    /// every open connection is dropped at its next frame without a
    /// response. Clients see exactly what a crashed `cdnd` process looks
    /// like. The node state survives in this handle, as it would on disk.
    pub fn shutdown(&self) {
        self.shutdown
            .store(true, std::sync::atomic::Ordering::SeqCst);
        // Wake the accept loop so it observes the flag and drops the
        // listener; the wake connection itself is refused service.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
    }
}

/// Serves `state` on `addr`: one framed [`CdnRequest`] → [`CdnResponse`]
/// exchange per frame, one thread per connection. Returns once the listener
/// is bound; accepting runs on a background thread until
/// [`CdnNodeHandle::shutdown`] (or for the life of the process).
pub fn serve(state: CdnNodeState, addr: &str) -> std::io::Result<CdnNodeHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let state = Arc::new(Mutex::new(state));
    let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let accept_state = Arc::clone(&state);
    let accept_shutdown = Arc::clone(&shutdown);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(std::sync::atomic::Ordering::SeqCst) {
                return; // drops the listener: connects now refused
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&accept_state);
            let shutdown = Arc::clone(&accept_shutdown);
            std::thread::spawn(move || serve_connection(stream, state, shutdown));
        }
    });
    Ok(CdnNodeHandle {
        local_addr,
        state,
        shutdown,
    })
}

/// Read/write timeout per connection.
const CONNECTION_IO_TIMEOUT: Duration = Duration::from_secs(60);

fn serve_connection(
    mut stream: TcpStream,
    state: Arc<Mutex<CdnNodeState>>,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(CONNECTION_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(CONNECTION_IO_TIMEOUT));
    loop {
        let (payload, correlation) = match Frame::read_from_with_telemetry(&mut stream) {
            Ok(read) => read,
            Err(_) => return,
        };
        if shutdown.load(std::sync::atomic::Ordering::SeqCst) {
            // A killed daemon never answers: drop the connection mid-request.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
        let response = {
            let mut state = state.lock().expect("cdn node state mutex");
            state.handle_request_bytes_with_correlation(&payload, correlation)
        };
        if Frame::write_to(&mut stream, &response).is_err() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return;
        }
    }
}

/// A connect helper with the node's defaults (used by
/// [`TcpNode`](crate::client::TcpNode)).
pub(crate) fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    let mut last = None;
    for candidate in std::net::ToSocketAddrs::to_socket_addrs(addr)? {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(CONNECTION_IO_TIMEOUT))?;
                stream.set_write_timeout(Some(CONNECTION_IO_TIMEOUT))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, "address resolved to no candidates")
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_wire::MailboxId;

    fn header() -> ShardHeader {
        ShardHeader {
            data_shards: 3,
            parity_shards: 1,
            blob_len: 10,
        }
    }

    fn put(round: u64, index: u16, fill: u8) -> CdnRequest {
        CdnRequest::PutShard {
            kind: RoundKind::AddFriend,
            round: Round(round),
            mailbox: MailboxId(0),
            index,
            header: header(),
            shard: vec![fill; 4],
        }
    }

    #[test]
    fn put_get_expire_lifecycle() {
        let mut node = CdnNodeState::new();
        assert_eq!(node.handle(put(1, 0, 0xaa)), CdnResponse::Ack);
        assert_eq!(node.handle(put(2, 1, 0xbb)), CdnResponse::Ack);
        let got = node.handle(CdnRequest::GetShard {
            kind: RoundKind::AddFriend,
            round: Round(1),
            mailbox: MailboxId(0),
            index: 0,
        });
        assert_eq!(
            got,
            CdnResponse::Shard {
                header: header(),
                shard: vec![0xaa; 4]
            }
        );
        assert_eq!(
            node.handle(CdnRequest::Expire {
                keep_from: Round(2)
            }),
            CdnResponse::Ack
        );
        assert_eq!(
            node.handle(CdnRequest::GetShard {
                kind: RoundKind::AddFriend,
                round: Round(1),
                mailbox: MailboxId(0),
                index: 0,
            }),
            CdnResponse::NotFound
        );
        match node.handle(CdnRequest::GetStats) {
            CdnResponse::Stats {
                shards_stored,
                shard_fetches,
                bytes_served,
                ..
            } => {
                assert_eq!(shards_stored, 1);
                assert_eq!(shard_fetches, 1);
                assert_eq!(bytes_served, 4);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_shard_index_is_a_typed_error() {
        let mut node = CdnNodeState::new();
        let response = node.handle(CdnRequest::PutShard {
            kind: RoundKind::Dialing,
            round: Round(1),
            mailbox: MailboxId(0),
            index: 4, // 3 + 1 encoding: valid indices are 0..4
            header: header(),
            shard: vec![0u8; 4],
        });
        assert!(matches!(response, CdnResponse::Error(_)), "{response:?}");
    }

    #[test]
    fn data_dir_survives_a_restart() {
        let dir = std::env::temp_dir().join(format!("cdnd-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut node = CdnNodeState::with_data_dir(&dir).unwrap();
            node.handle(put(3, 2, 0xcc));
        }
        let mut reborn = CdnNodeState::with_data_dir(&dir).unwrap();
        assert_eq!(
            reborn.handle(CdnRequest::GetShard {
                kind: RoundKind::AddFriend,
                round: Round(3),
                mailbox: MailboxId(0),
                index: 2,
            }),
            CdnResponse::Shard {
                header: header(),
                shard: vec![0xcc; 4]
            }
        );
        // Expiry removes the on-disk mirror too.
        reborn.handle(CdnRequest::Expire {
            keep_from: Round(4),
        });
        let third = CdnNodeState::with_data_dir(&dir).unwrap();
        assert_eq!(third.shards_stored(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undecodable_requests_keep_the_node_alive() {
        let mut node = CdnNodeState::new();
        let bytes = node.handle_request_bytes(&[0xff, 0x01]);
        assert!(matches!(
            CdnResponse::decode(&bytes).unwrap(),
            CdnResponse::Error(_)
        ));
    }
}
