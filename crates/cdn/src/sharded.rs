//! The any-k-of-n layer: publish mailbox blobs as erasure shards across a
//! node fleet, read them back from whichever nodes answer.

use std::sync::{Arc, Mutex, OnceLock};

use alpenhorn_erasure::{encode, reconstruct, CodeParams};
use alpenhorn_obs::{Counter, SpanGuard};
use alpenhorn_wire::{CdnRequest, CdnResponse, MailboxId, Round, RoundKind, ShardHeader};

use crate::client::NodeClient;
use crate::error::CdnError;

/// Reader/publisher-side counters for the sharded layer, kept in the shared
/// registry so the erasure-coded deployment's accounting is visible next to
/// the coordinator's origin-serving counters.
struct ShardedMetrics {
    publishes: Arc<Counter>,
    publish_failures: Arc<Counter>,
    fetches: Arc<Counter>,
    shard_fetches: Arc<Counter>,
    data_bytes: Arc<Counter>,
    parity_bytes: Arc<Counter>,
    parity_decodes: Arc<Counter>,
}

fn sharded_metrics() -> &'static ShardedMetrics {
    static METRICS: OnceLock<ShardedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = alpenhorn_obs::global();
        ShardedMetrics {
            publishes: r.counter("cdn_publishes_total", &[]),
            publish_failures: r.counter("cdn_publish_shard_failures_total", &[]),
            fetches: r.counter("cdn_fetches_total", &[]),
            shard_fetches: r.counter("cdn_shard_fetches_total", &[]),
            data_bytes: r.counter("cdn_fetch_data_bytes_total", &[]),
            parity_bytes: r.counter("cdn_fetch_parity_bytes_total", &[]),
            parity_decodes: r.counter("cdn_parity_decodes_total", &[]),
        }
    })
}

/// What a publish actually landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishOutcome {
    /// Shards acknowledged by their nodes.
    pub stored: usize,
    /// Shards whose put failed (node down or erroring).
    pub failed: usize,
}

/// One reconstructed blob plus the accounting a serving layer needs:
/// how many bytes came from data shards vs parity shards, and how many
/// shard fetches it took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchOutcome {
    /// The reconstructed blob, or `None` if no node holds any shard of it.
    pub blob: Option<Vec<u8>>,
    /// Bytes fetched from data shards.
    pub data_bytes: u64,
    /// Bytes fetched from parity shards (only nonzero when nodes were lost).
    pub parity_bytes: u64,
    /// Shard fetches that returned bytes.
    pub shard_fetches: u64,
}

/// A fleet of CDN nodes holding each blob as `k` data + `m` parity shards,
/// shard `i` on node `i mod n`.
///
/// Reads are data-first: with all nodes up, a blob is the concatenation of
/// its `k` data shards and no decoding happens at all. When nodes are lost,
/// the missing rows are rebuilt from parity by the shift-XOR code — still
/// XOR-only, no field arithmetic. Any `k` surviving shards suffice as long
/// as at most `m` are gone.
///
/// Node handles live behind per-node mutexes so a shared reader (`&self`)
/// can fetch concurrently — matching the coordinator's lock-free read path,
/// where mailbox fetches must not serialize behind a service-wide lock.
pub struct ShardedCdn {
    nodes: Vec<Mutex<Box<dyn NodeClient>>>,
    params: CodeParams,
}

impl ShardedCdn {
    /// Creates the layer over `nodes` with a `data` + `parity` code.
    /// Panics if there are no nodes or the shape is degenerate, like the
    /// mix chain does on an empty server list.
    pub fn new(nodes: Vec<Box<dyn NodeClient>>, data: usize, parity: usize) -> Self {
        assert!(!nodes.is_empty(), "a CDN needs at least one node");
        assert!(data >= 1, "erasure coding needs at least one data shard");
        ShardedCdn {
            nodes: nodes.into_iter().map(Mutex::new).collect(),
            params: CodeParams::new(data, parity),
        }
    }

    /// Number of nodes in the fleet.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The coding shape `(data, parity)`.
    pub fn params(&self) -> (usize, usize) {
        (self.params.data, self.params.parity)
    }

    fn node_for(&self, shard_index: usize) -> &Mutex<Box<dyn NodeClient>> {
        &self.nodes[shard_index % self.nodes.len()]
    }

    fn call_node(&self, shard_index: usize, request: &CdnRequest) -> Result<CdnResponse, CdnError> {
        self.node_for(shard_index)
            .lock()
            .expect("cdn node handle mutex")
            .call(request)
    }

    /// Severs node `index`'s transport (scenario hooks; loopback nodes may
    /// interpret this via their liveness switch instead).
    pub fn disconnect_node(&self, index: usize) {
        self.nodes[index % self.nodes.len()]
            .lock()
            .expect("cdn node handle mutex")
            .disconnect();
    }

    /// Encodes `blob` and stores its shards across the fleet. Succeeds as
    /// long as enough shards landed that any future reader can reconstruct
    /// (at most `m` failures); more failures than that is
    /// [`CdnError::PublishDegraded`].
    pub fn publish(
        &self,
        kind: RoundKind,
        round: Round,
        mailbox: MailboxId,
        blob: &[u8],
    ) -> Result<PublishOutcome, CdnError> {
        let _span = SpanGuard::begin(
            "coordinator",
            "cdn_publish",
            alpenhorn_obs::correlation_id(kind.code(), round.0),
        );
        let shards = encode(&self.params, blob);
        let header = ShardHeader {
            data_shards: self.params.data as u16,
            parity_shards: self.params.parity as u16,
            blob_len: blob.len() as u64,
        };
        let mut outcome = PublishOutcome {
            stored: 0,
            failed: 0,
        };
        for (index, shard) in shards.into_iter().enumerate() {
            let request = CdnRequest::PutShard {
                kind,
                round,
                mailbox,
                index: index as u16,
                header,
                shard,
            };
            match self.call_node(index, &request) {
                Ok(CdnResponse::Ack) => outcome.stored += 1,
                Ok(_) | Err(_) => outcome.failed += 1,
            }
        }
        let m = sharded_metrics();
        m.publishes.inc();
        m.publish_failures.add(outcome.failed as u64);
        if outcome.failed > self.params.parity {
            return Err(CdnError::PublishDegraded {
                stored: outcome.stored,
                failed: outcome.failed,
            });
        }
        Ok(outcome)
    }

    /// Fetches and reconstructs one blob: data shards first (straight
    /// concatenation when all `k` answer), parity fallback when nodes are
    /// lost. `Ok` with `blob: None` means no node holds any shard — the
    /// blob was never published or has expired everywhere.
    pub fn fetch(
        &self,
        kind: RoundKind,
        round: Round,
        mailbox: MailboxId,
    ) -> Result<FetchOutcome, CdnError> {
        let _span = SpanGuard::begin(
            "client",
            "cdn_fetch",
            alpenhorn_obs::correlation_id(kind.code(), round.0),
        );
        let k = self.params.data;
        let total = self.params.total();
        let mut slots: Vec<Option<Vec<u8>>> = vec![None; total];
        let mut outcome = FetchOutcome {
            blob: None,
            data_bytes: 0,
            parity_bytes: 0,
            shard_fetches: 0,
        };
        let mut header: Option<ShardHeader> = None;
        let mut any_answered = false;
        let mut missing_data = 0usize;

        let try_shard = |index: usize,
                         slots: &mut Vec<Option<Vec<u8>>>,
                         outcome: &mut FetchOutcome,
                         header: &mut Option<ShardHeader>,
                         any_answered: &mut bool|
         -> bool {
            let request = CdnRequest::GetShard {
                kind,
                round,
                mailbox,
                index: index as u16,
            };
            match self.call_node(index, &request) {
                Ok(CdnResponse::Shard { header: got, shard }) => {
                    *any_answered = true;
                    outcome.shard_fetches += 1;
                    if index < k {
                        outcome.data_bytes += shard.len() as u64;
                    } else {
                        outcome.parity_bytes += shard.len() as u64;
                    }
                    header.get_or_insert(got);
                    slots[index] = Some(shard);
                    true
                }
                Ok(CdnResponse::NotFound) => {
                    *any_answered = true;
                    false
                }
                Ok(_) | Err(_) => false,
            }
        };

        for index in 0..k {
            if !try_shard(
                index,
                &mut slots,
                &mut outcome,
                &mut header,
                &mut any_answered,
            ) {
                missing_data += 1;
            }
        }
        // Parity fallback: one extra shard per missing data shard.
        let mut parity_index = k;
        let mut recovered = 0usize;
        while recovered < missing_data && parity_index < total {
            if try_shard(
                parity_index,
                &mut slots,
                &mut outcome,
                &mut header,
                &mut any_answered,
            ) {
                recovered += 1;
            }
            parity_index += 1;
        }

        let m = sharded_metrics();
        m.fetches.inc();
        m.shard_fetches.add(outcome.shard_fetches);
        m.data_bytes.add(outcome.data_bytes);
        m.parity_bytes.add(outcome.parity_bytes);

        let Some(header) = header else {
            if any_answered {
                // Nodes are up but hold nothing: expired or never published.
                return Ok(outcome);
            }
            return Err(CdnError::Io {
                kind: std::io::ErrorKind::ConnectionRefused,
                detail: "no cdn node answered".to_string(),
            });
        };
        // Trust the stored geometry over our own config: readers must
        // decode blobs published under a different shape.
        let params = CodeParams::new(header.data_shards as usize, header.parity_shards as usize);
        if outcome.parity_bytes > 0 {
            m.parity_decodes.inc();
        }
        let mut stored_slots = slots;
        stored_slots.resize(params.total(), None);
        let blob = reconstruct(&params, header.blob_len as usize, &stored_slots)
            .map_err(CdnError::NotEnoughShards)?;
        outcome.blob = Some(blob);
        Ok(outcome)
    }

    /// Tells every node to drop shards for rounds before `keep_from`.
    /// Best-effort: downed nodes expire on their own next restart cycle.
    pub fn expire_before(&self, keep_from: Round) {
        let request = CdnRequest::Expire { keep_from };
        for index in 0..self.nodes.len() {
            let _ = self.call_node(index, &request);
        }
    }

    /// Sums the serving counters across reachable nodes.
    pub fn stats(&self) -> CdnFleetStats {
        let mut stats = CdnFleetStats::default();
        for index in 0..self.nodes.len() {
            if let Ok(CdnResponse::Stats {
                shards_stored,
                bytes_stored,
                shard_fetches,
                bytes_served,
            }) = self.call_node(index, &CdnRequest::GetStats)
            {
                stats.nodes_reporting += 1;
                stats.shards_stored += shards_stored;
                stats.bytes_stored += bytes_stored;
                stats.shard_fetches += shard_fetches;
                stats.bytes_served += bytes_served;
            }
        }
        stats
    }
}

/// Fleet-wide serving counters (sum over reachable nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CdnFleetStats {
    /// Nodes that answered the stats request.
    pub nodes_reporting: usize,
    /// Shards stored across the fleet.
    pub shards_stored: u64,
    /// Bytes stored across the fleet.
    pub bytes_stored: u64,
    /// Shard fetches served across the fleet.
    pub shard_fetches: u64,
    /// Shard bytes served across the fleet.
    pub bytes_served: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LoopbackNode;

    fn fleet(n: usize) -> (ShardedCdn, Vec<LoopbackNode>) {
        let handles: Vec<LoopbackNode> = (0..n).map(|_| LoopbackNode::new()).collect();
        let nodes: Vec<Box<dyn NodeClient>> = handles
            .iter()
            .map(|h| Box::new(h.clone_handle()) as Box<dyn NodeClient>)
            .collect();
        (ShardedCdn::new(nodes, 3, 1), handles)
    }

    #[test]
    fn publish_then_fetch_uses_data_shards_only() {
        let (cdn, _handles) = fleet(4);
        let blob: Vec<u8> = (0..100u8).collect();
        let outcome = cdn
            .publish(RoundKind::AddFriend, Round(1), MailboxId(0), &blob)
            .unwrap();
        assert_eq!(
            outcome,
            PublishOutcome {
                stored: 4,
                failed: 0
            }
        );
        let fetched = cdn
            .fetch(RoundKind::AddFriend, Round(1), MailboxId(0))
            .unwrap();
        assert_eq!(fetched.blob.as_deref(), Some(blob.as_slice()));
        assert_eq!(fetched.parity_bytes, 0, "healthy fleet never reads parity");
        assert_eq!(fetched.shard_fetches, 3);
    }

    #[test]
    fn one_lost_node_falls_back_to_parity() {
        let (cdn, handles) = fleet(4);
        let blob: Vec<u8> = (0..77u8).collect();
        cdn.publish(RoundKind::Dialing, Round(2), MailboxId(3), &blob)
            .unwrap();
        // Node 1 holds data shard 1; kill it.
        handles[1].set_alive(false);
        let fetched = cdn
            .fetch(RoundKind::Dialing, Round(2), MailboxId(3))
            .unwrap();
        assert_eq!(fetched.blob.as_deref(), Some(blob.as_slice()));
        assert!(fetched.parity_bytes > 0, "parity must cover the lost node");
    }

    #[test]
    fn two_lost_nodes_exceed_the_parity_budget() {
        let (cdn, handles) = fleet(4);
        cdn.publish(RoundKind::AddFriend, Round(3), MailboxId(0), &[1, 2, 3])
            .unwrap();
        handles[0].set_alive(false);
        handles[1].set_alive(false);
        let err = cdn.fetch(RoundKind::AddFriend, Round(3), MailboxId(0));
        assert!(matches!(err, Err(CdnError::NotEnoughShards(_))), "{err:?}");
    }

    #[test]
    fn unpublished_blob_is_none_not_an_error() {
        let (cdn, _handles) = fleet(4);
        let fetched = cdn
            .fetch(RoundKind::AddFriend, Round(9), MailboxId(0))
            .unwrap();
        assert_eq!(fetched.blob, None);
        assert_eq!(fetched.shard_fetches, 0);
    }

    #[test]
    fn publish_tolerates_at_most_parity_node_failures() {
        let (cdn, handles) = fleet(4);
        handles[2].set_alive(false);
        let outcome = cdn
            .publish(RoundKind::AddFriend, Round(4), MailboxId(0), &[9; 50])
            .unwrap();
        assert_eq!(
            outcome,
            PublishOutcome {
                stored: 3,
                failed: 1
            }
        );
        handles[3].set_alive(false);
        let err = cdn.publish(RoundKind::AddFriend, Round(5), MailboxId(0), &[9; 50]);
        assert!(
            matches!(
                err,
                Err(CdnError::PublishDegraded {
                    stored: 2,
                    failed: 2
                })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn expire_drops_old_rounds_fleet_wide() {
        let (cdn, _handles) = fleet(4);
        cdn.publish(RoundKind::AddFriend, Round(1), MailboxId(0), &[1; 30])
            .unwrap();
        cdn.publish(RoundKind::AddFriend, Round(5), MailboxId(0), &[2; 30])
            .unwrap();
        cdn.expire_before(Round(5));
        assert_eq!(
            cdn.fetch(RoundKind::AddFriend, Round(1), MailboxId(0))
                .unwrap()
                .blob,
            None
        );
        assert!(cdn
            .fetch(RoundKind::AddFriend, Round(5), MailboxId(0))
            .unwrap()
            .blob
            .is_some());
        let stats = cdn.stats();
        assert_eq!(stats.nodes_reporting, 4);
        assert_eq!(stats.shards_stored, 4);
    }
}
