//! Client handles to one CDN node: loopback or remote.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use alpenhorn_wire::{CdnRequest, CdnResponse, Frame};

use crate::error::CdnError;
use crate::node::{connect, CdnNodeState};

/// A readers-and-writers view of one CDN node.
///
/// Puts and gets are idempotent, so any implementation may retry freely
/// after transport failures.
pub trait NodeClient: Send {
    /// One request/response exchange.
    fn call(&mut self, request: &CdnRequest) -> Result<CdnResponse, CdnError>;

    /// Severs the transport (if any); the next call re-establishes it.
    fn disconnect(&mut self) {}
}

/// An in-process node sharing state with (possibly) other handles, plus a
/// liveness switch — the scenario engine's cdn-node-loss lever. A downed
/// node fails every call with a connection-refused I/O error, exactly what
/// a TCP client sees when a `cdnd` process dies.
pub struct LoopbackNode {
    state: Arc<Mutex<CdnNodeState>>,
    alive: Arc<AtomicBool>,
}

impl Default for LoopbackNode {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopbackNode {
    /// A fresh memory-only node.
    pub fn new() -> Self {
        Self::with_state(Arc::new(Mutex::new(CdnNodeState::new())))
    }

    /// A handle over existing shared node state.
    pub fn with_state(state: Arc<Mutex<CdnNodeState>>) -> Self {
        LoopbackNode {
            state,
            alive: Arc::new(AtomicBool::new(true)),
        }
    }

    /// The shared node state (inspection and extra handles).
    pub fn state(&self) -> Arc<Mutex<CdnNodeState>> {
        Arc::clone(&self.state)
    }

    /// The liveness switch, cloneable into scenario hooks: `false` makes
    /// every call on every handle fail like a dead TCP peer.
    pub fn liveness(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.alive)
    }

    /// Flips the node up or down.
    pub fn set_alive(&self, alive: bool) {
        self.alive.store(alive, Ordering::SeqCst);
    }

    /// A second handle to the same node (same state, same liveness switch).
    pub fn clone_handle(&self) -> Self {
        LoopbackNode {
            state: Arc::clone(&self.state),
            alive: Arc::clone(&self.alive),
        }
    }
}

impl NodeClient for LoopbackNode {
    fn call(&mut self, request: &CdnRequest) -> Result<CdnResponse, CdnError> {
        if !self.alive.load(Ordering::SeqCst) {
            return Err(CdnError::Io {
                kind: std::io::ErrorKind::ConnectionRefused,
                detail: "cdn node is down".to_string(),
            });
        }
        // Through the full codec both ways, like a socket would be.
        let request = CdnRequest::decode(&request.encode())?;
        let response = {
            let mut state = self.state.lock().expect("cdn node state mutex");
            state.handle(request)
        };
        Ok(CdnResponse::decode(&response.encode())?)
    }
}

/// A framed TCP connection to one `cdnd` daemon.
///
/// Connections are lazy and dropped on any failure; the next call
/// reconnects. Unlike the mixer handles, a `TcpNode` does **not** retry
/// internally: the interesting recovery at this layer is *redundancy* — the
/// sharded reader falls back to parity shards on other nodes — so one
/// attempt per node is the right policy and dead nodes cost one timeout,
/// not a backoff ladder.
pub struct TcpNode {
    addr: String,
    stream: Option<TcpStream>,
    connect_timeout: Duration,
}

impl TcpNode {
    /// Default bound on one connection attempt.
    pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

    /// Creates a handle to the daemon at `addr`. Does not connect yet.
    pub fn new(addr: impl Into<String>) -> Self {
        TcpNode {
            addr: addr.into(),
            stream: None,
            connect_timeout: Self::DEFAULT_CONNECT_TIMEOUT,
        }
    }

    /// The daemon address this handle dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }
}

impl NodeClient for TcpNode {
    fn call(&mut self, request: &CdnRequest) -> Result<CdnResponse, CdnError> {
        if self.stream.is_none() {
            self.stream = Some(connect(&self.addr, self.connect_timeout)?);
        }
        let stream = self.stream.as_mut().expect("connected above");
        // Round-scoped requests carry the round's correlation id in the
        // frame's telemetry field so the node's span joins the round trace.
        let correlation = request
            .round_scope()
            .map(|(kind, round)| alpenhorn_obs::correlation_id(kind.code(), round.0));
        let result: Result<CdnResponse, CdnError> = (|| {
            Frame::write_to_with_telemetry(stream, &request.encode(), correlation)?;
            let response = Frame::read_from(stream)?;
            Ok(CdnResponse::decode(&response)?)
        })();
        if result.is_err() {
            // The stream offset can no longer be trusted; reconnect next call.
            self.stream = None;
        }
        result
    }

    fn disconnect(&mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_wire::{MailboxId, Round, RoundKind, ShardHeader};

    #[test]
    fn downed_loopback_node_fails_like_a_dead_peer() {
        let mut node = LoopbackNode::new();
        let request = CdnRequest::GetShard {
            kind: RoundKind::AddFriend,
            round: Round(1),
            mailbox: MailboxId(0),
            index: 0,
        };
        assert_eq!(node.call(&request), Ok(CdnResponse::NotFound));
        node.set_alive(false);
        assert!(matches!(node.call(&request), Err(CdnError::Io { .. })));
        node.set_alive(true);
        assert_eq!(node.call(&request), Ok(CdnResponse::NotFound));
    }

    #[test]
    fn handles_share_state_and_liveness() {
        let node = LoopbackNode::new();
        let mut other = node.clone_handle();
        other
            .call(&CdnRequest::PutShard {
                kind: RoundKind::Dialing,
                round: Round(2),
                mailbox: MailboxId(1),
                index: 0,
                header: ShardHeader {
                    data_shards: 1,
                    parity_shards: 0,
                    blob_len: 3,
                },
                shard: vec![1, 2, 3],
            })
            .unwrap();
        assert_eq!(node.state().lock().unwrap().shards_stored(), 1);
        node.set_alive(false);
        assert!(matches!(
            other.call(&CdnRequest::GetStats),
            Err(CdnError::Io { .. })
        ));
    }

    #[test]
    fn tcp_node_round_trips_against_a_served_node() {
        let handle = crate::node::serve(CdnNodeState::new(), "127.0.0.1:0").unwrap();
        let mut client = TcpNode::new(handle.local_addr().to_string());
        assert_eq!(
            client.call(&CdnRequest::GetStats),
            Ok(CdnResponse::Stats {
                shards_stored: 0,
                bytes_stored: 0,
                shard_fetches: 0,
                bytes_served: 0,
            })
        );
        // A severed connection re-establishes transparently.
        client.disconnect();
        assert!(client.call(&CdnRequest::GetStats).is_ok());
    }
}
