//! Lock-free metric primitives: counters, gauges, and a log-scale histogram.
//!
//! Every primitive is a thin wrapper over [`AtomicU64`] with relaxed
//! ordering — observation sites pay one atomic RMW, never a lock, so
//! instrumentation can sit on hot paths (RPC dispatch, WAL appends, shard
//! fetches) without perturbing timing-sensitive code. Values are monotone
//! (counters, histogram cells) or last-write-wins (gauges); exact cross-cell
//! consistency under concurrent snapshots is explicitly not promised.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zeroed counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, open connections, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A fresh zeroed gauge.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`, saturating at zero (a racing decrement past
    /// zero must not wrap to 2^64).
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts observations with
/// `value < 2^i` (cumulatively exposed), the last bucket is `+Inf`.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket log-scale (powers of two) histogram.
///
/// Values land in the bucket whose upper bound `2^i` first exceeds them:
/// 0 → bucket 0 (`le="1"`), 1 → bucket 1 (`le="2"`), 1500 → bucket 11
/// (`le="2048"`), anything at or beyond `2^31` → the `+Inf` bucket. The
/// canonical unit for durations is microseconds, giving useful resolution
/// from 1 µs to ~35 minutes in 32 cells.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh zeroed histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn bucket_index(value: u64) -> usize {
        // floor(log2(value)) + 1, clamped: the first bucket with 2^i > value.
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the elapsed time since `start`, in microseconds.
    pub fn observe_since(&self, start: Instant) {
        self.observe(start.elapsed().as_micros() as u64);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, lowest bound first.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The exposition upper bound for bucket `i` (`None` = `+Inf`).
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i + 1 < HISTOGRAM_BUCKETS).then(|| 1u64 << i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_saturates_at_zero() {
        let g = Gauge::new();
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), 0);
        g.set(9);
        g.sub(2);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        let buckets = h.buckets();
        assert_eq!(buckets[0], 1); // 0 < 1
        assert_eq!(buckets[1], 1); // 1 < 2
        assert_eq!(buckets[2], 2); // 2, 3 < 4
        assert_eq!(buckets[11], 1); // 1024 < 2048
        assert_eq!(buckets[HISTOGRAM_BUCKETS - 1], 1); // +Inf
    }

    #[test]
    fn bucket_bounds_end_in_inf() {
        assert_eq!(Histogram::bucket_bound(0), Some(1));
        assert_eq!(Histogram::bucket_bound(11), Some(2048));
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
    }
}
