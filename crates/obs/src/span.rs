//! Lightweight span tracing with round-scoped correlation ids.
//!
//! A span is a named, timed interval tagged with the component that recorded
//! it (`"coordinator"`, `"mixd"`, `"cdn"`, `"client"`) and a correlation id.
//! The id for round work is [`correlation_id`]`(protocol, round)` — a pure
//! function of the round identity, so every process touching one round's
//! traffic derives (or receives over the wire) the *same* id without any
//! coordination, and a cross-process trace is just "all spans with this id".
//!
//! Spans live in a bounded global ring; recording is one short mutex hold
//! on a cold-ish path (round phases, shard ops — not per-onion work).
//! Timestamps are microseconds since process start and exist only for
//! humans: nothing deterministic may read them back.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How many finished spans the ring retains.
pub const SPAN_RING_CAPACITY: usize = 4096;

/// The correlation id shared by all work on one `(protocol, round)`.
///
/// `protocol` is the wire round-kind code (0 = add-friend, 1 = dialing).
/// The id is nonzero for every round, distinct across protocols, and
/// identical in every process that computes it — the whole point.
pub fn correlation_id(protocol: u8, round: u64) -> u64 {
    ((u64::from(protocol) + 1) << 56) | (round & 0x00ff_ffff_ffff_ffff)
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which process type recorded it (`"coordinator"`, `"mixd"`, `"cdn"`, ...).
    pub component: &'static str,
    /// What the interval covered (`"mix.round"`, `"cdn.put_shard"`, ...).
    pub name: &'static str,
    /// [`correlation_id`] of the round this work belonged to (0 = unknown).
    pub correlation: u64,
    /// Start, microseconds since process start.
    pub start_us: u64,
    /// Duration in microseconds.
    pub duration_us: u64,
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(SPAN_RING_CAPACITY)))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn push(record: SpanRecord) {
    let mut ring = ring().lock().expect("span ring lock");
    if ring.len() == SPAN_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(record);
}

/// All retained spans, oldest first.
pub fn spans() -> Vec<SpanRecord> {
    ring()
        .lock()
        .expect("span ring lock")
        .iter()
        .cloned()
        .collect()
}

/// Retained spans recorded by one component, oldest first. In a real
/// deployment each process only ever holds its own; this filter makes
/// single-process tests (where all components share the ring) behave the
/// same way.
pub fn spans_for(component: &str) -> Vec<SpanRecord> {
    ring()
        .lock()
        .expect("span ring lock")
        .iter()
        .filter(|s| s.component == component)
        .cloned()
        .collect()
}

/// Drops every retained span (test isolation).
pub fn clear_spans() {
    ring().lock().expect("span ring lock").clear();
}

/// An open span: records itself into the ring when dropped.
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    component: &'static str,
    name: &'static str,
    correlation: u64,
    start_us: u64,
    started: Instant,
}

impl SpanGuard {
    /// Opens a span; `correlation` 0 means "not round-scoped".
    pub fn begin(component: &'static str, name: &'static str, correlation: u64) -> Self {
        let started = Instant::now();
        SpanGuard {
            component,
            name,
            correlation,
            start_us: started.duration_since(epoch()).as_micros() as u64,
            started,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        push(SpanRecord {
            component: self.component,
            name: self.name,
            correlation: self.correlation,
            start_us: self.start_us,
            duration_us: self.started.elapsed().as_micros() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_ids_are_distinct_and_stable() {
        assert_eq!(correlation_id(0, 7), correlation_id(0, 7));
        assert_ne!(correlation_id(0, 7), correlation_id(1, 7));
        assert_ne!(correlation_id(0, 7), correlation_id(0, 8));
        assert_ne!(correlation_id(0, 0), 0);
        assert_ne!(correlation_id(1, 0), 0);
    }

    // These tests share one global ring with any concurrently running test,
    // so they only assert on their own uniquely-named components and on the
    // capacity bound, never on global totals.

    #[test]
    fn guard_records_on_drop_and_filters_by_component() {
        {
            let _a = SpanGuard::begin("testproc-guard", "op.one", correlation_id(0, 1));
            let _b = SpanGuard::begin("otherproc-guard", "op.two", 0);
        }
        let mine = spans_for("testproc-guard");
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].name, "op.one");
        assert_eq!(mine[0].correlation, correlation_id(0, 1));
        assert_eq!(spans_for("otherproc-guard").len(), 1);
    }

    #[test]
    fn ring_is_bounded() {
        for _ in 0..(SPAN_RING_CAPACITY + 10) {
            drop(SpanGuard::begin("bound", "op", 0));
        }
        assert!(spans().len() <= SPAN_RING_CAPACITY);
        assert!(!spans_for("bound").is_empty());
    }
}
