//! Observability core for the Alpenhorn workspace.
//!
//! Everything here is built on the standard library only (no crates.io
//! dependencies) and is **strictly outside the deterministic core**: metrics
//! and spans observe the system, they never feed protocol RNG, round bytes,
//! or client event streams. The equivalence suites (transport, shard,
//! distributed, chaos, scenario replay) run with this instrumentation
//! compiled in and enabled, and still demand byte-identical outputs — that
//! is the determinism contract, documented in `docs/OBSERVABILITY.md`.
//!
//! Three layers:
//!
//! * [`metrics`] — lock-free [`Counter`]/[`Gauge`] on atomics and a
//!   fixed-bucket log-scale [`Histogram`], grouped in a [`Registry`] with a
//!   stable Prometheus-style text exposition.
//! * [`span`] — a bounded ring of lightweight spans tagged with a
//!   correlation id derived from `(protocol, round)`, so one add-friend
//!   round can be traced coordinator → mixd chain → CDN publish → client
//!   fetch across process boundaries.
//! * [`log`] — leveled, timestamped, target-tagged logging macros for the
//!   daemon binaries; quiet by default so tests stay silent.

pub mod log;
pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{global, spawn_metrics_dump, MetricsSnapshot, Registry};
pub use span::{clear_spans, correlation_id, spans, spans_for, SpanGuard, SpanRecord};
