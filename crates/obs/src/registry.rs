//! The metric registry: named, labeled metric families with a stable text
//! exposition and cheap snapshots/deltas.
//!
//! Registration is idempotent — asking twice for the same `(name, labels)`
//! returns the same shared handle — so instrumentation sites can cache the
//! `Arc` in a `OnceLock` or just re-ask. The hot lookup path takes one
//! `RwLock` read and compares labels without allocating, so repeated
//! registration from a dispatch loop costs a map probe, not a clone storm.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// A handle to one registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric family: every labeling of a single metric name.
#[derive(Debug, Default)]
struct Family {
    entries: Vec<(Vec<(String, String)>, Metric)>,
}

impl Family {
    fn find(&self, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.entries
            .iter()
            .find(|(have, _)| {
                have.len() == labels.len()
                    && have
                        .iter()
                        .zip(labels)
                        .all(|((hk, hv), (k, v))| hk == k && hv == v)
            })
            .map(|(_, m)| m)
    }
}

/// A collection of named metrics with stable text exposition.
#[derive(Debug, Default)]
pub struct Registry {
    families: RwLock<BTreeMap<String, Family>>,
}

/// The process-wide registry every instrumented layer reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Spawns a detached thread that writes [`global`]'s text exposition to
/// stderr every `every`, fenced by `=== metrics [target] ===` marker lines.
/// Backs the daemons' `--metrics-dump-secs` flag; the flag itself is the
/// opt-in, so dumps bypass the log level.
pub fn spawn_metrics_dump(target: &'static str, every: std::time::Duration) {
    std::thread::spawn(move || loop {
        std::thread::sleep(every);
        eprint!(
            "=== metrics [{target}] ===\n{}=== end metrics [{target}] ===\n",
            global().expose()
        );
    });
}

impl Registry {
    /// A fresh empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        if let Some(found) = self
            .families
            .read()
            .expect("metric registry lock")
            .get(name)
            .and_then(|f| f.find(labels))
        {
            return found.clone();
        }
        let mut families = self.families.write().expect("metric registry lock");
        let family = families.entry(name.to_string()).or_default();
        if let Some(found) = family.find(labels) {
            return found.clone();
        }
        let metric = make();
        let owned: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        family.entries.push((owned, metric.clone()));
        metric
    }

    /// The counter `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} is registered as a non-counter"),
        }
    }

    /// The gauge `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} is registered as a non-gauge"),
        }
    }

    /// The histogram `name{labels}`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `(name, labels)` is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} is registered as a non-histogram"),
        }
    }

    /// Renders every metric in the stable Prometheus-style text format:
    /// `name{label="v"} value`, one sample per line, families and labelings
    /// in lexicographic order. Histograms expose cumulative `_bucket{le=..}`
    /// lines plus `_sum` and `_count`.
    pub fn expose(&self) -> String {
        let families = self.families.read().expect("metric registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let mut entries: Vec<&(Vec<(String, String)>, Metric)> =
                family.entries.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(&b.0));
            for (labels, metric) in entries {
                match metric {
                    Metric::Counter(c) => {
                        writeln!(out, "{}{} {}", name, render_labels(labels, None), c.get())
                            .expect("write to string");
                    }
                    Metric::Gauge(g) => {
                        writeln!(out, "{}{} {}", name, render_labels(labels, None), g.get())
                            .expect("write to string");
                    }
                    Metric::Histogram(h) => {
                        let buckets = h.buckets();
                        let mut cumulative = 0u64;
                        for (i, count) in buckets.iter().enumerate() {
                            cumulative += count;
                            if *count == 0 && i + 1 < buckets.len() {
                                continue; // keep the exposition compact
                            }
                            let le = match Histogram::bucket_bound(i) {
                                Some(bound) => bound.to_string(),
                                None => "+Inf".to_string(),
                            };
                            writeln!(
                                out,
                                "{}_bucket{} {}",
                                name,
                                render_labels(labels, Some(&le)),
                                cumulative
                            )
                            .expect("write to string");
                        }
                        writeln!(
                            out,
                            "{}_sum{} {}",
                            name,
                            render_labels(labels, None),
                            h.sum()
                        )
                        .expect("write to string");
                        writeln!(
                            out,
                            "{}_count{} {}",
                            name,
                            render_labels(labels, None),
                            h.count()
                        )
                        .expect("write to string");
                    }
                }
            }
        }
        out
    }

    /// Captures current values as a flat, ordered map. Counters and gauges
    /// contribute their value under `name{labels}`; histograms contribute
    /// `name_count{labels}` and `name_sum{labels}`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.read().expect("metric registry lock");
        let mut values = BTreeMap::new();
        for (name, family) in families.iter() {
            for (labels, metric) in &family.entries {
                let key = format!("{}{}", name, render_labels(labels, None));
                match metric {
                    Metric::Counter(c) => {
                        values.insert(key, c.get());
                    }
                    Metric::Gauge(g) => {
                        values.insert(key, g.get());
                    }
                    Metric::Histogram(h) => {
                        let bare = render_labels(labels, None);
                        values.insert(format!("{name}_count{bare}"), h.count());
                        values.insert(format!("{name}_sum{bare}"), h.sum());
                    }
                }
            }
        }
        MetricsSnapshot { values }
    }
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        write!(out, "{k}=\"{v}\"").expect("write to string");
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        write!(out, "le=\"{le}\"").expect("write to string");
    }
    out.push('}');
    out
}

/// A point-in-time flat capture of a [`Registry`], diffable against an
/// earlier capture to get per-round or per-phase activity.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `metric{labels}` → value, in stable lexicographic order.
    pub values: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// The keys whose values grew since `earlier`, with the increase.
    /// Unchanged and shrunk (gauge went down) keys are omitted, so the delta
    /// of a quiet interval is empty.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> Vec<(String, u64)> {
        self.values
            .iter()
            .filter_map(|(key, now)| {
                let before = earlier.values.get(key).copied().unwrap_or(0);
                (*now > before).then(|| (key.clone(), now - before))
            })
            .collect()
    }

    /// Value of one key (0 when absent).
    pub fn value(&self, key: &str) -> u64 {
        self.values.get(key).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("requests_total", &[("rpc", "submit")]);
        let b = r.counter("requests_total", &[("rpc", "submit")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        // A different labeling is a different metric.
        let c = r.counter("requests_total", &[("rpc", "fetch")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("depth", &[]);
        r.counter("depth", &[]);
    }

    #[test]
    fn exposition_is_stable_and_prometheus_shaped() {
        let r = Registry::new();
        r.counter("b_total", &[("k", "v")]).add(7);
        r.gauge("a_depth", &[]).set(3);
        let h = r.histogram("c_latency_us", &[]);
        h.observe(3);
        let text = r.expose();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "a_depth 3");
        assert_eq!(lines[1], "b_total{k=\"v\"} 7");
        assert!(lines.contains(&"c_latency_us_bucket{le=\"4\"} 1"));
        assert!(lines.contains(&"c_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(lines.contains(&"c_latency_us_sum 3"));
        assert!(lines.contains(&"c_latency_us_count 1"));
        // Byte-stable across repeated renders.
        assert_eq!(text, r.expose());
    }

    #[test]
    fn snapshot_delta_reports_only_growth() {
        let r = Registry::new();
        let c = r.counter("events_total", &[]);
        let g = r.gauge("depth", &[]);
        c.add(2);
        g.set(5);
        let before = r.snapshot();
        c.add(3);
        g.set(1); // shrunk: omitted from the delta
        let after = r.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta, vec![("events_total".to_string(), 3)]);
        assert_eq!(after.value("depth"), 1);
        assert_eq!(after.value("missing"), 0);
    }
}
