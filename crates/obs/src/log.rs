//! Leveled, timestamped, target-tagged logging for the daemon binaries.
//!
//! The global level defaults to [`Level::Warn`], so library code and test
//! processes stay quiet unless something is actually wrong; daemons raise it
//! from their `--log-level` flag. Output goes to stderr as
//!
//! ```text
//! 2026-08-08T12:34:56.789Z INFO  [alpenhornd] listening on 127.0.0.1:7107
//! ```
//!
//! Use the [`log_error!`](crate::log_error), [`log_warn!`](crate::log_warn),
//! [`log_info!`](crate::log_info), and [`log_debug!`](crate::log_debug)
//! macros; each takes a target tag and then `format!` arguments, and
//! evaluates its arguments only when the level is enabled.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first. [`Level::Off`] silences everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unrecoverable or data-affecting failures.
    Error = 1,
    /// Degraded but continuing.
    Warn = 2,
    /// Normal operational milestones.
    Info = 3,
    /// Per-operation chatter.
    Debug = 4,
}

impl Level {
    /// Parses a `--log-level` value (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s.to_ascii_lowercase().as_str() {
            "off" => Level::Off,
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" | "trace" => Level::Debug,
            _ => return None,
        })
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the global log level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global log level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a record at `at` would be emitted.
pub fn enabled(at: Level) -> bool {
    at != Level::Off && at <= level()
}

/// Emits one record (macro plumbing; call through the macros instead).
pub fn write(at: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(at) {
        return;
    }
    eprintln!("{} {:5} [{target}] {args}", timestamp(), at.tag());
}

/// Wall-clock UTC timestamp `YYYY-MM-DDTHH:MM:SS.mmmZ`, computed from the
/// Unix epoch by hand (no crates.io time dependency). Log timestamps are for
/// humans only — never read back by anything deterministic.
fn timestamp() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let secs = now.as_secs();
    let millis = now.subsec_millis();
    let days = secs / 86_400;
    let (year, month, day) = civil_from_days(days as i64);
    let rem = secs % 86_400;
    format!(
        "{year:04}-{month:02}-{day:02}T{:02}:{:02}:{:02}.{millis:03}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Days-since-epoch → (year, month, day), Howard Hinnant's civil algorithm.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Logs at [`Level::Error`]: `log_error!("target", "...", args)`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Error, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`]: `log_warn!("target", "...", args)`.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Warn, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`]: `log_info!("target", "...", args)`.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Info, $target, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`]: `log_debug!("target", "...", args)`.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::write($crate::log::Level::Debug, $target, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_flag_vocabulary() {
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn default_is_quiet_below_warn() {
        // The default level is Warn: info/debug are suppressed, so test
        // binaries that never call set_level stay silent.
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Debug));
    }

    #[test]
    fn civil_dates_are_correct() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // 2024-01-01
        assert_eq!(civil_from_days(20_678), (2026, 8, 13));
    }
}
