//! Hash-to-curve and hash-to-scalar helpers.
//!
//! Boneh-Franklin IBE needs a hash function mapping identity strings to G2
//! points whose discrete logarithm is unknown (otherwise anyone could derive
//! identity keys from the master public key), and BLS signatures need the
//! same into G1. This module implements the classic try-and-increment
//! method: hash the input together with a counter to a candidate
//! x-coordinate, attempt to decompress a curve point, and clear the cofactor
//! to land in the prime-order subgroup.
//!
//! Try-and-increment is not constant-time in the input, which is acceptable
//! here: the hashed values (identities, public round numbers, signed
//! messages) are not secrets.

use ark_bls12_381::{Fq, Fq2, Fr, G1Affine, G1Projective, G2Affine, G2Projective};
use ark_ec::AffineRepr;
use ark_ff::PrimeField;

use alpenhorn_crypto::sha256::Sha256;

/// Builds a hasher with the static prefix (version tag, domain length,
/// domain) absorbed, so the per-counter/per-block hashes replay it for free.
fn domain_base(domain: &[u8]) -> Sha256 {
    let mut h = Sha256::new();
    h.update(b"alpenhorn-hash-to-curve-v1");
    h.update(&(domain.len() as u32).to_be_bytes());
    h.update(domain);
    h
}

/// Derives `N` pseudorandom bytes from `(base, counter, msg)`, where `base`
/// is a [`domain_base`] hasher. Each 32-byte block clones the prepared base
/// instead of re-hashing the domain prefix.
fn expand<const N: usize>(base: &Sha256, counter: u32, msg: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    for (block, chunk) in out.chunks_mut(32).enumerate() {
        let mut h = base.clone();
        h.update(&counter.to_be_bytes());
        h.update(&(block as u32).to_be_bytes());
        h.update(msg);
        let digest = h.finalize();
        chunk.copy_from_slice(&digest[..chunk.len()]);
    }
    out
}

/// Hashes a message to a point in the G1 prime-order subgroup.
pub fn hash_to_g1(domain: &[u8], msg: &[u8]) -> G1Projective {
    let base = domain_base(domain);
    for counter in 0u32.. {
        let bytes: [u8; 49] = expand(&base, counter, msg);
        let x = Fq::from_be_bytes_mod_order(&bytes[..48]);
        let greatest = bytes[48] & 1 == 1;
        if let Some(p) = G1Affine::get_point_from_x_unchecked(x, greatest) {
            let cleared = p.clear_cofactor();
            if !cleared.is_zero() {
                return cleared.into();
            }
        }
    }
    unreachable!("try-and-increment terminates with overwhelming probability")
}

/// Hashes a message to a point in the G2 prime-order subgroup.
pub fn hash_to_g2(domain: &[u8], msg: &[u8]) -> G2Projective {
    let base = domain_base(domain);
    for counter in 0u32.. {
        let bytes: [u8; 97] = expand(&base, counter, msg);
        let c0 = Fq::from_be_bytes_mod_order(&bytes[..48]);
        let c1 = Fq::from_be_bytes_mod_order(&bytes[48..96]);
        let x = Fq2::new(c0, c1);
        let greatest = bytes[96] & 1 == 1;
        if let Some(p) = G2Affine::get_point_from_x_unchecked(x, greatest) {
            let cleared = p.clear_cofactor();
            if !cleared.is_zero() {
                return cleared.into();
            }
        }
    }
    unreachable!("try-and-increment terminates with overwhelming probability")
}

/// Hashes a message to a scalar in Fr.
pub fn hash_to_scalar(domain: &[u8], msg: &[u8]) -> Fr {
    let bytes: [u8; 64] = expand(&domain_base(domain), 0, msg);
    Fr::from_le_bytes_mod_order(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ark_ec::CurveGroup;

    #[test]
    fn g1_hash_deterministic_and_distinct() {
        let a = hash_to_g1(b"test", b"alice@example.com");
        let b = hash_to_g1(b"test", b"alice@example.com");
        let c = hash_to_g1(b"test", b"bob@example.com");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn g2_hash_deterministic_and_distinct() {
        let a = hash_to_g2(b"ibe", b"alice@example.com");
        let b = hash_to_g2(b"ibe", b"alice@example.com");
        let c = hash_to_g2(b"ibe", b"bob@example.com");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn domain_separation() {
        assert_ne!(hash_to_g1(b"d1", b"msg"), hash_to_g1(b"d2", b"msg"));
        assert_ne!(hash_to_g2(b"d1", b"msg"), hash_to_g2(b"d2", b"msg"));
        assert_ne!(hash_to_scalar(b"d1", b"msg"), hash_to_scalar(b"d2", b"msg"));
    }

    #[test]
    fn points_are_in_subgroup() {
        // Deserializing a compressed encoding checks subgroup membership, so a
        // round trip through the points module proves the hash output is valid.
        for msg in [&b"a"[..], b"b", b"carol@mit.edu", b""] {
            let p1 = hash_to_g1(b"subgroup", msg);
            let bytes = crate::points::g1_to_bytes(&p1);
            assert_eq!(crate::points::g1_from_bytes(&bytes).unwrap(), p1);

            let p2 = hash_to_g2(b"subgroup", msg);
            let bytes = crate::points::g2_to_bytes(&p2);
            assert_eq!(crate::points::g2_from_bytes(&bytes).unwrap(), p2);
        }
    }

    #[test]
    fn hash_points_not_identity() {
        assert!(!hash_to_g1(b"x", b"y").into_affine().is_zero());
        assert!(!hash_to_g2(b"x", b"y").into_affine().is_zero());
    }

    #[test]
    fn scalar_hash_deterministic() {
        assert_eq!(hash_to_scalar(b"s", b"m"), hash_to_scalar(b"s", b"m"));
        assert_ne!(hash_to_scalar(b"s", b"m"), hash_to_scalar(b"s", b"n"));
    }
}
