//! Anytrust-IBE: distributing the PKG across `n` servers so that one honest
//! server suffices (§4.2 and Appendix A of the paper).
//!
//! Instead of onion-encrypting under each PKG's master key (which would grow
//! ciphertexts and decryption time linearly in the number of PKGs), the
//! sender encrypts under the *sum* of the master public keys, and the
//! recipient decrypts with the *sum* of its identity keys. Because
//! extraction is linear in the master secret, the summed identity key is the
//! identity key for the summed master secret, so ciphertext size and
//! decryption cost are independent of the number of PKGs.

use crate::bf::{IdentityPrivateKey, MasterPublic};

/// Aggregates master public keys from multiple PKGs by summing the points.
///
/// # Panics
///
/// Panics if `publics` is empty: encrypting under an "empty" anytrust key
/// would silently degrade to no security at all.
pub fn aggregate_master_publics(publics: &[MasterPublic]) -> MasterPublic {
    assert!(
        !publics.is_empty(),
        "anytrust aggregation requires at least one PKG"
    );
    let mut sum = publics[0].point;
    for p in &publics[1..] {
        sum += p.point;
    }
    MasterPublic { point: sum }
}

/// Aggregates a user's identity private keys obtained from multiple PKGs.
///
/// # Panics
///
/// Panics if `keys` is empty.
pub fn aggregate_identity_keys(keys: &[IdentityPrivateKey]) -> IdentityPrivateKey {
    assert!(
        !keys.is_empty(),
        "anytrust aggregation requires at least one identity key"
    );
    let mut sum = keys[0].point;
    for k in &keys[1..] {
        sum += k.point;
    }
    IdentityPrivateKey { point: sum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf::{decrypt, encrypt, MasterSecret};
    use crate::IbeError;
    use alpenhorn_crypto::ChaChaRng;

    fn rng(seed: u8) -> ChaChaRng {
        ChaChaRng::from_seed_bytes([seed; 32])
    }

    /// Builds `n` PKGs, the aggregated master public key, and Bob's aggregated
    /// identity key.
    fn setup(
        n: usize,
        rng: &mut ChaChaRng,
    ) -> (Vec<MasterSecret>, MasterPublic, IdentityPrivateKey) {
        let secrets: Vec<MasterSecret> = (0..n).map(|_| MasterSecret::generate(rng)).collect();
        let publics: Vec<MasterPublic> = secrets.iter().map(|s| s.public()).collect();
        let mpk = aggregate_master_publics(&publics);
        let keys: Vec<IdentityPrivateKey> = secrets
            .iter()
            .map(|s| s.extract(b"bob@gmail.com"))
            .collect();
        let idk = aggregate_identity_keys(&keys);
        (secrets, mpk, idk)
    }

    #[test]
    fn anytrust_round_trip_various_sizes() {
        let mut rng = rng(20);
        for n in [1usize, 2, 3, 5, 10] {
            let (_, mpk, idk) = setup(n, &mut rng);
            let ct = encrypt(&mpk, b"bob@gmail.com", b"anytrust message", &mut rng);
            assert_eq!(decrypt(&idk, &ct).unwrap(), b"anytrust message", "n={n}");
        }
    }

    #[test]
    fn missing_one_identity_key_fails() {
        // Decryption must require identity keys from *all* PKGs: a coalition
        // holding n-1 master secrets (equivalently, the keys they can derive)
        // cannot decrypt.
        let mut rng = rng(21);
        let (secrets, mpk, _) = setup(3, &mut rng);
        let ct = encrypt(&mpk, b"bob@gmail.com", b"secret", &mut rng);

        let partial: Vec<IdentityPrivateKey> = secrets[..2]
            .iter()
            .map(|s| s.extract(b"bob@gmail.com"))
            .collect();
        let partial_key = aggregate_identity_keys(&partial);
        assert_eq!(decrypt(&partial_key, &ct), Err(IbeError::DecryptionFailed));
    }

    #[test]
    fn aggregation_is_order_independent() {
        let mut rng = rng(22);
        let secrets: Vec<MasterSecret> = (0..4).map(|_| MasterSecret::generate(&mut rng)).collect();
        let publics: Vec<MasterPublic> = secrets.iter().map(|s| s.public()).collect();
        let forward = aggregate_master_publics(&publics);
        let reversed: Vec<MasterPublic> = publics.iter().rev().copied().collect();
        let backward = aggregate_master_publics(&reversed);
        assert_eq!(forward, backward);
    }

    #[test]
    fn aggregate_of_one_is_identity_operation() {
        let mut rng = rng(23);
        let msk = MasterSecret::generate(&mut rng);
        assert_eq!(aggregate_master_publics(&[msk.public()]), msk.public());
        let idk = msk.extract(b"x@y.z");
        assert_eq!(aggregate_identity_keys(&[idk]), idk);
    }

    #[test]
    #[should_panic(expected = "at least one PKG")]
    fn empty_public_aggregation_panics() {
        aggregate_master_publics(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one identity key")]
    fn empty_key_aggregation_panics() {
        aggregate_identity_keys(&[]);
    }

    #[test]
    fn compromised_minority_cannot_forge_aggregate() {
        // Even if an adversary substitutes its own master keys for all but one
        // PKG, a ciphertext under the honest aggregate still requires the
        // honest PKG's identity key share.
        let mut rng = rng(24);
        let honest = MasterSecret::generate(&mut rng);
        let adversarial: Vec<MasterSecret> =
            (0..2).map(|_| MasterSecret::generate(&mut rng)).collect();

        let mut publics: Vec<MasterPublic> = adversarial.iter().map(|s| s.public()).collect();
        publics.push(honest.public());
        let mpk = aggregate_master_publics(&publics);
        let ct = encrypt(&mpk, b"bob@gmail.com", b"for bob", &mut rng);

        // Adversary's shares alone are insufficient.
        let adv_keys: Vec<IdentityPrivateKey> = adversarial
            .iter()
            .map(|s| s.extract(b"bob@gmail.com"))
            .collect();
        assert!(decrypt(&aggregate_identity_keys(&adv_keys), &ct).is_err());

        // With the honest share included, Bob can decrypt.
        let mut all_keys = adv_keys;
        all_keys.push(honest.extract(b"bob@gmail.com"));
        assert_eq!(
            decrypt(&aggregate_identity_keys(&all_keys), &ct).unwrap(),
            b"for bob"
        );
    }
}
