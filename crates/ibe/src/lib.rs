//! Pairing-based cryptography for Alpenhorn.
//!
//! This crate implements the public-key machinery of the add-friend protocol
//! (§4 of the paper) on top of the BLS12-381 pairing (via arkworks):
//!
//! * [`bf`] — Boneh-Franklin identity-based encryption, used as a KEM with a
//!   ChaCha20-Poly1305 body so that a friend request can be encrypted to an
//!   email address with no directory lookup (§4.1). Ciphertexts are
//!   anonymous: they reveal nothing about the recipient identity (§4.3).
//! * [`anytrust`] — Anytrust-IBE (§4.2, Appendix A): master public keys from
//!   `n` PKGs are summed, identity keys are summed, and the scheme stays
//!   secure as long as one PKG is honest.
//! * [`sig`] — BLS signatures and multi-signatures, used for users' long-term
//!   signing keys and for the PKGs' attestations of `(identity, key, round)`
//!   (§4.5).
//! * [`dh`] — Diffie-Hellman over G1, used for the ephemeral `DialingKey` in
//!   friend requests (§4.7) and for mixnet onion layers.
//! * [`commit`] — hash commitments used by the PKGs' commit-then-reveal of
//!   round master keys (Appendix A).
//! * [`hash`] — hash-to-curve (try-and-increment) and hash-to-scalar helpers.
//! * [`blind`] — blind BLS signatures for the rate-limiting (anti-DoS)
//!   extension the paper sketches in §9.
//!
//! The paper's prototype used the BN-256 curve; this reproduction uses
//! BLS12-381, the replacement curve the authors anticipate in §8.6 after the
//! Kim-Barbulescu attacks. See DESIGN.md for the dependency justification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anytrust;
pub mod bf;
pub mod blind;
pub mod commit;
pub mod dh;
pub mod hash;
pub mod points;
pub mod sig;

pub use anytrust::{aggregate_identity_keys, aggregate_master_publics};
pub use bf::{decrypt, encrypt, IdentityPrivateKey, MasterPublic, MasterSecret};
pub use commit::Commitment;
pub use dh::{DhPublic, DhSecret};
pub use sig::{
    aggregate_signatures, aggregate_verifying_keys, Signature, SigningKey, VerifyingKey,
};

/// Errors produced by the pairing-based primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IbeError {
    /// A serialized group element or scalar could not be parsed.
    InvalidPoint,
    /// A ciphertext was malformed (wrong length or structure).
    MalformedCiphertext,
    /// Decryption failed: the ciphertext was not encrypted to this identity
    /// key. During mailbox scanning this is the common case, not a fault.
    DecryptionFailed,
    /// A signature did not verify.
    InvalidSignature,
}

impl core::fmt::Display for IbeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IbeError::InvalidPoint => write!(f, "invalid group element encoding"),
            IbeError::MalformedCiphertext => write!(f, "malformed IBE ciphertext"),
            IbeError::DecryptionFailed => write!(f, "IBE decryption failed (not for this key)"),
            IbeError::InvalidSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for IbeError {}

/// Samples a uniformly random scalar from an external RNG.
///
/// Sampling 64 bytes and reducing modulo the group order keeps the bias
/// negligible (below 2^-128).
pub(crate) fn random_scalar(rng: &mut (impl rand::RngCore + ?Sized)) -> ark_bls12_381::Fr {
    use ark_ff::PrimeField;
    let mut wide = [0u8; 64];
    rng.fill_bytes(&mut wide);
    ark_bls12_381::Fr::from_le_bytes_mod_order(&wide)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_scalars_differ() {
        let mut rng = alpenhorn_crypto::ChaChaRng::from_seed_bytes([1u8; 32]);
        let a = random_scalar(&mut rng);
        let b = random_scalar(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", IbeError::InvalidPoint).contains("invalid"));
        assert!(format!("{}", IbeError::DecryptionFailed).contains("decryption"));
    }
}
