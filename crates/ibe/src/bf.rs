//! Boneh-Franklin identity-based encryption, used as a hybrid KEM.
//!
//! §4.1 of the paper: a PKG holds a master secret `s` and publishes the
//! master public key `s·P1`. A user's identity key is `s·H1(id)` in G2. To
//! encrypt to `id`, the sender picks a random `r`, sends `U = r·P1`, and
//! derives a symmetric key from the pairing value `e(mpk, H1(id))^r`; the
//! recipient derives the same key from `e(U, d_id)`. The symmetric key seals
//! the message body with ChaCha20-Poly1305.
//!
//! Two properties matter for Alpenhorn:
//!
//! * **Ciphertext anonymity** (§4.3): the ciphertext is a uniformly random G1
//!   point plus an AEAD body under a key unknown to observers, so it reveals
//!   nothing about the recipient. Boneh-Franklin has this property; many
//!   other IBE schemes do not.
//! * **Forward secrecy** (§4.4): master keys are rotated per round and erased;
//!   this module exposes [`MasterSecret::erase`] so the PKG crate can destroy
//!   the scalar at round end.

use ark_bls12_381::{Bls12_381, Fr, G1Projective, G2Projective};
use ark_ec::pairing::Pairing;
use ark_ec::{CurveGroup, Group};
use ark_ff::Zero;
use ark_serialize::CanonicalSerialize;

use alpenhorn_crypto::{aead, hkdf::Hkdf};

use crate::hash::hash_to_g2;
use crate::points::{g1_from_bytes, g1_to_bytes, G1_LEN};
use crate::{random_scalar, IbeError};

/// Domain tag for hashing identities into G2.
const IDENTITY_DOMAIN: &[u8] = b"alpenhorn-bf-ibe-identity";

/// A PKG's master secret for one add-friend round.
#[derive(Clone)]
pub struct MasterSecret {
    s: Fr,
}

/// A PKG's master public key for one add-friend round (a G1 point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MasterPublic {
    pub(crate) point: G1Projective,
}

/// A user's identity private key for one round (a G2 point).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityPrivateKey {
    pub(crate) point: G2Projective,
}

impl MasterSecret {
    /// Generates a fresh master secret.
    pub fn generate(rng: &mut (impl rand::RngCore + ?Sized)) -> Self {
        MasterSecret {
            s: random_scalar(rng),
        }
    }

    /// The corresponding master public key.
    pub fn public(&self) -> MasterPublic {
        MasterPublic {
            point: G1Projective::generator() * self.s,
        }
    }

    /// Extracts the identity private key for `identity` (the `Extract`
    /// operation of §4.1).
    pub fn extract(&self, identity: &[u8]) -> IdentityPrivateKey {
        IdentityPrivateKey {
            point: hash_to_g2(IDENTITY_DOMAIN, identity) * self.s,
        }
    }

    /// Destroys the master secret in place (forward secrecy, §4.4).
    ///
    /// After calling this the secret is the zero scalar and can no longer
    /// extract meaningful identity keys.
    pub fn erase(&mut self) {
        self.s = Fr::zero();
    }

    /// Whether the secret has been erased.
    pub fn is_erased(&self) -> bool {
        self.s.is_zero()
    }
}

impl core::fmt::Debug for MasterSecret {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print the scalar.
        write!(
            f,
            "MasterSecret({})",
            if self.is_erased() { "erased" } else { "active" }
        )
    }
}

impl MasterPublic {
    /// Serializes to the 48-byte compressed form.
    pub fn to_bytes(&self) -> [u8; G1_LEN] {
        g1_to_bytes(&self.point)
    }

    /// Parses from the 48-byte compressed form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(MasterPublic {
            point: g1_from_bytes(bytes)?,
        })
    }
}

impl IdentityPrivateKey {
    /// Serializes to the 96-byte compressed form.
    pub fn to_bytes(&self) -> [u8; crate::points::G2_LEN] {
        crate::points::g2_to_bytes(&self.point)
    }

    /// Parses from the 96-byte compressed form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(IdentityPrivateKey {
            point: crate::points::g2_from_bytes(bytes)?,
        })
    }
}

/// Derives the AEAD key from the pairing value and the ephemeral point.
fn derive_key(pairing_value: &impl CanonicalSerialize, ephemeral: &[u8; G1_LEN]) -> [u8; 32] {
    let mut gt_bytes = Vec::new();
    pairing_value
        .serialize_compressed(&mut gt_bytes)
        .expect("GT serialization");
    use alpenhorn_crypto::hmac::HmacKey;
    use std::sync::OnceLock;
    // Fixed KEM salt label: precompute its HMAC states once per process.
    static KEM_SALT: OnceLock<HmacKey> = OnceLock::new();
    let salt = KEM_SALT.get_or_init(|| HmacKey::new(b"alpenhorn-bf-ibe-kem"));
    let hk = Hkdf::extract_with_key(salt, &gt_bytes);
    let mut info = Vec::with_capacity(G1_LEN + 16);
    info.extend_from_slice(b"ibe-session-key");
    info.extend_from_slice(ephemeral);
    hk.expand_key(&info)
}

/// Encrypts `plaintext` to `identity` under the (possibly aggregated) master
/// public key. The ciphertext layout is `U (48 bytes) || AEAD(plaintext)`.
pub fn encrypt(
    mpk: &MasterPublic,
    identity: &[u8],
    plaintext: &[u8],
    rng: &mut (impl rand::RngCore + ?Sized),
) -> Vec<u8> {
    let r = random_scalar(rng);
    let ephemeral = G1Projective::generator() * r;
    let ephemeral_bytes = g1_to_bytes(&ephemeral);

    // g_id = e(mpk, H1(id))^r computed as e(r·mpk, H1(id)).
    let q_id = hash_to_g2(IDENTITY_DOMAIN, identity);
    let shared = Bls12_381::pairing((mpk.point * r).into_affine(), q_id.into_affine());
    let key = derive_key(&shared, &ephemeral_bytes);

    // Hybrid seal, in place: the ciphertext buffer is allocated once at its
    // final size and the body is encrypted where it lies — the plaintext is
    // never cloned into an intermediate vector.
    let mut out = Vec::with_capacity(G1_LEN + plaintext.len() + aead::TAG_LEN);
    out.extend_from_slice(&ephemeral_bytes);
    out.extend_from_slice(plaintext);
    aead::seal_in_place(
        &key,
        &[0u8; aead::NONCE_LEN],
        &ephemeral_bytes,
        &mut out,
        G1_LEN,
    );
    out
}

/// Attempts to decrypt a ciphertext with the (possibly aggregated) identity
/// private key. Returns [`IbeError::DecryptionFailed`] if the ciphertext was
/// not encrypted to this key — during mailbox scanning this is the normal
/// outcome for requests addressed to other users and for noise.
pub fn decrypt(idk: &IdentityPrivateKey, ciphertext: &[u8]) -> Result<Vec<u8>, IbeError> {
    if ciphertext.len() < G1_LEN + aead::TAG_LEN {
        return Err(IbeError::MalformedCiphertext);
    }
    let (ephemeral_bytes, sealed) = ciphertext.split_at(G1_LEN);
    let ephemeral = g1_from_bytes(ephemeral_bytes)?;
    let ephemeral_arr: [u8; G1_LEN] = ephemeral_bytes.try_into().expect("split at G1_LEN");

    // e(U, d_id) = e(r·P1, s·H1(id)) equals the encryptor's pairing value.
    let shared = Bls12_381::pairing(ephemeral.into_affine(), idk.point.into_affine());
    let key = derive_key(&shared, &ephemeral_arr);

    // One allocation for the result; the tag is verified and then truncated
    // off in place.
    let mut body = sealed.to_vec();
    aead::open_in_place(&key, &[0u8; aead::NONCE_LEN], &ephemeral_arr, &mut body, 0)
        .map_err(|_| IbeError::DecryptionFailed)?;
    Ok(body)
}

/// The ciphertext expansion added by [`encrypt`]: the ephemeral G1 point and
/// the AEAD tag. Used by the wire-size constants and the bandwidth model.
pub const CIPHERTEXT_OVERHEAD: usize = G1_LEN + aead::TAG_LEN;

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_crypto::ChaChaRng;

    fn rng(seed: u8) -> ChaChaRng {
        ChaChaRng::from_seed_bytes([seed; 32])
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut rng = rng(1);
        let msk = MasterSecret::generate(&mut rng);
        let mpk = msk.public();
        let idk = msk.extract(b"bob@gmail.com");
        let ct = encrypt(&mpk, b"bob@gmail.com", b"hello bob", &mut rng);
        assert_eq!(decrypt(&idk, &ct).unwrap(), b"hello bob");
    }

    #[test]
    fn wrong_identity_key_fails() {
        let mut rng = rng(2);
        let msk = MasterSecret::generate(&mut rng);
        let mpk = msk.public();
        let ct = encrypt(&mpk, b"bob@gmail.com", b"hello bob", &mut rng);
        let wrong = msk.extract(b"eve@gmail.com");
        assert_eq!(decrypt(&wrong, &ct), Err(IbeError::DecryptionFailed));
    }

    #[test]
    fn wrong_master_secret_fails() {
        let mut rng = rng(3);
        let msk1 = MasterSecret::generate(&mut rng);
        let msk2 = MasterSecret::generate(&mut rng);
        let ct = encrypt(&msk1.public(), b"bob@gmail.com", b"msg", &mut rng);
        let idk2 = msk2.extract(b"bob@gmail.com");
        assert_eq!(decrypt(&idk2, &ct), Err(IbeError::DecryptionFailed));
    }

    #[test]
    fn ciphertext_overhead_is_constant() {
        let mut rng = rng(4);
        let msk = MasterSecret::generate(&mut rng);
        let mpk = msk.public();
        for len in [0usize, 1, 100, 1000] {
            let ct = encrypt(&mpk, b"x@y.z", &vec![0u8; len], &mut rng);
            assert_eq!(ct.len(), len + CIPHERTEXT_OVERHEAD);
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let mut rng = rng(5);
        let msk = MasterSecret::generate(&mut rng);
        let mpk = msk.public();
        let a = encrypt(&mpk, b"bob@gmail.com", b"same message", &mut rng);
        let b = encrypt(&mpk, b"bob@gmail.com", b"same message", &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn malformed_ciphertexts_rejected() {
        let mut rng = rng(6);
        let msk = MasterSecret::generate(&mut rng);
        let idk = msk.extract(b"bob@gmail.com");
        assert_eq!(decrypt(&idk, &[]), Err(IbeError::MalformedCiphertext));
        assert_eq!(
            decrypt(&idk, &[0u8; G1_LEN]),
            Err(IbeError::MalformedCiphertext)
        );
        // Corrupted ephemeral point: decryption must fail one way or another
        // (as an invalid encoding or as a key mismatch).
        let mut ct = encrypt(&msk.public(), b"bob@gmail.com", b"m", &mut rng);
        ct[0] ^= 0x01;
        assert!(decrypt(&idk, &ct).is_err());
    }

    #[test]
    fn tampered_body_rejected() {
        let mut rng = rng(7);
        let msk = MasterSecret::generate(&mut rng);
        let idk = msk.extract(b"bob@gmail.com");
        let mut ct = encrypt(&msk.public(), b"bob@gmail.com", b"payload", &mut rng);
        let last = ct.len() - 1;
        ct[last] ^= 1;
        assert_eq!(decrypt(&idk, &ct), Err(IbeError::DecryptionFailed));
    }

    #[test]
    fn master_public_serialization_round_trip() {
        let mut rng = rng(8);
        let msk = MasterSecret::generate(&mut rng);
        let mpk = msk.public();
        assert_eq!(MasterPublic::from_bytes(&mpk.to_bytes()).unwrap(), mpk);
    }

    #[test]
    fn identity_key_serialization_round_trip() {
        let mut rng = rng(9);
        let msk = MasterSecret::generate(&mut rng);
        let idk = msk.extract(b"carol@example.org");
        assert_eq!(
            IdentityPrivateKey::from_bytes(&idk.to_bytes()).unwrap(),
            idk
        );
    }

    #[test]
    fn erased_master_secret_cannot_extract() {
        let mut rng = rng(10);
        let mut msk = MasterSecret::generate(&mut rng);
        let mpk = msk.public();
        let good_key = msk.extract(b"bob@gmail.com");
        let ct = encrypt(&mpk, b"bob@gmail.com", b"secret", &mut rng);

        msk.erase();
        assert!(msk.is_erased());
        assert!(format!("{msk:?}").contains("erased"));
        let post_erase_key = msk.extract(b"bob@gmail.com");
        assert_ne!(post_erase_key, good_key);
        assert!(decrypt(&post_erase_key, &ct).is_err());
        // The legitimately extracted key still works (clients hold it until
        // they finish scanning the round's mailbox).
        assert_eq!(decrypt(&good_key, &ct).unwrap(), b"secret");
    }

    #[test]
    fn ciphertext_anonymity_structural() {
        // The ciphertext must not depend on the recipient identity in any way
        // that is visible without a decryption key: same length for different
        // identities, and the ephemeral prefix parses as a valid G1 point for
        // every recipient (i.e. there is no recipient-dependent structure).
        let mut rng = rng(11);
        let msk = MasterSecret::generate(&mut rng);
        let mpk = msk.public();
        let ct_a = encrypt(&mpk, b"alice@example.com", b"0123456789", &mut rng);
        let ct_b = encrypt(
            &mpk,
            b"bob-with-longer-address@example.com",
            b"0123456789",
            &mut rng,
        );
        assert_eq!(ct_a.len(), ct_b.len());
        assert!(g1_from_bytes(&ct_a[..G1_LEN]).is_ok());
        assert!(g1_from_bytes(&ct_b[..G1_LEN]).is_ok());
    }
}
