//! Hash commitments for the PKGs' commit-then-reveal of round master keys.
//!
//! Appendix A of the paper: to make Anytrust-IBE secure against an adaptive
//! adversary (one that picks its corrupted PKGs' master keys after seeing the
//! honest PKG's key), each PKG first publishes a commitment to its round
//! master public key and only reveals the key once it has every other PKG's
//! commitment. The commitment is a salted hash, binding and hiding in the
//! random-oracle model.

use alpenhorn_crypto::{ct_eq, sha256::Sha256};

/// Length of the commitment opening nonce.
pub const NONCE_LEN: usize = 32;

/// A hash commitment to a byte string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commitment(pub [u8; 32]);

impl Commitment {
    /// Commits to `data` with a random `nonce` (the opening).
    pub fn commit(data: &[u8], nonce: &[u8; NONCE_LEN]) -> Commitment {
        let mut h = Sha256::new();
        h.update(b"alpenhorn-pkg-commitment-v1");
        h.update(nonce);
        h.update(&(data.len() as u64).to_be_bytes());
        h.update(data);
        Commitment(h.finalize())
    }

    /// Verifies that `(data, nonce)` opens this commitment.
    pub fn verify(&self, data: &[u8], nonce: &[u8; NONCE_LEN]) -> bool {
        let expected = Commitment::commit(data, nonce);
        ct_eq(&self.0, &expected.0)
    }

    /// The commitment bytes (what is broadcast before the reveal).
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_open() {
        let nonce = [7u8; NONCE_LEN];
        let c = Commitment::commit(b"master public key bytes", &nonce);
        assert!(c.verify(b"master public key bytes", &nonce));
    }

    #[test]
    fn wrong_data_rejected() {
        let nonce = [7u8; NONCE_LEN];
        let c = Commitment::commit(b"key A", &nonce);
        assert!(!c.verify(b"key B", &nonce));
    }

    #[test]
    fn wrong_nonce_rejected() {
        let c = Commitment::commit(b"key A", &[1u8; NONCE_LEN]);
        assert!(!c.verify(b"key A", &[2u8; NONCE_LEN]));
    }

    #[test]
    fn commitments_hide_data_length_structure() {
        // Length is included in the hash so "a" + "bc" cannot collide with "ab" + "c".
        let nonce = [0u8; NONCE_LEN];
        assert_ne!(
            Commitment::commit(b"ab", &nonce),
            Commitment::commit(b"a", &nonce)
        );
    }

    #[test]
    fn different_nonces_give_different_commitments() {
        assert_ne!(
            Commitment::commit(b"same data", &[1u8; NONCE_LEN]),
            Commitment::commit(b"same data", &[2u8; NONCE_LEN])
        );
    }
}
