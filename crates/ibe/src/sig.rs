//! BLS signatures and multi-signatures.
//!
//! Alpenhorn uses signatures in two places (§4.5 of the paper):
//!
//! * users hold a long-term signing key; the `SenderSig` in a friend request
//!   is a signature by that key over the request contents, verifiable by
//!   recipients who learned the key out-of-band (or via trust-on-first-use);
//! * every PKG signs `(identity, signing key, round)` when it hands a user
//!   their round identity key, and the friend request carries the
//!   *multi-signature* — all PKG signatures aggregated into one 48-byte
//!   value — so a recipient can check the binding as long as one PKG is
//!   honest.
//!
//! Signatures are in G1 (48 bytes compressed), public keys in G2 (96 bytes).
//! Aggregation of signatures over the *same message* is a plain point sum,
//! verified against the sum of public keys (the rogue-key caveat does not
//! apply here because PKG keys are fixed, known to all clients, and shipped
//! with the software, per §3.3).

use ark_bls12_381::{Bls12_381, Fr, G1Projective, G2Projective};
use ark_ec::pairing::Pairing;
use ark_ec::{CurveGroup, Group};

use crate::hash::hash_to_g1;
use crate::points::{g1_from_bytes, g1_to_bytes, g2_from_bytes, g2_to_bytes, G1_LEN, G2_LEN};
use crate::{random_scalar, IbeError};

/// Domain tag for message hashing.
const SIG_DOMAIN: &[u8] = b"alpenhorn-bls-signature";

/// A long-term signing private key.
#[derive(Clone)]
pub struct SigningKey {
    sk: Fr,
}

/// A signing public key (G2, 96 bytes compressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyingKey {
    point: G2Projective,
}

/// A signature (G1, 48 bytes compressed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    point: G1Projective,
}

impl SigningKey {
    /// Generates a fresh signing key.
    pub fn generate(rng: &mut (impl rand::RngCore + ?Sized)) -> Self {
        SigningKey {
            sk: random_scalar(rng),
        }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey {
            point: G2Projective::generator() * self.sk,
        }
    }

    /// Signs a message.
    pub fn sign(&self, message: &[u8]) -> Signature {
        Signature {
            point: hash_to_g1(SIG_DOMAIN, message) * self.sk,
        }
    }

    /// Signs an already-hashed (possibly blinded) curve point. Used by the
    /// blind-signature rate-limiting extension ([`crate::blind`]); ordinary
    /// callers should use [`SigningKey::sign`].
    pub fn sign_point(&self, point: G1Projective) -> G1Projective {
        point * self.sk
    }

    /// Serializes the secret scalar (32 bytes) for durable client state.
    /// The output is the long-term secret itself; persist it accordingly.
    pub fn to_bytes(&self) -> [u8; crate::points::FR_LEN] {
        crate::points::fr_to_bytes(&self.sk)
    }

    /// Parses a secret scalar serialized by [`SigningKey::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(SigningKey {
            sk: crate::points::fr_from_bytes(bytes)?,
        })
    }
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SigningKey(secret)")
    }
}

impl VerifyingKey {
    /// Verifies a signature over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        self.verify_with_domain(SIG_DOMAIN, message, signature)
    }

    /// Verifies a signature over `message` hashed with a caller-chosen domain
    /// tag. Used by the blind-signature tokens ([`crate::blind`]), which must
    /// not be interchangeable with ordinary signatures.
    pub fn verify_with_domain(&self, domain: &[u8], message: &[u8], signature: &Signature) -> bool {
        // e(sig, P2) == e(H(m), pk)
        let lhs = Bls12_381::pairing(
            signature.point.into_affine(),
            G2Projective::generator().into_affine(),
        );
        let rhs = Bls12_381::pairing(
            hash_to_g1(domain, message).into_affine(),
            self.point.into_affine(),
        );
        lhs == rhs
    }

    /// Serializes to the 96-byte compressed form.
    pub fn to_bytes(&self) -> [u8; G2_LEN] {
        g2_to_bytes(&self.point)
    }

    /// Parses from the 96-byte compressed form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(VerifyingKey {
            point: g2_from_bytes(bytes)?,
        })
    }
}

impl Signature {
    /// Wraps a raw G1 point as a signature (used by the blind-signature
    /// unblinding step in [`crate::blind`]).
    pub fn from_point(point: G1Projective) -> Self {
        Signature { point }
    }

    /// Serializes to the 48-byte compressed form.
    pub fn to_bytes(&self) -> [u8; G1_LEN] {
        g1_to_bytes(&self.point)
    }

    /// Parses from the 48-byte compressed form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(Signature {
            point: g1_from_bytes(bytes)?,
        })
    }
}

/// Aggregates signatures over the *same message* into one multi-signature.
///
/// # Panics
///
/// Panics if `signatures` is empty.
pub fn aggregate_signatures(signatures: &[Signature]) -> Signature {
    assert!(!signatures.is_empty(), "cannot aggregate zero signatures");
    let mut sum = signatures[0].point;
    for s in &signatures[1..] {
        sum += s.point;
    }
    Signature { point: sum }
}

/// Aggregates verifying keys for checking a multi-signature.
///
/// # Panics
///
/// Panics if `keys` is empty.
pub fn aggregate_verifying_keys(keys: &[VerifyingKey]) -> VerifyingKey {
    assert!(!keys.is_empty(), "cannot aggregate zero verifying keys");
    let mut sum = keys[0].point;
    for k in &keys[1..] {
        sum += k.point;
    }
    VerifyingKey { point: sum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_crypto::ChaChaRng;

    fn rng(seed: u8) -> ChaChaRng {
        ChaChaRng::from_seed_bytes([seed; 32])
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = rng(30);
        let sk = SigningKey::generate(&mut rng);
        let vk = sk.verifying_key();
        let sig = sk.sign(b"friend request from alice");
        assert!(vk.verify(b"friend request from alice", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = rng(31);
        let sk = SigningKey::generate(&mut rng);
        let sig = sk.sign(b"message a");
        assert!(!sk.verifying_key().verify(b"message b", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = rng(32);
        let sk1 = SigningKey::generate(&mut rng);
        let sk2 = SigningKey::generate(&mut rng);
        let sig = sk1.sign(b"message");
        assert!(!sk2.verifying_key().verify(b"message", &sig));
    }

    #[test]
    fn serialization_round_trips() {
        let mut rng = rng(33);
        let sk = SigningKey::generate(&mut rng);
        let vk = sk.verifying_key();
        let sig = sk.sign(b"m");
        assert_eq!(VerifyingKey::from_bytes(&vk.to_bytes()).unwrap(), vk);
        assert_eq!(Signature::from_bytes(&sig.to_bytes()).unwrap(), sig);
        assert!(VerifyingKey::from_bytes(&[0u8; 10]).is_err());
        assert!(Signature::from_bytes(&[0u8; 10]).is_err());
    }

    #[test]
    fn multi_signature_verifies_under_aggregated_key() {
        let mut rng = rng(34);
        let message = b"(alice@example.com, pk, round 7)";
        let keys: Vec<SigningKey> = (0..5).map(|_| SigningKey::generate(&mut rng)).collect();
        let sigs: Vec<Signature> = keys.iter().map(|k| k.sign(message)).collect();
        let vks: Vec<VerifyingKey> = keys.iter().map(|k| k.verifying_key()).collect();

        let multi_sig = aggregate_signatures(&sigs);
        let multi_vk = aggregate_verifying_keys(&vks);
        assert!(multi_vk.verify(message, &multi_sig));
    }

    #[test]
    fn multi_signature_missing_one_signer_rejected() {
        let mut rng = rng(35);
        let message = b"attestation";
        let keys: Vec<SigningKey> = (0..3).map(|_| SigningKey::generate(&mut rng)).collect();
        let vks: Vec<VerifyingKey> = keys.iter().map(|k| k.verifying_key()).collect();
        let multi_vk = aggregate_verifying_keys(&vks);

        // Only two of the three PKGs signed: verification under the full
        // aggregated key must fail, so a dishonest majority cannot pretend the
        // honest PKG attested a bogus binding.
        let partial: Vec<Signature> = keys[..2].iter().map(|k| k.sign(message)).collect();
        assert!(!multi_vk.verify(message, &aggregate_signatures(&partial)));
    }

    #[test]
    fn aggregate_of_one_matches_plain() {
        let mut rng = rng(36);
        let sk = SigningKey::generate(&mut rng);
        let sig = sk.sign(b"m");
        assert_eq!(aggregate_signatures(&[sig]), sig);
        assert_eq!(
            aggregate_verifying_keys(&[sk.verifying_key()]),
            sk.verifying_key()
        );
    }

    #[test]
    #[should_panic(expected = "zero signatures")]
    fn empty_signature_aggregation_panics() {
        aggregate_signatures(&[]);
    }

    #[test]
    #[should_panic(expected = "zero verifying keys")]
    fn empty_key_aggregation_panics() {
        aggregate_verifying_keys(&[]);
    }

    #[test]
    fn signing_key_debug_hides_secret() {
        let mut rng = rng(37);
        let sk = SigningKey::generate(&mut rng);
        assert_eq!(format!("{sk:?}"), "SigningKey(secret)");
    }
}
