//! Diffie-Hellman key exchange over BLS12-381 G1.
//!
//! Used in two places:
//!
//! * the ephemeral `DialingKey` inside a friend request (§4.7 of the paper):
//!   both friends contribute an ephemeral key and derive the initial keywheel
//!   secret from the shared value;
//! * mixnet onion layers (Algorithm 1 step 3): the client generates a fresh
//!   keypair per hop and derives an AEAD key shared with that server.
//!
//! The paper's prototype used Curve25519 for these exchanges; any secure DH
//! group gives the same protocol semantics, and reusing the pairing curve's
//! G1 keeps this reproduction's dependency surface small (see DESIGN.md).

use ark_bls12_381::{Fr, G1Projective};
use ark_ec::Group;
use ark_ff::Zero;

use alpenhorn_crypto::hkdf::Hkdf;

use crate::points::{g1_from_bytes, g1_to_bytes, G1_LEN};
use crate::{random_scalar, IbeError};

/// Length of a serialized DH public key.
pub const PUBLIC_LEN: usize = G1_LEN;
/// Length of the derived shared secret.
pub const SHARED_LEN: usize = 32;

/// A Diffie-Hellman secret key.
#[derive(Clone)]
pub struct DhSecret {
    x: Fr,
}

/// A Diffie-Hellman public key (compressed G1, 48 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhPublic {
    point: G1Projective,
}

impl DhSecret {
    /// Generates a fresh secret key.
    pub fn generate(rng: &mut (impl rand::RngCore + ?Sized)) -> Self {
        DhSecret {
            x: random_scalar(rng),
        }
    }

    /// The corresponding public key.
    pub fn public(&self) -> DhPublic {
        DhPublic {
            point: G1Projective::generator() * self.x,
        }
    }

    /// Computes the 32-byte shared secret with a peer's public key.
    ///
    /// The raw group element is run through HKDF with a protocol label so the
    /// output is a uniform symmetric key.
    pub fn shared_secret(&self, peer: &DhPublic) -> [u8; SHARED_LEN] {
        use alpenhorn_crypto::hmac::HmacKey;
        use std::sync::OnceLock;
        // The KDF salt is a fixed protocol label; precompute its HMAC states
        // once per process (this sits on the onion wrap/peel hot path).
        static DH_SALT: OnceLock<HmacKey> = OnceLock::new();
        let salt = DH_SALT.get_or_init(|| HmacKey::new(b"alpenhorn-dh-v1"));
        let shared_point = peer.point * self.x;
        let bytes = g1_to_bytes(&shared_point);
        Hkdf::extract_with_key(salt, &bytes).expand_key(b"shared-secret")
    }

    /// Erases the secret scalar (forward secrecy for onion and dialing keys).
    pub fn erase(&mut self) {
        self.x = Fr::zero();
    }

    /// Serializes the secret scalar (32 bytes) for durable client state
    /// (pending add-friend handshakes must survive a client restart). The
    /// output is the ephemeral secret itself; persist it accordingly.
    pub fn to_bytes(&self) -> [u8; crate::points::FR_LEN] {
        crate::points::fr_to_bytes(&self.x)
    }

    /// Parses a secret scalar serialized by [`DhSecret::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(DhSecret {
            x: crate::points::fr_from_bytes(bytes)?,
        })
    }
}

impl core::fmt::Debug for DhSecret {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DhSecret(secret)")
    }
}

impl DhPublic {
    /// Serializes to the 48-byte compressed form.
    pub fn to_bytes(&self) -> [u8; PUBLIC_LEN] {
        g1_to_bytes(&self.point)
    }

    /// Parses from the 48-byte compressed form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(DhPublic {
            point: g1_from_bytes(bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_crypto::ChaChaRng;

    fn rng(seed: u8) -> ChaChaRng {
        ChaChaRng::from_seed_bytes([seed; 32])
    }

    #[test]
    fn both_sides_agree() {
        let mut rng = rng(40);
        let alice = DhSecret::generate(&mut rng);
        let bob = DhSecret::generate(&mut rng);
        assert_eq!(
            alice.shared_secret(&bob.public()),
            bob.shared_secret(&alice.public())
        );
    }

    #[test]
    fn different_peers_different_secrets() {
        let mut rng = rng(41);
        let alice = DhSecret::generate(&mut rng);
        let bob = DhSecret::generate(&mut rng);
        let carol = DhSecret::generate(&mut rng);
        assert_ne!(
            alice.shared_secret(&bob.public()),
            alice.shared_secret(&carol.public())
        );
    }

    #[test]
    fn public_key_round_trip() {
        let mut rng = rng(42);
        let sk = DhSecret::generate(&mut rng);
        let pk = sk.public();
        assert_eq!(DhPublic::from_bytes(&pk.to_bytes()).unwrap(), pk);
        assert!(DhPublic::from_bytes(&[0u8; 5]).is_err());
    }

    #[test]
    fn erased_secret_changes_shared_value() {
        let mut rng = rng(43);
        let mut alice = DhSecret::generate(&mut rng);
        let bob = DhSecret::generate(&mut rng);
        let before = alice.shared_secret(&bob.public());
        alice.erase();
        assert_ne!(alice.shared_secret(&bob.public()), before);
    }

    #[test]
    fn debug_hides_secret() {
        let mut rng = rng(44);
        assert_eq!(
            format!("{:?}", DhSecret::generate(&mut rng)),
            "DhSecret(secret)"
        );
    }
}
