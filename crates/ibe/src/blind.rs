//! Blind BLS signatures, used for the rate-limiting extension sketched in the
//! paper's discussion section (§9, "DoS attacks").
//!
//! A malicious group of clients could send real (rather than cover) requests
//! every round to bloat mailboxes. The paper's proposed defence is for the
//! servers to issue each registered user a limited number of *blinded*
//! signatures per day and to reject submissions that do not carry a valid
//! unblinded signature; because the signatures are blind, they do not link a
//! submission to the user it was issued to, so the defence costs no metadata
//! privacy.
//!
//! The construction is the standard blind BLS signature:
//!
//! 1. the user picks a random scalar `b` and sends `M' = b·H(m)` to the signer;
//! 2. the signer returns `σ' = sk·M'`;
//! 3. the user unblinds `σ = b⁻¹·σ' = sk·H(m)`, an ordinary BLS signature on
//!    `m` that verifies under the signer's public key.
//!
//! The signer never sees `H(m)` or `σ`, so it cannot later recognize the
//! token when it is spent.

use ark_bls12_381::{Fr, G1Projective};
use ark_ff::Field;

use crate::hash::hash_to_g1;
use crate::points::{g1_from_bytes, g1_to_bytes, G1_LEN};
use crate::sig::{Signature, SigningKey, VerifyingKey};
use crate::{random_scalar, IbeError};

/// Domain tag for rate-limit token messages (must differ from the ordinary
/// signature domain so tokens cannot be confused with attestations).
const TOKEN_DOMAIN: &[u8] = b"alpenhorn-ratelimit-token";

/// A blinded message, sent by the user to the signer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlindedMessage {
    point: G1Projective,
}

/// The user's secret unblinding factor.
pub struct BlindingFactor {
    inverse: Fr,
}

/// A blinded signature returned by the signer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlindedSignature {
    point: G1Projective,
}

impl BlindedMessage {
    /// Serializes to compressed form.
    pub fn to_bytes(&self) -> [u8; G1_LEN] {
        g1_to_bytes(&self.point)
    }

    /// Parses from compressed form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(BlindedMessage {
            point: g1_from_bytes(bytes)?,
        })
    }
}

impl BlindedSignature {
    /// Serializes to compressed form.
    pub fn to_bytes(&self) -> [u8; G1_LEN] {
        g1_to_bytes(&self.point)
    }

    /// Parses from compressed form.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbeError> {
        Ok(BlindedSignature {
            point: g1_from_bytes(bytes)?,
        })
    }
}

/// User side, step 1: blinds `message` for signing.
pub fn blind(
    message: &[u8],
    rng: &mut (impl rand::RngCore + ?Sized),
) -> (BlindedMessage, BlindingFactor) {
    // A zero blinding factor would leak H(m); resample (probability ~2^-255).
    let mut b = random_scalar(rng);
    while b.inverse().is_none() {
        b = random_scalar(rng);
    }
    let point = hash_to_g1(TOKEN_DOMAIN, message) * b;
    (
        BlindedMessage { point },
        BlindingFactor {
            inverse: b.inverse().expect("nonzero scalar has an inverse"),
        },
    )
}

/// Signer side, step 2: signs a blinded message. The signer learns nothing
/// about the underlying message.
pub fn sign_blinded(key: &SigningKey, blinded: &BlindedMessage) -> BlindedSignature {
    BlindedSignature {
        point: key.sign_point(blinded.point),
    }
}

/// User side, step 3: unblinds the signature into an ordinary BLS signature
/// over the original message (verifiable with [`verify_token`]).
pub fn unblind(blinded: &BlindedSignature, factor: &BlindingFactor) -> Signature {
    Signature::from_point(blinded.point * factor.inverse)
}

/// Verifies an unblinded rate-limit token over `message`.
pub fn verify_token(key: &VerifyingKey, message: &[u8], token: &Signature) -> bool {
    key.verify_with_domain(TOKEN_DOMAIN, message, token)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alpenhorn_crypto::ChaChaRng;

    fn rng(seed: u8) -> ChaChaRng {
        ChaChaRng::from_seed_bytes([seed; 32])
    }

    #[test]
    fn blind_sign_unblind_verifies() {
        let mut rng = rng(1);
        let signer = SigningKey::generate(&mut rng);
        let message = b"round 42 submission budget token 3";
        let (blinded, factor) = blind(message, &mut rng);
        let blind_sig = sign_blinded(&signer, &blinded);
        let token = unblind(&blind_sig, &factor);
        assert!(verify_token(&signer.verifying_key(), message, &token));
    }

    #[test]
    fn token_does_not_verify_for_other_message_or_key() {
        let mut rng = rng(2);
        let signer = SigningKey::generate(&mut rng);
        let other = SigningKey::generate(&mut rng);
        let (blinded, factor) = blind(b"message A", &mut rng);
        let token = unblind(&sign_blinded(&signer, &blinded), &factor);
        assert!(!verify_token(&signer.verifying_key(), b"message B", &token));
        assert!(!verify_token(&other.verifying_key(), b"message A", &token));
    }

    #[test]
    fn blinded_message_unlinkable_to_plain_hash() {
        // The blinded point differs from H(m) and differs across blindings of
        // the same message, so the signer cannot recognize repeated requests.
        let mut rng = rng(3);
        let (b1, _) = blind(b"same message", &mut rng);
        let (b2, _) = blind(b"same message", &mut rng);
        assert_ne!(b1, b2);
        let plain = hash_to_g1(TOKEN_DOMAIN, b"same message");
        assert_ne!(b1.point, plain);
        assert_ne!(b2.point, plain);
    }

    #[test]
    fn rate_limit_tokens_are_not_valid_attestations() {
        // Domain separation: a token cannot double as an ordinary signature.
        let mut rng = rng(4);
        let signer = SigningKey::generate(&mut rng);
        let (blinded, factor) = blind(b"message", &mut rng);
        let token = unblind(&sign_blinded(&signer, &blinded), &factor);
        assert!(!signer.verifying_key().verify(b"message", &token));
    }

    #[test]
    fn serialization_round_trips() {
        let mut rng = rng(5);
        let signer = SigningKey::generate(&mut rng);
        let (blinded, factor) = blind(b"m", &mut rng);
        let restored = BlindedMessage::from_bytes(&blinded.to_bytes()).unwrap();
        assert_eq!(restored, blinded);
        let blind_sig = sign_blinded(&signer, &restored);
        let restored_sig = BlindedSignature::from_bytes(&blind_sig.to_bytes()).unwrap();
        let token = unblind(&restored_sig, &factor);
        assert!(verify_token(&signer.verifying_key(), b"m", &token));
        assert!(BlindedMessage::from_bytes(&[0u8; 3]).is_err());
        assert!(BlindedSignature::from_bytes(&[0u8; 3]).is_err());
    }
}
