//! Fixed-size serialization of BLS12-381 group elements and scalars.
//!
//! Alpenhorn's wire formats carry compressed points (48 bytes for G1, 96 for
//! G2); this module centralizes the conversion between arkworks types and
//! those byte arrays so that the rest of the workspace never touches
//! serialization traits directly.

use ark_bls12_381::{Fr, G1Affine, G1Projective, G2Affine, G2Projective};
use ark_ec::CurveGroup;
use ark_serialize::{CanonicalDeserialize, CanonicalSerialize};

use crate::IbeError;

/// Compressed G1 length in bytes.
pub const G1_LEN: usize = 48;
/// Compressed G2 length in bytes.
pub const G2_LEN: usize = 96;
/// Scalar length in bytes.
pub const FR_LEN: usize = 32;

/// Serializes a G1 element to its 48-byte compressed form.
pub fn g1_to_bytes(p: &G1Projective) -> [u8; G1_LEN] {
    let mut out = [0u8; G1_LEN];
    p.into_affine()
        .serialize_compressed(&mut out[..])
        .expect("G1 serialization into fixed buffer");
    out
}

/// Parses a compressed G1 element, validating that it is on the curve and in
/// the prime-order subgroup.
pub fn g1_from_bytes(bytes: &[u8]) -> Result<G1Projective, IbeError> {
    if bytes.len() != G1_LEN {
        return Err(IbeError::InvalidPoint);
    }
    G1Affine::deserialize_compressed(bytes)
        .map(G1Projective::from)
        .map_err(|_| IbeError::InvalidPoint)
}

/// Serializes a G2 element to its 96-byte compressed form.
pub fn g2_to_bytes(p: &G2Projective) -> [u8; G2_LEN] {
    let mut out = [0u8; G2_LEN];
    p.into_affine()
        .serialize_compressed(&mut out[..])
        .expect("G2 serialization into fixed buffer");
    out
}

/// Parses a compressed G2 element, validating curve and subgroup membership.
pub fn g2_from_bytes(bytes: &[u8]) -> Result<G2Projective, IbeError> {
    if bytes.len() != G2_LEN {
        return Err(IbeError::InvalidPoint);
    }
    G2Affine::deserialize_compressed(bytes)
        .map(G2Projective::from)
        .map_err(|_| IbeError::InvalidPoint)
}

/// Serializes a scalar to 32 bytes.
pub fn fr_to_bytes(s: &Fr) -> [u8; FR_LEN] {
    let mut out = [0u8; FR_LEN];
    s.serialize_compressed(&mut out[..])
        .expect("Fr serialization into fixed buffer");
    out
}

/// Parses a 32-byte scalar.
pub fn fr_from_bytes(bytes: &[u8]) -> Result<Fr, IbeError> {
    if bytes.len() != FR_LEN {
        return Err(IbeError::InvalidPoint);
    }
    Fr::deserialize_compressed(bytes).map_err(|_| IbeError::InvalidPoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ark_ec::Group;

    #[test]
    fn g1_round_trip() {
        let g = G1Projective::generator();
        let bytes = g1_to_bytes(&g);
        assert_eq!(bytes.len(), G1_LEN);
        assert_eq!(g1_from_bytes(&bytes).unwrap(), g);
    }

    #[test]
    fn g2_round_trip() {
        let g = G2Projective::generator();
        let bytes = g2_to_bytes(&g);
        assert_eq!(bytes.len(), G2_LEN);
        assert_eq!(g2_from_bytes(&bytes).unwrap(), g);
    }

    #[test]
    fn fr_round_trip() {
        let s = Fr::from(123456789u64);
        assert_eq!(fr_from_bytes(&fr_to_bytes(&s)).unwrap(), s);
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert!(g1_from_bytes(&[0u8; 47]).is_err());
        assert!(g2_from_bytes(&[0u8; 95]).is_err());
        assert!(fr_from_bytes(&[0u8; 31]).is_err());
    }

    #[test]
    fn garbage_points_rejected() {
        // A compressed encoding with the infinity flag set but a nonzero body
        // is invalid in the arkworks format.
        let mut g1 = g1_to_bytes(&G1Projective::generator());
        *g1.last_mut().unwrap() |= 0x40;
        assert!(g1_from_bytes(&g1).is_err());

        let mut g2 = g2_to_bytes(&G2Projective::generator());
        *g2.last_mut().unwrap() |= 0x40;
        assert!(g2_from_bytes(&g2).is_err());
    }
}
