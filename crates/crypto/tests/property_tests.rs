//! Property-based tests for the crypto substrate.

use proptest::prelude::*;

use alpenhorn_crypto::{aead, chacha20, hex, hkdf::Hkdf, hmac, sha256, ChaChaRng};
use rand::RngCore;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sha256_incremental_equals_one_shot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in 0usize..2048,
    ) {
        let split = split.min(data.len());
        let mut hasher = sha256::Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), sha256::digest(&data));
    }

    #[test]
    fn sha256_unrolled_matches_loop_oracle(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        split_a in 0usize..4096,
        split_b in 0usize..4096,
    ) {
        // The unrolled compression (streamed through arbitrary update splits)
        // must agree with the seed's loop-based one-shot oracle.
        let a = split_a.min(data.len());
        let b = split_b.min(data.len()).max(a);
        let mut hasher = sha256::Sha256::new();
        hasher.update(&data[..a]);
        hasher.update(&data[a..b]);
        hasher.update(&data[b..]);
        prop_assert_eq!(hasher.finalize(), sha256::digest_reference(&data));
    }

    #[test]
    fn sha256_midstate_resumes_exactly(
        blocks in 0usize..4,
        tail in proptest::collection::vec(any::<u8>(), 0..200),
        head_byte in any::<u8>(),
    ) {
        let head = vec![head_byte; blocks * 64];
        let mut hasher = sha256::Sha256::new();
        hasher.update(&head);
        let mut resumed = sha256::Sha256::from_midstate(hasher.midstate());
        resumed.update(&tail);
        let mut full = Vec::with_capacity(head.len() + tail.len());
        full.extend_from_slice(&head);
        full.extend_from_slice(&tail);
        prop_assert_eq!(resumed.finalize(), sha256::digest(&full));
    }

    #[test]
    fn hmac_cached_key_matches_fresh_keying(
        key in proptest::collection::vec(any::<u8>(), 0..200),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let cached = hmac::HmacKey::new(&key);
        prop_assert_eq!(cached.mac(&data), hmac::hmac(&key, &data));
        prop_assert!(cached.verify(&data, &hmac::hmac(&key, &data)));
    }

    #[test]
    fn hkdf_cached_salt_and_prk_match_cold_path(
        salt in proptest::collection::vec(any::<u8>(), 0..64),
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let salt_key = hmac::HmacKey::new(&salt);
        let cold: [u8; 32] = Hkdf::derive(&salt, &ikm, &info);
        let cached: [u8; 32] = Hkdf::derive_with_key(&salt_key, &ikm, &info);
        prop_assert_eq!(cold, cached);
        // The single-block fast path agrees with the general expand.
        prop_assert_eq!(Hkdf::extract(&salt, &ikm).expand_key(&info), cold);
    }

    #[test]
    fn hmac_incremental_equals_one_shot(
        key in proptest::collection::vec(any::<u8>(), 0..200),
        data in proptest::collection::vec(any::<u8>(), 0..1024),
        chunk in 1usize..64,
    ) {
        let mut mac = hmac::HmacSha256::new(&key);
        for piece in data.chunks(chunk) {
            mac.update(piece);
        }
        prop_assert_eq!(mac.finalize(), hmac::hmac(&key, &data));
    }

    #[test]
    fn hmac_differs_under_different_keys(
        key_a in any::<[u8; 32]>(),
        key_b in any::<[u8; 32]>(),
        data in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(key_a != key_b);
        prop_assert_ne!(hmac::hmac(&key_a, &data), hmac::hmac(&key_b, &data));
    }

    #[test]
    fn chacha20_is_an_involution(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        counter in any::<u32>(),
        mut data in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let original = data.clone();
        chacha20::xor_stream(&key, &nonce, counter, &mut data);
        if !original.is_empty() && original.iter().any(|b| *b != 0) {
            // Keystream application changes nonzero data with overwhelming probability.
        }
        chacha20::xor_stream(&key, &nonce, counter, &mut data);
        prop_assert_eq!(data, original);
    }

    #[test]
    fn aead_round_trips_and_rejects_tampering(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        plaintext in proptest::collection::vec(any::<u8>(), 0..512),
        flip in any::<(usize, u8)>(),
    ) {
        let sealed = aead::seal(&key, &nonce, &aad, &plaintext);
        prop_assert_eq!(sealed.len(), plaintext.len() + aead::TAG_LEN);
        prop_assert_eq!(aead::open(&key, &nonce, &aad, &sealed).unwrap(), plaintext);

        let mut corrupted = sealed.clone();
        let idx = flip.0 % corrupted.len();
        let mask = if flip.1 == 0 { 1 } else { flip.1 };
        corrupted[idx] ^= mask;
        prop_assert!(aead::open(&key, &nonce, &aad, &corrupted).is_err());
    }

    #[test]
    fn hkdf_outputs_are_prefix_consistent(
        salt in proptest::collection::vec(any::<u8>(), 0..64),
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info in proptest::collection::vec(any::<u8>(), 0..64),
        len_a in 1usize..64,
        len_b in 1usize..64,
    ) {
        // HKDF-Expand is a stream: a shorter output is a prefix of a longer one.
        let hk = Hkdf::extract(&salt, &ikm);
        let mut a = vec![0u8; len_a];
        let mut b = vec![0u8; len_b];
        hk.expand(&info, &mut a);
        hk.expand(&info, &mut b);
        let common = len_a.min(len_b);
        prop_assert_eq!(&a[..common], &b[..common]);
    }

    #[test]
    fn hex_round_trips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    #[test]
    fn rng_streams_are_reproducible_and_seed_sensitive(
        seed_a in any::<[u8; 32]>(),
        seed_b in any::<[u8; 32]>(),
        len in 1usize..256,
    ) {
        let mut x = vec![0u8; len];
        let mut y = vec![0u8; len];
        ChaChaRng::from_seed_bytes(seed_a).fill_bytes(&mut x);
        ChaChaRng::from_seed_bytes(seed_a).fill_bytes(&mut y);
        prop_assert_eq!(&x, &y);
        if seed_a != seed_b && len >= 16 {
            let mut z = vec![0u8; len];
            ChaChaRng::from_seed_bytes(seed_b).fill_bytes(&mut z);
            prop_assert_ne!(&x, &z);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(
        seed in any::<[u8; 32]>(),
        mut items in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let mut rng = ChaChaRng::from_seed_bytes(seed);
        let mut original = items.clone();
        rng.shuffle(&mut items);
        original.sort_unstable();
        items.sort_unstable();
        prop_assert_eq!(items, original);
    }
}
