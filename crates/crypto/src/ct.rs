//! Constant-time comparison helpers.
//!
//! Trial decryption of mailbox entries and MAC verification must not leak,
//! through timing, which bytes of a candidate tag matched. These helpers
//! avoid early exits; they do not attempt to defeat compiler auto-vectorized
//! short-circuiting beyond using a fold over the whole input.

/// Compares two byte slices in constant time (for equal-length inputs).
///
/// Returns `false` immediately if the lengths differ — the length of protocol
/// messages is public in Alpenhorn, so this does not leak secrets.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Constant-time conditional select: returns `a` if `choice` is true, else `b`.
pub fn ct_select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"abcdef", b"abcdef"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn unequal_slices() {
        assert!(!ct_eq(b"abcdef", b"abcdeg"));
        assert!(!ct_eq(b"abcdef", b"abcde"));
        assert!(!ct_eq(b"", b"a"));
    }

    #[test]
    fn first_and_last_byte_differences() {
        assert!(!ct_eq(b"xbcdef", b"abcdef"));
        assert!(!ct_eq(b"abcdex", b"abcdef"));
    }

    #[test]
    fn select() {
        assert_eq!(ct_select(true, 0xaa, 0x55), 0xaa);
        assert_eq!(ct_select(false, 0xaa, 0x55), 0x55);
    }
}
