//! ChaCha20-Poly1305 AEAD (RFC 8439), implemented from scratch.
//!
//! This is the authenticated encryption used for mixnet onion layers and for
//! the symmetric body of IBE-encrypted friend requests. Validated against the
//! RFC 8439 §2.8.2 test vector.

use crate::chacha20::{self, ChaCha20};
use crate::poly1305::Poly1305;

/// AEAD key length in bytes.
pub const KEY_LEN: usize = 32;
/// AEAD nonce length in bytes.
pub const NONCE_LEN: usize = 12;
/// AEAD authentication tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Errors returned by AEAD operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The ciphertext is too short to contain a tag.
    CiphertextTooShort,
    /// Tag verification failed: the ciphertext or associated data was tampered
    /// with, or the wrong key was used (for Alpenhorn trial decryption this is
    /// the common, expected case).
    TagMismatch,
}

impl core::fmt::Display for AeadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AeadError::CiphertextTooShort => write!(f, "ciphertext shorter than the AEAD tag"),
            AeadError::TagMismatch => write!(f, "AEAD tag verification failed"),
        }
    }
}

impl std::error::Error for AeadError {}

/// Derives the one-time Poly1305 key from the cipher key and nonce (RFC 8439 §2.6).
fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = ChaCha20::new(key, nonce, 0).block();
    let mut out = [0u8; 32];
    out.copy_from_slice(&block[..32]);
    out
}

/// Computes the AEAD tag over `aad` and `ciphertext`.
fn compute_tag(otk: &[u8; 32], aad: &[u8], ciphertext: &[u8]) -> [u8; TAG_LEN] {
    let mut mac = Poly1305::new(otk);
    mac.update(aad);
    mac.update(&[0u8; 16][..pad16(aad.len())]);
    mac.update(ciphertext);
    mac.update(&[0u8; 16][..pad16(ciphertext.len())]);
    mac.update(&(aad.len() as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

/// Number of zero bytes needed to pad `len` to a 16-byte boundary.
fn pad16(len: usize) -> usize {
    (16 - (len % 16)) % 16
}

/// Encrypts `data` in place and returns the detached authentication tag.
///
/// This is the zero-copy core of the AEAD: the caller owns the buffer, no
/// clone of the plaintext is made. [`seal`] and the in-place onion/IBE seal
/// paths are thin wrappers over it.
pub fn seal_detached(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
) -> [u8; TAG_LEN] {
    chacha20::xor_stream(key, nonce, 1, data);
    let otk = poly_key(key, nonce);
    compute_tag(&otk, aad, data)
}

/// Verifies the detached `tag` over `aad` and the ciphertext in `data`, then
/// decrypts `data` in place. On tag mismatch the buffer is left untouched.
pub fn open_detached(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
    tag: &[u8],
) -> Result<(), AeadError> {
    if tag.len() != TAG_LEN {
        return Err(AeadError::CiphertextTooShort);
    }
    let otk = poly_key(key, nonce);
    let expected = compute_tag(&otk, aad, data);
    if !crate::ct::ct_eq(&expected, tag) {
        return Err(AeadError::TagMismatch);
    }
    chacha20::xor_stream(key, nonce, 1, data);
    Ok(())
}

/// Encrypts the suffix `buf[from..]` in place and appends the tag, so `buf`
/// ends as `prefix || ciphertext || tag` with no intermediate allocation.
///
/// # Panics
///
/// Panics if `from > buf.len()`.
pub fn seal_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    buf: &mut Vec<u8>,
    from: usize,
) {
    let tag = seal_detached(key, nonce, aad, &mut buf[from..]);
    buf.extend_from_slice(&tag);
}

/// Decrypts `buf[from..]` (laid out as `ciphertext || tag`) in place,
/// truncating the tag off the end. On failure `buf` is unchanged.
///
/// # Panics
///
/// Panics if `from > buf.len()`.
pub fn open_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    buf: &mut Vec<u8>,
    from: usize,
) -> Result<(), AeadError> {
    let body = buf.len().checked_sub(from).expect("`from` within buffer");
    if body < TAG_LEN {
        return Err(AeadError::CiphertextTooShort);
    }
    let split = buf.len() - TAG_LEN;
    let (data, tag) = buf.split_at_mut(split);
    open_detached(key, nonce, aad, &mut data[from..], tag)?;
    buf.truncate(split);
    Ok(())
}

/// Encrypts `plaintext` with associated data `aad`, returning `ciphertext || tag`.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
    out.extend_from_slice(plaintext);
    seal_in_place(key, nonce, aad, &mut out, 0);
    out
}

/// Decrypts `ciphertext || tag`, verifying the tag over `aad`, and returns the plaintext.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    ciphertext_and_tag: &[u8],
) -> Result<Vec<u8>, AeadError> {
    if ciphertext_and_tag.len() < TAG_LEN {
        return Err(AeadError::CiphertextTooShort);
    }
    let split = ciphertext_and_tag.len() - TAG_LEN;
    let (ciphertext, tag) = ciphertext_and_tag.split_at(split);
    let otk = poly_key(key, nonce);
    let expected = compute_tag(&otk, aad, ciphertext);
    if !crate::ct::ct_eq(&expected, tag) {
        return Err(AeadError::TagMismatch);
    }
    let mut out = ciphertext.to_vec();
    chacha20::xor_stream(key, nonce, 1, &mut out);
    Ok(out)
}

/// Total ciphertext expansion added by [`seal`] (the tag).
pub const OVERHEAD: usize = TAG_LEN;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| 0x80 + i as u8);
        let nonce: [u8; 12] = [
            0x07, 0, 0, 0, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let aad = hex::decode("50515253c0c1c2c3c4c5c6c7").unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let sealed = seal(&key, &nonce, &aad, plaintext);
        let (ct, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        assert_eq!(
            hex::encode(ct),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d63dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b3692ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(hex::encode(tag), "1ae10b594f09e26a7e902ecbd0600691");
        // Round trip.
        let opened = open(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(opened, plaintext);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut sealed = seal(&key, &nonce, b"aad", b"secret message");
        sealed[0] ^= 0xff;
        assert_eq!(
            open(&key, &nonce, b"aad", &sealed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn tampered_aad_rejected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"aad", b"secret message");
        assert_eq!(
            open(&key, &nonce, b"AAD", &sealed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let sealed = seal(&key, &nonce, b"", b"secret message");
        assert_eq!(
            open(&[3u8; 32], &nonce, b"", &sealed),
            Err(AeadError::TagMismatch)
        );
    }

    #[test]
    fn short_ciphertext_rejected() {
        assert_eq!(
            open(&[0u8; 32], &[0u8; 12], b"", &[0u8; 15]),
            Err(AeadError::CiphertextTooShort)
        );
    }

    #[test]
    fn empty_plaintext_round_trip() {
        let key = [9u8; 32];
        let nonce = [8u8; 12];
        let sealed = seal(&key, &nonce, b"header", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key, &nonce, b"header", &sealed).unwrap(), b"");
    }

    #[test]
    fn overhead_constant_matches() {
        let sealed = seal(&[0u8; 32], &[0u8; 12], b"", b"x");
        assert_eq!(sealed.len(), 1 + OVERHEAD);
    }

    #[test]
    fn in_place_matches_allocating_api() {
        let key = [4u8; 32];
        let nonce = [5u8; 12];
        for (from, len) in [(0usize, 0usize), (0, 1), (7, 200), (48, 313)] {
            let mut buf: Vec<u8> = (0..from + len).map(|i| i as u8).collect();
            let prefix = buf[..from].to_vec();
            let expected = seal(&key, &nonce, b"aad", &buf[from..]);
            seal_in_place(&key, &nonce, b"aad", &mut buf, from);
            assert_eq!(&buf[..from], &prefix[..], "prefix untouched");
            assert_eq!(&buf[from..], &expected[..]);

            open_in_place(&key, &nonce, b"aad", &mut buf, from).unwrap();
            assert_eq!(buf.len(), from + len);
            assert_eq!(
                &buf[from..],
                &(from..from + len).map(|i| i as u8).collect::<Vec<_>>()[..]
            );
        }
    }

    #[test]
    fn open_in_place_failure_leaves_buffer_unchanged() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut buf = b"prefix".to_vec();
        buf.extend_from_slice(b"the secret body");
        seal_in_place(&key, &nonce, b"aad", &mut buf, 6);
        let sealed_snapshot = buf.clone();
        assert_eq!(
            open_in_place(&key, &nonce, b"wrong aad", &mut buf, 6),
            Err(AeadError::TagMismatch)
        );
        assert_eq!(buf, sealed_snapshot);
        // Too-short body.
        let mut short = vec![0u8; 10];
        assert_eq!(
            open_in_place(&key, &nonce, b"", &mut short, 0),
            Err(AeadError::CiphertextTooShort)
        );
    }

    #[test]
    fn detached_round_trip() {
        let key = [8u8; 32];
        let nonce = [9u8; 12];
        let mut data = b"detached mode payload".to_vec();
        let tag = seal_detached(&key, &nonce, b"hdr", &mut data);
        assert_ne!(&data[..], b"detached mode payload");
        open_detached(&key, &nonce, b"hdr", &mut data, &tag).unwrap();
        assert_eq!(&data[..], b"detached mode payload");
        assert!(open_detached(&key, &nonce, b"hdr", &mut data, &tag[..15]).is_err());
    }

    #[test]
    fn large_message_round_trip() {
        let key = [7u8; 32];
        let nonce = [6u8; 12];
        let msg: Vec<u8> = (0u8..=255).cycle().take(100_000).collect();
        let sealed = seal(&key, &nonce, b"bulk", &msg);
        assert_eq!(open(&key, &nonce, b"bulk", &sealed).unwrap(), msg);
    }
}
