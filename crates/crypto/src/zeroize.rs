//! Secure erasure helpers.
//!
//! Alpenhorn's forward secrecy rests on clients and servers being able to
//! irrevocably delete key material (§3.3 of the paper): round IBE keys,
//! superseded keywheel states, and mixnet permutation keys. This module
//! provides a best-effort in-memory erasure wrapper. (Defences against cold
//! boot attacks or non-overwriting storage are out of scope, as in the
//! paper.)
//!
//! The crate forbids `unsafe`, so rather than `ptr::write_volatile` we rely
//! on overwriting through `core::hint::black_box`, which prevents the
//! compiler from eliding the store because the value is observed afterwards.

/// Types whose contents can be overwritten with zeros in place.
pub trait Zeroize {
    /// Overwrites the secret contents with zeros.
    fn zeroize(&mut self);
}

impl Zeroize for [u8] {
    fn zeroize(&mut self) {
        for b in self.iter_mut() {
            *b = core::hint::black_box(0);
        }
    }
}

impl<const N: usize> Zeroize for [u8; N] {
    fn zeroize(&mut self) {
        self.as_mut_slice().zeroize();
    }
}

impl Zeroize for Vec<u8> {
    fn zeroize(&mut self) {
        self.as_mut_slice().zeroize();
        self.clear();
    }
}

/// A heap-allocated byte buffer that is zeroed when dropped.
///
/// Used for keywheel secrets, IBE identity keys, and onion-layer keys held by
/// clients between rounds.
///
/// # Examples
///
/// ```
/// use alpenhorn_crypto::zeroize::SecretBytes;
///
/// let secret = SecretBytes::from(vec![1, 2, 3]);
/// assert_eq!(secret.as_slice(), &[1, 2, 3]);
/// drop(secret); // contents are zeroed before the memory is released
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SecretBytes(Vec<u8>);

impl SecretBytes {
    /// Creates an empty secret buffer.
    pub fn new() -> Self {
        SecretBytes(Vec::new())
    }

    /// Creates a zero-filled secret buffer of length `len`.
    pub fn zeroed(len: usize) -> Self {
        SecretBytes(vec![0u8; len])
    }

    /// Returns the secret contents as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Returns the secret contents as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.0
    }

    /// Length of the secret in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the secret is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Explicitly erases the contents now (also happens on drop).
    pub fn erase(&mut self) {
        self.0.zeroize();
    }
}

impl Default for SecretBytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for SecretBytes {
    fn from(v: Vec<u8>) -> Self {
        SecretBytes(v)
    }
}

impl From<&[u8]> for SecretBytes {
    fn from(v: &[u8]) -> Self {
        SecretBytes(v.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for SecretBytes {
    fn from(v: [u8; N]) -> Self {
        SecretBytes(v.to_vec())
    }
}

impl Drop for SecretBytes {
    fn drop(&mut self) {
        self.0.zeroize();
    }
}

impl core::fmt::Debug for SecretBytes {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print secret contents.
        write!(f, "SecretBytes({} bytes)", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroize_array() {
        let mut key = [0xffu8; 32];
        key.zeroize();
        assert_eq!(key, [0u8; 32]);
    }

    #[test]
    fn zeroize_vec_clears() {
        let mut v = vec![1u8, 2, 3];
        v.zeroize();
        assert!(v.is_empty());
    }

    #[test]
    fn secret_bytes_basics() {
        let mut s = SecretBytes::from(vec![9u8; 16]);
        assert_eq!(s.len(), 16);
        assert!(!s.is_empty());
        s.erase();
        assert!(s.is_empty());
    }

    #[test]
    fn secret_bytes_debug_hides_content() {
        let s = SecretBytes::from(vec![1u8, 2, 3]);
        assert_eq!(format!("{s:?}"), "SecretBytes(3 bytes)");
    }

    #[test]
    fn from_array() {
        let s = SecretBytes::from([5u8; 8]);
        assert_eq!(s.as_slice(), &[5u8; 8]);
    }
}
