//! A seedable, deterministic CSPRNG built on the ChaCha20 block function.
//!
//! Alpenhorn servers need randomness for mixnet shuffles, Laplace noise, and
//! ephemeral keys; the evaluation harness additionally needs *reproducible*
//! randomness so that experiments can be replayed. This module provides a
//! ChaCha20-based generator that implements [`rand::RngCore`] and
//! [`rand::CryptoRng`], so it composes with the `rand` distribution APIs and
//! with arkworks' `UniformRand`.

use crate::chacha20::{ChaCha20, BLOCK_LEN};
use rand::{CryptoRng, RngCore, SeedableRng};

/// A deterministic CSPRNG seeded with 32 bytes, producing the ChaCha20
/// keystream for a fixed nonce.
///
/// # Examples
///
/// ```
/// use alpenhorn_crypto::rng::ChaChaRng;
/// use rand::RngCore;
///
/// let mut a = ChaChaRng::from_seed_bytes([7u8; 32]);
/// let mut b = ChaChaRng::from_seed_bytes([7u8; 32]);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct ChaChaRng {
    cipher: ChaCha20,
    buf: [u8; BLOCK_LEN],
    /// Offset of the next unused byte in `buf`; `BLOCK_LEN` means empty.
    pos: usize,
}

impl ChaChaRng {
    /// Length of the serialized generator state: the 16-word cipher state,
    /// the buffered keystream block, and the buffer offset.
    pub const STATE_LEN: usize = 64 + BLOCK_LEN + 1;

    /// Creates a generator from a 32-byte seed.
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        ChaChaRng {
            cipher: ChaCha20::new(&seed, &[0u8; 12], 0),
            buf: [0u8; BLOCK_LEN],
            pos: BLOCK_LEN,
        }
    }

    /// Creates a generator seeded from the operating system's entropy source.
    pub fn from_os_entropy() -> Self {
        let mut seed = [0u8; 32];
        rand::rngs::OsRng.fill_bytes(&mut seed);
        Self::from_seed_bytes(seed)
    }

    /// Derives an independent generator for a labelled sub-task.
    ///
    /// Used by servers to derive per-round, per-purpose randomness from one
    /// master seed (e.g. "round 17 shuffle" vs "round 17 noise").
    pub fn fork(&mut self, label: &[u8]) -> ChaChaRng {
        let mut seed = [0u8; 32];
        self.fill_bytes(&mut seed);
        let derived = crate::hmac_sha256(&seed, label);
        ChaChaRng::from_seed_bytes(derived)
    }

    fn refill(&mut self) {
        self.buf = self.cipher.block();
        self.cipher.advance();
        self.pos = 0;
    }

    /// Serializes the generator's exact position: the cipher state, the
    /// buffered keystream block, and the read offset. Restoring with
    /// [`ChaChaRng::from_state_bytes`] continues the stream byte-for-byte,
    /// which is what lets a saved client resume with its randomness intact.
    ///
    /// The export contains key-equivalent secret material; callers must
    /// protect it like any other persisted secret.
    pub fn state_bytes(&self) -> [u8; Self::STATE_LEN] {
        let mut out = [0u8; Self::STATE_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.cipher.state_words()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out[64..64 + BLOCK_LEN].copy_from_slice(&self.buf);
        out[64 + BLOCK_LEN] = self.pos as u8;
        out
    }

    /// Rebuilds a generator from [`ChaChaRng::state_bytes`]. Returns `None`
    /// if the trailing position byte is out of range.
    pub fn from_state_bytes(bytes: &[u8; Self::STATE_LEN]) -> Option<Self> {
        let mut words = [0u32; 16];
        for (word, chunk) in words.iter_mut().zip(bytes[..64].chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let mut buf = [0u8; BLOCK_LEN];
        buf.copy_from_slice(&bytes[64..64 + BLOCK_LEN]);
        let pos = bytes[64 + BLOCK_LEN] as usize;
        if pos > BLOCK_LEN {
            return None;
        }
        Some(ChaChaRng {
            cipher: ChaCha20::from_state_words(words),
            buf,
            pos,
        })
    }

    /// Returns a uniformly random integer in `[0, bound)` using rejection
    /// sampling (no modulo bias). `bound` must be nonzero.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be nonzero");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random bits scaled to [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

impl RngCore for ChaChaRng {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut filled = 0usize;
        while filled < dest.len() {
            if self.pos == BLOCK_LEN {
                self.refill();
            }
            let take = (BLOCK_LEN - self.pos).min(dest.len() - filled);
            dest[filled..filled + take].copy_from_slice(&self.buf[self.pos..self.pos + take]);
            self.pos += take;
            filled += take;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for ChaChaRng {}

impl SeedableRng for ChaChaRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::from_seed_bytes(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaChaRng::from_seed_bytes([1u8; 32]);
        let mut b = ChaChaRng::from_seed_bytes([1u8; 32]);
        let mut ba = [0u8; 100];
        let mut bb = [0u8; 100];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaChaRng::from_seed_bytes([1u8; 32]);
        let mut b = ChaChaRng::from_seed_bytes([2u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = ChaChaRng::from_seed_bytes([3u8; 32]);
        for bound in [1u64, 2, 7, 100, 1_000_000] {
            for _ in 0..100 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = ChaChaRng::from_seed_bytes([4u8; 32]);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = ChaChaRng::from_seed_bytes([5u8; 32]);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = ChaChaRng::from_seed_bytes([6u8; 32]);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = ChaChaRng::from_seed_bytes([7u8; 32]);
        let mut a = root.fork(b"shuffle");
        let mut root2 = ChaChaRng::from_seed_bytes([7u8; 32]);
        let mut a2 = root2.fork(b"shuffle");
        assert_eq!(a.next_u64(), a2.next_u64());

        let mut root3 = ChaChaRng::from_seed_bytes([7u8; 32]);
        let mut b = root3.fork(b"noise");
        let mut b_again = ChaChaRng::from_seed_bytes([7u8; 32]).fork(b"shuffle");
        assert_ne!(b.next_u64(), b_again.next_u64());
    }

    #[test]
    fn os_entropy_generators_differ() {
        let mut a = ChaChaRng::from_os_entropy();
        let mut b = ChaChaRng::from_os_entropy();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn state_export_resumes_byte_for_byte() {
        let mut rng = ChaChaRng::from_seed_bytes([9u8; 32]);
        // Land mid-block so the buffered keystream and offset matter.
        let mut skip = [0u8; 37];
        rng.fill_bytes(&mut skip);
        let saved = rng.state_bytes();
        let mut resumed = ChaChaRng::from_state_bytes(&saved).unwrap();
        let mut a = [0u8; 200];
        let mut b = [0u8; 200];
        rng.fill_bytes(&mut a);
        resumed.fill_bytes(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn state_import_rejects_bad_offset() {
        let rng = ChaChaRng::from_seed_bytes([9u8; 32]);
        let mut saved = rng.state_bytes();
        saved[ChaChaRng::STATE_LEN - 1] = (BLOCK_LEN + 1) as u8;
        assert!(ChaChaRng::from_state_bytes(&saved).is_none());
    }

    #[test]
    fn fill_bytes_across_block_boundaries() {
        let mut rng = ChaChaRng::from_seed_bytes([8u8; 32]);
        let mut big = [0u8; 200];
        rng.fill_bytes(&mut big);

        let mut rng2 = ChaChaRng::from_seed_bytes([8u8; 32]);
        let mut parts = [0u8; 200];
        let (a, rest) = parts.split_at_mut(37);
        let (b, c) = rest.split_at_mut(90);
        rng2.fill_bytes(a);
        rng2.fill_bytes(b);
        rng2.fill_bytes(c);
        assert_eq!(big, parts);
    }
}
