//! HKDF-SHA256 (RFC 5869), implemented from scratch on top of [`crate::hmac`].
//!
//! Used to derive onion-layer keys from Diffie-Hellman shared secrets and to
//! derive the symmetric key that protects the body of an IBE-encrypted friend
//! request. Validated against the RFC 5869 test vectors.
//!
//! Two caching levers keep the hot paths cheap:
//!
//! * an [`Hkdf`] instance precomputes the PRK's HMAC ipad/opad states, so
//!   every `expand` block costs two compressions instead of four;
//! * protocols whose salt is a fixed label (onion layers, the DH KDF, the
//!   IBE KEM) can precompute the salt's [`HmacKey`] once — typically in a
//!   `OnceLock` — and extract through [`Hkdf::extract_with_key`], halving the
//!   extract cost too.

use crate::hmac::{hmac, HmacKey};

/// An HKDF instance bound to a pseudorandom key (the output of `extract`).
///
/// Construction precomputes the PRK's HMAC states; `expand` calls reuse them
/// (the raw PRK bytes are not retained).
pub struct Hkdf {
    /// Cached ipad/opad midstates for `HMAC(prk, ·)`.
    prk_key: HmacKey,
}

impl Hkdf {
    /// HKDF-Extract: derives a pseudorandom key from `ikm` and an optional salt.
    pub fn extract(salt: &[u8], ikm: &[u8]) -> Self {
        Self::from_prk(hmac(salt, ikm))
    }

    /// HKDF-Extract with a precomputed salt key (for fixed protocol labels).
    ///
    /// Equivalent to `Hkdf::extract(salt, ikm)` where `salt_key ==
    /// HmacKey::new(salt)`, but skips the two salt-keying compressions.
    pub fn extract_with_key(salt_key: &HmacKey, ikm: &[u8]) -> Self {
        Self::from_prk(salt_key.mac(ikm))
    }

    /// Constructs an HKDF instance directly from a 32-byte pseudorandom key.
    pub fn from_prk(prk: [u8; 32]) -> Self {
        Hkdf {
            prk_key: HmacKey::new(&prk),
        }
    }

    /// HKDF-Expand: fills `okm` with output keying material bound to `info`.
    ///
    /// # Panics
    ///
    /// Panics if `okm.len() > 255 * 32`, which RFC 5869 forbids.
    pub fn expand(&self, info: &[u8], okm: &mut [u8]) {
        assert!(okm.len() <= 255 * 32, "HKDF output too long");
        let mut t = [0u8; 32];
        let mut have_t = false;
        let mut generated = 0usize;
        let mut counter = 1u8;
        while generated < okm.len() {
            let mut mac = self.prk_key.mac_stream();
            if have_t {
                mac.update(&t);
            }
            mac.update(info);
            mac.update(&[counter]);
            t = mac.finalize();
            have_t = true;
            let take = (okm.len() - generated).min(32);
            okm[generated..generated + take].copy_from_slice(&t[..take]);
            generated += take;
            counter = counter.wrapping_add(1);
        }
    }

    /// One-shot expand of a single 32-byte output block (the common case for
    /// symmetric keys): `HMAC(prk, info || 0x01)` using the cached PRK states.
    pub fn expand_key(&self, info: &[u8]) -> [u8; 32] {
        let mut mac = self.prk_key.mac_stream();
        mac.update(info);
        mac.update(&[1u8]);
        mac.finalize()
    }

    /// Convenience: extract-then-expand into a fixed-size array.
    pub fn derive<const N: usize>(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; N] {
        let hk = Hkdf::extract(salt, ikm);
        let mut out = [0u8; N];
        hk.expand(info, &mut out);
        out
    }

    /// Convenience: extract-then-expand with a precomputed salt key.
    pub fn derive_with_key<const N: usize>(salt_key: &HmacKey, ikm: &[u8], info: &[u8]) -> [u8; N] {
        let hk = Hkdf::extract_with_key(salt_key, ikm);
        let mut out = [0u8; N];
        hk.expand(info, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00u8..=0x0c).collect();
        let info: Vec<u8> = (0xf0u8..=0xf9).collect();
        // The PRK is HMAC(salt, ikm); Hkdf does not retain the raw bytes, so
        // check the extract step through the same primitive it uses.
        assert_eq!(
            hex::encode(&hmac(&salt, &ikm)),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let hk = Hkdf::extract(&salt, &ikm);
        let mut okm = [0u8; 42];
        hk.expand(&info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case_2() {
        let ikm: Vec<u8> = (0x00u8..=0x4f).collect();
        let salt: Vec<u8> = (0x60u8..=0xaf).collect();
        let info: Vec<u8> = (0xb0u8..=0xff).collect();
        let hk = Hkdf::extract(&salt, &ikm);
        let mut okm = [0u8; 82];
        hk.expand(&info, &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71cc30c58179ec3e87c14c01d5c1f3434f1d87"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let hk = Hkdf::extract(&[], &ikm);
        let mut okm = [0u8; 42];
        hk.expand(&[], &mut okm);
        assert_eq!(
            hex::encode(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn derive_helper_matches_extract_expand() {
        let out: [u8; 32] = Hkdf::derive(b"salt", b"ikm", b"info");
        let hk = Hkdf::extract(b"salt", b"ikm");
        let mut expected = [0u8; 32];
        hk.expand(b"info", &mut expected);
        assert_eq!(out, expected);
    }

    #[test]
    fn cached_salt_key_matches_plain_extract() {
        let salt_key = HmacKey::new(b"alpenhorn-onion-layer");
        let hk_cached = Hkdf::extract_with_key(&salt_key, b"shared secret bytes");
        let hk_plain = Hkdf::extract(b"alpenhorn-onion-layer", b"shared secret bytes");
        assert_eq!(
            hk_cached.expand_key(b"probe"),
            hk_plain.expand_key(b"probe")
        );

        let derived: [u8; 48] = Hkdf::derive_with_key(&salt_key, b"ikm", b"info");
        let expected: [u8; 48] = Hkdf::derive(b"alpenhorn-onion-layer", b"ikm", b"info");
        assert_eq!(derived, expected);
    }

    #[test]
    fn expand_key_matches_expand_first_block() {
        let hk = Hkdf::extract(b"s", b"ikm");
        let mut expected = [0u8; 32];
        hk.expand(b"label", &mut expected);
        assert_eq!(hk.expand_key(b"label"), expected);
    }

    #[test]
    fn different_info_yields_different_keys() {
        let a: [u8; 32] = Hkdf::derive(b"s", b"shared secret", b"onion layer 1");
        let b: [u8; 32] = Hkdf::derive(b"s", b"shared secret", b"onion layer 2");
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "HKDF output too long")]
    fn expand_too_long_panics() {
        let hk = Hkdf::extract(b"", b"ikm");
        let mut okm = vec![0u8; 255 * 32 + 1];
        hk.expand(b"", &mut okm);
    }
}
