//! The ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! ChaCha20 is used (together with Poly1305) as the AEAD protecting onion
//! layers in the mixnet and the symmetric part of hybrid IBE encryption, and
//! also as the core of the deterministic CSPRNG in [`crate::rng`]. Validated
//! against the RFC 8439 test vectors.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes (IETF variant, 96-bit nonce).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// Lane count of the wide keystream path: four blocks in lockstep, so four
/// `u32` lanes fill one 128-bit vector register (SSE2/NEON).
const WIDE: usize = 4;

/// One state word across [`WIDE`] parallel blocks.
type Lanes = [u32; WIDE];

/// Lane-wise wrapping addition. (Spelled out element by element — this is
/// the shape LLVM's SLP vectorizer turns into single vector instructions.)
#[inline(always)]
fn ladd(a: Lanes, b: Lanes) -> Lanes {
    [
        a[0].wrapping_add(b[0]),
        a[1].wrapping_add(b[1]),
        a[2].wrapping_add(b[2]),
        a[3].wrapping_add(b[3]),
    ]
}

/// Lane-wise `(a ^ b).rotate_left(N)`.
#[inline(always)]
fn lxor_rot<const N: u32>(a: Lanes, b: Lanes) -> Lanes {
    [
        (a[0] ^ b[0]).rotate_left(N),
        (a[1] ^ b[1]).rotate_left(N),
        (a[2] ^ b[2]).rotate_left(N),
        (a[3] ^ b[3]).rotate_left(N),
    ]
}

/// The ChaCha20 stream cipher keyed with a 256-bit key and 96-bit nonce.
///
/// # Examples
///
/// ```
/// use alpenhorn_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut buf = *b"attack at dawn";
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_ne!(&buf, b"attack at dawn");
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_eq!(&buf, b"attack at dawn");
/// ```
#[derive(Clone)]
pub struct ChaCha20 {
    /// The 16-word initial state (constants, key, counter, nonce).
    state: [u32; 16],
}

impl ChaCha20 {
    /// Creates a cipher instance with the given key, nonce, and initial block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] =
                u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 { state }
    }

    /// The 16-word internal state (constants, key, counter, nonce). Used by
    /// [`crate::rng::ChaChaRng`] to persist generator positions.
    pub fn state_words(&self) -> [u32; 16] {
        self.state
    }

    /// Rebuilds a cipher from exported [`ChaCha20::state_words`].
    pub fn from_state_words(state: [u32; 16]) -> Self {
        ChaCha20 { state }
    }

    /// The ChaCha20 quarter round on four state words.
    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Runs the 20 ChaCha rounds on a copy of `state` and adds the input
    /// state back in, returning the keystream block as 16 words.
    #[inline]
    fn permute(state: &[u32; 16]) -> [u32; 16] {
        let mut working = *state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(state.iter()) {
            *w = w.wrapping_add(*s);
        }
        working
    }

    /// The keystream block for the current counter value, as 16 words.
    #[inline]
    fn block_words(&self) -> [u32; 16] {
        Self::permute(&self.state)
    }

    /// Produces the 64-byte keystream block for the current counter value.
    pub fn block(&self) -> [u8; BLOCK_LEN] {
        let words = self.block_words();
        let mut out = [0u8; BLOCK_LEN];
        for (chunk, word) in out.chunks_exact_mut(4).zip(words.iter()) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Advances the internal block counter by one.
    pub fn advance(&mut self) {
        self.state[12] = self.state[12].wrapping_add(1);
    }

    /// XORs one keystream block into a full 64-byte chunk, eight `u64` words
    /// at a time.
    #[inline]
    fn xor_block_words(chunk: &mut [u8], words: &[u32; 16]) {
        debug_assert_eq!(chunk.len(), BLOCK_LEN);
        for (pair, bytes) in words.chunks_exact(2).zip(chunk.chunks_exact_mut(8)) {
            let ks = pair[0] as u64 | ((pair[1] as u64) << 32);
            let data = u64::from_le_bytes(bytes.try_into().expect("8-byte chunk"));
            bytes.copy_from_slice(&(data ^ ks).to_le_bytes());
        }
    }

    /// Runs the ChaCha rounds on [`WIDE`] blocks in lockstep.
    ///
    /// Each of the 16 state words is held as a `[u32; WIDE]` vector of
    /// lanes, and every quarter-round step is a whole-vector add/xor/rotate
    /// ([`ladd`]/[`lxor_rot`]) — the shape LLVM auto-vectorizes into 128-bit
    /// SIMD operations on SSE2/NEON. Lane `l` computes the block for counter
    /// `state[12] + l`.
    #[inline]
    fn permute_wide(state: &[u32; 16]) -> [Lanes; 16] {
        let mut w: [Lanes; 16] = core::array::from_fn(|i| [state[i]; WIDE]);
        for (lane, counter) in w[12].iter_mut().enumerate() {
            *counter = counter.wrapping_add(lane as u32);
        }
        let initial = w;

        // The quarter round on four rows of lanes.
        #[inline(always)]
        fn quarter(a: &mut Lanes, b: &mut Lanes, c: &mut Lanes, d: &mut Lanes) {
            *a = ladd(*a, *b);
            *d = lxor_rot::<16>(*d, *a);
            *c = ladd(*c, *d);
            *b = lxor_rot::<12>(*b, *c);
            *a = ladd(*a, *b);
            *d = lxor_rot::<8>(*d, *a);
            *c = ladd(*c, *d);
            *b = lxor_rot::<7>(*b, *c);
        }

        macro_rules! qr {
            ($a:literal, $b:literal, $c:literal, $d:literal) => {{
                // Split borrows: rows are distinct, take them out and put
                // them back so `quarter` sees four independent vectors.
                let (mut a, mut b, mut c, mut d) = (w[$a], w[$b], w[$c], w[$d]);
                quarter(&mut a, &mut b, &mut c, &mut d);
                w[$a] = a;
                w[$b] = b;
                w[$c] = c;
                w[$d] = d;
            }};
        }

        for _ in 0..10 {
            // Column rounds.
            qr!(0, 4, 8, 12);
            qr!(1, 5, 9, 13);
            qr!(2, 6, 10, 14);
            qr!(3, 7, 11, 15);
            // Diagonal rounds.
            qr!(0, 5, 10, 15);
            qr!(1, 6, 11, 12);
            qr!(2, 7, 8, 13);
            qr!(3, 4, 9, 14);
        }

        for (row, init) in w.iter_mut().zip(initial.iter()) {
            *row = ladd(*row, *init);
        }
        w
    }

    /// XORs the keystream into `data` in place, starting at the current counter.
    ///
    /// The hot path computes [`WIDE`] blocks per loop iteration in
    /// SIMD-friendly lockstep ([`ChaCha20::permute_wide`]) and applies the
    /// keystream in `u64` words rather than byte by byte. The onion
    /// peel/wrap pipeline, the AEAD, the CSPRNG, and hybrid IBE all sit on
    /// top of this routine.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        let mut wide_chunks = data.chunks_exact_mut(WIDE * BLOCK_LEN);
        for wide in &mut wide_chunks {
            let w = Self::permute_wide(&self.state);
            for (lane, chunk) in wide.chunks_exact_mut(BLOCK_LEN).enumerate() {
                for (pair, bytes) in (0..16)
                    .step_by(2)
                    .map(|i| (w[i][lane] as u64) | ((w[i + 1][lane] as u64) << 32))
                    .zip(chunk.chunks_exact_mut(8))
                {
                    let data_word = u64::from_le_bytes(bytes.try_into().expect("8-byte chunk"));
                    bytes.copy_from_slice(&(data_word ^ pair).to_le_bytes());
                }
            }
            self.state[12] = self.state[12].wrapping_add(WIDE as u32);
        }

        let tail = wide_chunks.into_remainder();
        let mut tail_chunks = tail.chunks_exact_mut(BLOCK_LEN);
        for chunk in &mut tail_chunks {
            Self::xor_block_words(chunk, &self.block_words());
            self.advance();
        }

        let last = tail_chunks.into_remainder();
        if !last.is_empty() {
            let ks = self.block();
            for (b, k) in last.iter_mut().zip(ks.iter()) {
                *b ^= *k;
            }
            self.advance();
        }
    }

    /// Straightforward one-block-at-a-time, byte-wise keystream application.
    ///
    /// Kept as the reference the optimized [`ChaCha20::apply_keystream`] is
    /// tested against (the RFC 8439 vectors only cover two blocks, so the
    /// multi-block fast path and its tail handling need an independent
    /// oracle), and as the baseline for the keystream benchmarks.
    #[doc(hidden)]
    pub fn apply_keystream_reference(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= *k;
            }
            self.advance();
        }
    }
}

/// One-shot encryption/decryption: XORs the ChaCha20 keystream into `data`.
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    ChaCha20::new(key, nonce, counter).apply_keystream(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 8439 §2.3.2: block function test vector.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block();
        assert_eq!(
            hex::encode(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2: encryption test vector.
    #[test]
    fn rfc8439_encryption() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut buf = plaintext.to_vec();
        xor_stream(&key, &nonce, 1, &mut buf);
        assert_eq!(
            hex::encode(&buf),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
        );
        // Decrypting restores the plaintext.
        xor_stream(&key, &nonce, 1, &mut buf);
        assert_eq!(&buf, plaintext);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Applying the keystream to 100 bytes at once must equal applying it
        // block by block with manual counter management.
        let mut a = vec![0u8; 100];
        xor_stream(&key, &nonce, 0, &mut a);

        let mut b = vec![0u8; 100];
        let c0 = ChaCha20::new(&key, &nonce, 0).block();
        let c1 = ChaCha20::new(&key, &nonce, 1).block();
        b[..64].copy_from_slice(&c0);
        b[64..].copy_from_slice(&c1[..36]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_nonces_produce_different_streams() {
        let key = [3u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_stream(&key, &[0u8; 12], 0, &mut a);
        xor_stream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut empty: [u8; 0] = [];
        xor_stream(&[0u8; 32], &[0u8; 12], 0, &mut empty);
    }

    // RFC 8439-derived long-message test: the keystream over a message that
    // crosses the 4-block wide path's tail boundary must equal the reference
    // one-block-at-a-time stream (which is itself pinned by the §2.4.2 vector
    // above), for every alignment around the wide/tail split.
    #[test]
    fn long_message_crosses_wide_tail_boundary() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        // 4 blocks = 256 bytes is one full wide chunk; probe every length
        // from "one wide chunk minus a block" to "past two wide chunks", so
        // the tail takes every shape: empty, whole blocks, partial block.
        for len in (192..=540).chain([1024, 4096, 100_001]) {
            let mut fast: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            let mut reference = fast.clone();
            ChaCha20::new(&key, &nonce, 1).apply_keystream(&mut fast);
            ChaCha20::new(&key, &nonce, 1).apply_keystream_reference(&mut reference);
            assert_eq!(fast, reference, "len = {len}");
        }
    }

    #[test]
    fn wide_path_leaves_counter_identical_to_reference() {
        // After applying an awkward length, both implementations must stand
        // at the same counter so subsequent output agrees.
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        for len in [0usize, 63, 64, 255, 256, 257, 320, 500] {
            let mut a = ChaCha20::new(&key, &nonce, 7);
            let mut b = ChaCha20::new(&key, &nonce, 7);
            let mut buf_a = vec![0u8; len];
            let mut buf_b = vec![0u8; len];
            a.apply_keystream(&mut buf_a);
            b.apply_keystream_reference(&mut buf_b);
            let mut next_a = [0u8; 64];
            let mut next_b = [0u8; 64];
            a.apply_keystream(&mut next_a);
            b.apply_keystream_reference(&mut next_b);
            assert_eq!(next_a, next_b, "len = {len}");
        }
    }

    #[test]
    fn wide_path_handles_counter_wraparound() {
        let key = [5u8; 32];
        let nonce = [6u8; 12];
        let mut fast = vec![0xAAu8; 6 * BLOCK_LEN];
        let mut reference = fast.clone();
        ChaCha20::new(&key, &nonce, u32::MAX - 1).apply_keystream(&mut fast);
        ChaCha20::new(&key, &nonce, u32::MAX - 1).apply_keystream_reference(&mut reference);
        assert_eq!(fast, reference);
    }
}
