//! The ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! ChaCha20 is used (together with Poly1305) as the AEAD protecting onion
//! layers in the mixnet and the symmetric part of hybrid IBE encryption, and
//! also as the core of the deterministic CSPRNG in [`crate::rng`]. Validated
//! against the RFC 8439 test vectors.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;
/// ChaCha20 nonce length in bytes (IETF variant, 96-bit nonce).
pub const NONCE_LEN: usize = 12;
/// ChaCha20 block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha20 stream cipher keyed with a 256-bit key and 96-bit nonce.
///
/// # Examples
///
/// ```
/// use alpenhorn_crypto::chacha20::ChaCha20;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut buf = *b"attack at dawn";
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_ne!(&buf, b"attack at dawn");
/// ChaCha20::new(&key, &nonce, 0).apply_keystream(&mut buf);
/// assert_eq!(&buf, b"attack at dawn");
/// ```
#[derive(Clone)]
pub struct ChaCha20 {
    /// The 16-word initial state (constants, key, counter, nonce).
    state: [u32; 16],
}

impl ChaCha20 {
    /// Creates a cipher instance with the given key, nonce, and initial block counter.
    pub fn new(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32) -> Self {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                key[4 * i],
                key[4 * i + 1],
                key[4 * i + 2],
                key[4 * i + 3],
            ]);
        }
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] = u32::from_le_bytes([
                nonce[4 * i],
                nonce[4 * i + 1],
                nonce[4 * i + 2],
                nonce[4 * i + 3],
            ]);
        }
        ChaCha20 { state }
    }

    /// The ChaCha20 quarter round on four state words.
    #[inline]
    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    /// Produces the 64-byte keystream block for the current counter value.
    pub fn block(&self) -> [u8; BLOCK_LEN] {
        let mut working = self.state;
        for _ in 0..10 {
            // Column rounds.
            Self::quarter_round(&mut working, 0, 4, 8, 12);
            Self::quarter_round(&mut working, 1, 5, 9, 13);
            Self::quarter_round(&mut working, 2, 6, 10, 14);
            Self::quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            Self::quarter_round(&mut working, 0, 5, 10, 15);
            Self::quarter_round(&mut working, 1, 6, 11, 12);
            Self::quarter_round(&mut working, 2, 7, 8, 13);
            Self::quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(self.state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Advances the internal block counter by one.
    pub fn advance(&mut self) {
        self.state[12] = self.state[12].wrapping_add(1);
    }

    /// XORs the keystream into `data` in place, starting at the current counter.
    pub fn apply_keystream(&mut self, data: &mut [u8]) {
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = self.block();
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= *k;
            }
            self.advance();
        }
    }
}

/// One-shot encryption/decryption: XORs the ChaCha20 keystream into `data`.
pub fn xor_stream(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], counter: u32, data: &mut [u8]) {
    ChaCha20::new(key, nonce, counter).apply_keystream(data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 8439 §2.3.2: block function test vector.
    #[test]
    fn rfc8439_block_function() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let cipher = ChaCha20::new(&key, &nonce, 1);
        let block = cipher.block();
        assert_eq!(
            hex::encode(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    // RFC 8439 §2.4.2: encryption test vector.
    #[test]
    fn rfc8439_encryption() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let mut buf = plaintext.to_vec();
        xor_stream(&key, &nonce, 1, &mut buf);
        assert_eq!(
            hex::encode(&buf),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0bf91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d807ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab77937365af90bbf74a35be6b40b8eedf2785e42874d"
        );
        // Decrypting restores the plaintext.
        xor_stream(&key, &nonce, 1, &mut buf);
        assert_eq!(&buf, plaintext);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        // Applying the keystream to 100 bytes at once must equal applying it
        // block by block with manual counter management.
        let mut a = vec![0u8; 100];
        xor_stream(&key, &nonce, 0, &mut a);

        let mut b = vec![0u8; 100];
        let c0 = ChaCha20::new(&key, &nonce, 0).block();
        let c1 = ChaCha20::new(&key, &nonce, 1).block();
        b[..64].copy_from_slice(&c0);
        b[64..].copy_from_slice(&c1[..36]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_nonces_produce_different_streams() {
        let key = [3u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_stream(&key, &[0u8; 12], 0, &mut a);
        xor_stream(&key, &[1u8; 12], 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut empty: [u8; 0] = [];
        xor_stream(&[0u8; 32], &[0u8; 12], 0, &mut empty);
    }
}
