//! The Poly1305 one-time authenticator (RFC 8439), implemented from scratch.
//!
//! Poly1305 evaluates a polynomial over the prime field 2^130 - 5 in the
//! 32-byte one-time key `(r, s)`. The implementation below uses the standard
//! five 26-bit limb representation so that all products fit comfortably in
//! 64-bit integers. Validated against the RFC 8439 test vector and exercised
//! further through the AEAD test vectors in [`crate::aead`].

/// Poly1305 key length (r || s) in bytes.
pub const KEY_LEN: usize = 32;
/// Poly1305 tag length in bytes.
pub const TAG_LEN: usize = 16;

const MASK_26: u64 = 0x03ff_ffff;

/// Incremental Poly1305 authenticator.
///
/// A Poly1305 key must never be used to authenticate more than one message;
/// the AEAD construction derives a fresh key per nonce.
#[derive(Clone)]
pub struct Poly1305 {
    /// Clamped `r`, in five 26-bit limbs.
    r: [u64; 5],
    /// `s`, added at the end modulo 2^128.
    s: [u8; 16],
    /// Accumulator, in five 26-bit limbs (loosely reduced).
    h: [u64; 5],
    /// Buffered partial block.
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// Creates a new authenticator from a 32-byte one-time key.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let le32 = |b: &[u8]| -> u64 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64 };
        // Clamp r per RFC 8439 §2.5.1 and split into 26-bit limbs.
        let r = [
            le32(&key[0..4]) & 0x03ff_ffff,
            (le32(&key[3..7]) >> 2) & 0x03ff_ff03,
            (le32(&key[6..10]) >> 4) & 0x03ff_c0ff,
            (le32(&key[9..13]) >> 6) & 0x03f0_3fff,
            (le32(&key[12..16]) >> 8) & 0x000f_ffff,
        ];
        let mut s = [0u8; 16];
        s.copy_from_slice(&key[16..32]);
        Poly1305 {
            r,
            s,
            h: [0; 5],
            buf: [0u8; 16],
            buf_len: 0,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.process_block(&block, false);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let mut block = [0u8; 16];
            block.copy_from_slice(&data[..16]);
            self.process_block(&block, false);
            data = &data[16..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Adds one block (padded with the implicit high bit) and multiplies by `r`.
    fn process_block(&mut self, block: &[u8; 16], partial: bool) {
        let le32 = |b: &[u8]| -> u64 { u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as u64 };
        // The high bit 2^128 is set for full blocks; for the final partial
        // block the caller has already appended the 0x01 byte.
        let hibit: u64 = if partial { 0 } else { 1 << 24 };

        self.h[0] += le32(&block[0..4]) & MASK_26;
        self.h[1] += (le32(&block[3..7]) >> 2) & MASK_26;
        self.h[2] += (le32(&block[6..10]) >> 4) & MASK_26;
        self.h[3] += (le32(&block[9..13]) >> 6) & MASK_26;
        self.h[4] += (le32(&block[12..16]) >> 8) | hibit;

        let [r0, r1, r2, r3, r4] = self.r;
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);
        let [h0, h1, h2, h3, h4] = self.h;

        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry propagation keeps limbs below 2^27.
        let mut c;
        let mut d = [d0, d1, d2, d3, d4];
        c = d[0] >> 26;
        self.h[0] = d[0] & MASK_26;
        d[1] += c;
        c = d[1] >> 26;
        self.h[1] = d[1] & MASK_26;
        d[2] += c;
        c = d[2] >> 26;
        self.h[2] = d[2] & MASK_26;
        d[3] += c;
        c = d[3] >> 26;
        self.h[3] = d[3] & MASK_26;
        d[4] += c;
        c = d[4] >> 26;
        self.h[4] = d[4] & MASK_26;
        self.h[0] += c * 5;
        c = self.h[0] >> 26;
        self.h[0] &= MASK_26;
        self.h[1] += c;
    }

    /// Finishes and returns the 16-byte tag.
    pub fn finalize(mut self) -> [u8; TAG_LEN] {
        if self.buf_len > 0 {
            // Pad the final partial block with 0x01 then zeros.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.process_block(&block, true);
        }

        // Fully propagate carries so each limb is below 2^26.
        let mut h = self.h;
        let mut c = h[1] >> 26;
        h[1] &= MASK_26;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= MASK_26;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= MASK_26;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= MASK_26;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= MASK_26;
        h[1] += c;

        // If h >= 2^130 - 5, subtract the modulus once.
        let p = [0x03ff_fffbu64, MASK_26, MASK_26, MASK_26, MASK_26];
        let ge_p = h[4] == p[4] && h[3] == p[3] && h[2] == p[2] && h[1] == p[1] && h[0] >= p[0];
        if ge_p {
            h[0] -= p[0];
            h[1] = 0;
            h[2] = 0;
            h[3] = 0;
            h[4] = 0;
        }

        // Recombine into a 128-bit value (mod 2^128) and add s.
        let low: u128 = (h[0] as u128)
            | ((h[1] as u128) << 26)
            | ((h[2] as u128) << 52)
            | ((h[3] as u128) << 78)
            | ((h[4] as u128) << 104);
        let s = u128::from_le_bytes(self.s);
        let tag = low.wrapping_add(s);
        tag.to_le_bytes()
    }
}

/// One-shot Poly1305 tag of `data` under the one-time `key`.
pub fn poly1305(key: &[u8; KEY_LEN], data: &[u8]) -> [u8; TAG_LEN] {
    let mut p = Poly1305::new(key);
    p.update(data);
    p.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_tag() {
        let key: [u8; 32] =
            hex::decode("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .unwrap()
                .try_into()
                .unwrap();
        let msg = b"Cryptographic Forum Research Group";
        assert_eq!(
            hex::encode(&poly1305(&key, msg)),
            "a8061dc1305136c6c22b8baf0c0127a9"
        );
    }

    // RFC 8439 §2.8.2 has the Poly1305 key derived inside the AEAD; the AEAD
    // module tests cover that path. Here we add structural tests.
    #[test]
    fn empty_message() {
        let key = [0x42u8; 32];
        let tag = poly1305(&key, b"");
        // An all-zero r clamps to zero only for an all-zero key; with 0x42 the
        // tag must be exactly s for the empty message (no blocks processed).
        assert_eq!(tag, key[16..32]);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key: [u8; 32] = core::array::from_fn(|i| (i * 7 + 1) as u8);
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for chunk_size in [1usize, 3, 15, 16, 17, 100] {
            let mut p = Poly1305::new(&key);
            for chunk in data.chunks(chunk_size) {
                p.update(chunk);
            }
            assert_eq!(p.finalize(), poly1305(&key, &data), "chunk {chunk_size}");
        }
    }

    #[test]
    fn exact_block_boundary() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8 ^ 0xa5);
        for len in [16usize, 32, 48, 64] {
            let data = vec![0xabu8; len];
            let t1 = poly1305(&key, &data);
            let mut p = Poly1305::new(&key);
            p.update(&data[..len / 2]);
            p.update(&data[len / 2..]);
            assert_eq!(p.finalize(), t1);
        }
    }

    #[test]
    fn different_messages_different_tags() {
        let key = [9u8; 32];
        assert_ne!(
            poly1305(&key, b"message one"),
            poly1305(&key, b"message two")
        );
    }
}
