//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The implementation is a streaming Merkle–Damgård construction over
//! 64-byte blocks. Two compression functions live here:
//!
//! * [`compress_block`] — the hot path: fully unrolled message schedule and
//!   round function over a 16-word ring buffer, with the round constants
//!   folded into the schedule words. All operations are plain `u32` word ops,
//!   so the compiler keeps the working set in registers.
//! * the loop-based reference compression inside [`digest_reference`] — the
//!   seed implementation, kept verbatim as the test oracle (the same pattern
//!   as `ChaCha20::apply_keystream_reference`). The property tests check the
//!   two agree on arbitrary inputs and input splits.
//!
//! A [`Midstate`] captures the chaining value at a block boundary, letting
//! callers (HMAC in particular) precompute the cost of a fixed prefix once
//! and replay it for free on every subsequent message.
//!
//! Validated against the FIPS 180-4 and NIST CAVP test vectors in the unit
//! tests below.

/// Initial hash state (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Choice function: bitwise `e ? f : g` (three ops instead of four).
#[inline(always)]
fn ch(e: u32, f: u32, g: u32) -> u32 {
    g ^ (e & (f ^ g))
}

/// Majority function in the `(a & b) | (c & (a | b))` form.
#[inline(always)]
fn maj(a: u32, b: u32, c: u32) -> u32 {
    (a & b) | (c & (a | b))
}

/// Big sigma 0 (FIPS 180-4 §4.1.2, used on the `a` chain).
#[inline(always)]
fn bsig0(x: u32) -> u32 {
    x.rotate_right(2) ^ x.rotate_right(13) ^ x.rotate_right(22)
}

/// Big sigma 1 (used on the `e` chain).
#[inline(always)]
fn bsig1(x: u32) -> u32 {
    x.rotate_right(6) ^ x.rotate_right(11) ^ x.rotate_right(25)
}

/// Small sigma 0 (message schedule).
#[inline(always)]
fn ssig0(x: u32) -> u32 {
    x.rotate_right(7) ^ x.rotate_right(18) ^ (x >> 3)
}

/// Small sigma 1 (message schedule).
#[inline(always)]
fn ssig1(x: u32) -> u32 {
    x.rotate_right(17) ^ x.rotate_right(19) ^ (x >> 10)
}

/// The unrolled SHA-256 compression function over one 64-byte block.
///
/// The message schedule lives in a 16-word ring expanded in place, each word
/// immediately before the round that consumes it; the 64 rounds are fully
/// unrolled with the working variables rotated through the macro's argument
/// list instead of being shuffled through assignments.
#[inline(always)]
pub(crate) fn compress_block(state: &mut [u32; 8], block: &[u8]) {
    debug_assert_eq!(block.len(), 64);
    let mut w = [0u32; 16];
    for (wi, chunk) in w.iter_mut().zip(block.chunks_exact(4)) {
        *wi = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    // One round; the caller's argument order encodes the variable rotation.
    macro_rules! rnd {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr) => {{
            let t1 = $h
                .wrapping_add(bsig1($e))
                .wrapping_add(ch($e, $f, $g))
                .wrapping_add($kw);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(bsig0($a)).wrapping_add(maj($a, $b, $c));
        }};
    }

    // Expand one schedule word in place:
    // w[i] += ssig0(w[i+1]) + w[i+9] + ssig1(w[i+14])   (indices mod 16).
    macro_rules! sched {
        ($i:expr) => {{
            w[$i & 15] = w[$i & 15]
                .wrapping_add(ssig0(w[($i + 1) & 15]))
                .wrapping_add(w[($i + 9) & 15])
                .wrapping_add(ssig1(w[($i + 14) & 15]));
        }};
    }

    // Eight rounds (a full rotation of the working variables). For rounds
    // ≥ 16 the schedule word is expanded immediately before its round, so
    // the schedule's short dependency chain overlaps the round function's
    // longer one instead of serializing ahead of it.
    macro_rules! rnd8 {
        ($i:expr) => {{
            if $i >= 16 {
                sched!($i);
            }
            rnd!(a, b, c, d, e, f, g, h, K[$i].wrapping_add(w[$i & 15]));
            if $i >= 16 {
                sched!($i + 1);
            }
            rnd!(
                h,
                a,
                b,
                c,
                d,
                e,
                f,
                g,
                K[$i + 1].wrapping_add(w[($i + 1) & 15])
            );
            if $i >= 16 {
                sched!($i + 2);
            }
            rnd!(
                g,
                h,
                a,
                b,
                c,
                d,
                e,
                f,
                K[$i + 2].wrapping_add(w[($i + 2) & 15])
            );
            if $i >= 16 {
                sched!($i + 3);
            }
            rnd!(
                f,
                g,
                h,
                a,
                b,
                c,
                d,
                e,
                K[$i + 3].wrapping_add(w[($i + 3) & 15])
            );
            if $i >= 16 {
                sched!($i + 4);
            }
            rnd!(
                e,
                f,
                g,
                h,
                a,
                b,
                c,
                d,
                K[$i + 4].wrapping_add(w[($i + 4) & 15])
            );
            if $i >= 16 {
                sched!($i + 5);
            }
            rnd!(
                d,
                e,
                f,
                g,
                h,
                a,
                b,
                c,
                K[$i + 5].wrapping_add(w[($i + 5) & 15])
            );
            if $i >= 16 {
                sched!($i + 6);
            }
            rnd!(
                c,
                d,
                e,
                f,
                g,
                h,
                a,
                b,
                K[$i + 6].wrapping_add(w[($i + 6) & 15])
            );
            if $i >= 16 {
                sched!($i + 7);
            }
            rnd!(
                b,
                c,
                d,
                e,
                f,
                g,
                h,
                a,
                K[$i + 7].wrapping_add(w[($i + 7) & 15])
            );
        }};
    }

    rnd8!(0);
    rnd8!(8);
    rnd8!(16);
    rnd8!(24);
    rnd8!(32);
    rnd8!(40);
    rnd8!(48);
    rnd8!(56);

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// A SHA-256 chaining value captured at a 64-byte block boundary.
///
/// Replaying a midstate with [`Sha256::from_midstate`] costs nothing, so a
/// fixed prefix (HMAC's `key ^ ipad` / `key ^ opad` blocks, a hash-to-curve
/// domain tag) can be absorbed once and reused across many messages.
#[derive(Clone, Copy)]
pub struct Midstate {
    state: [u32; 8],
    /// Message bytes absorbed so far; always a multiple of 64.
    len: u64,
}

impl crate::zeroize::Zeroize for Midstate {
    fn zeroize(&mut self) {
        for word in self.state.iter_mut() {
            *word = core::hint::black_box(0);
        }
        self.len = 0;
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use alpenhorn_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let digest = h.finalize();
/// assert_eq!(digest.len(), 32);
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total number of message bytes processed so far.
    len: u64,
    /// Partially filled block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a new hasher with the standard initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Captures the chaining value.
    ///
    /// # Panics
    ///
    /// Panics unless the bytes absorbed so far are a whole number of 64-byte
    /// blocks (a midstate is a compression-function boundary, not an
    /// arbitrary stream position).
    pub fn midstate(&self) -> Midstate {
        assert_eq!(
            self.buf_len, 0,
            "midstate requires a 64-byte block boundary"
        );
        Midstate {
            state: self.state,
            len: self.len,
        }
    }

    /// Resumes hashing from a previously captured midstate.
    pub fn from_midstate(m: Midstate) -> Self {
        Sha256 {
            state: m.state,
            len: m.len,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        // Fill the pending block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_block(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        // Process full blocks straight from the input — no staging copy.
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            compress_block(&mut self.state, block);
        }
        let rest = chunks.remainder();
        // Stash the remainder.
        if !rest.is_empty() {
            self.buf[..rest.len()].copy_from_slice(rest);
            self.buf_len = rest.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.len.wrapping_mul(8);
        // Append the 0x80 terminator and zero padding, then the length.
        self.update_padding();
        let mut block = self.buf;
        block[56..64].copy_from_slice(&bit_len.to_be_bytes());
        compress_block(&mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Pads the pending buffer up to the final 56 bytes (length excluded).
    fn update_padding(&mut self) {
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        // Number of padding bytes so that buf_len + pad_len ≡ 56 (mod 64).
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        // Manual absorb that does not touch `self.len`.
        let mut data = &pad[..pad_len];
        while !data.is_empty() {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_block(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        debug_assert_eq!(self.buf_len, 56);
    }
}

/// One-shot SHA-256 of `data`.
pub fn digest(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// One-shot SHA-256 using the seed's loop-based compression function.
///
/// This is the test/bench oracle for the unrolled hot path: the message
/// schedule is fully materialized as 64 words and the round function runs as
/// a plain loop with the working-variable shuffle written out, exactly as the
/// seed implementation did. Keep it boring; its value is being obviously
/// faithful to FIPS 180-4.
pub fn digest_reference(data: &[u8]) -> [u8; 32] {
    fn compress_reference(state: &mut [u32; 8], block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }

    let mut state = H0;
    let mut chunks = data.chunks_exact(64);
    for block in &mut chunks {
        compress_reference(&mut state, block.try_into().expect("64-byte block"));
    }
    let rest = chunks.remainder();

    // Final one or two padded blocks.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut block = [0u8; 64];
    block[..rest.len()].copy_from_slice(rest);
    block[rest.len()] = 0x80;
    if rest.len() >= 56 {
        compress_reference(&mut state, &block);
        block = [0u8; 64];
    }
    block[56..64].copy_from_slice(&bit_len.to_be_bytes());
    compress_reference(&mut state, &block);

    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    fn hex_digest(data: &[u8]) -> String {
        hex::encode(&digest(data))
    }

    #[test]
    fn empty_string() {
        assert_eq!(
            hex_digest(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex_digest(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_message_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex::encode(&digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn fips_448_bit_message() {
        // 56 bytes: exactly the boundary where padding spills to a second block.
        let data = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn";
        assert_eq!(data.len(), 56);
        assert_eq!(
            hex_digest(data),
            "078c0dfc3278fd7759920f5cca94c6d55db2c694510f6e26a8fe5c5b50a4f417"
        );
    }

    #[test]
    fn one_full_block_of_zeros() {
        assert_eq!(
            hex_digest(&[0u8; 64]),
            "f5a5fd42d16a20302798ef6ed309979b43003d2320d9f0e8ea9831a92759fb4b"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 128, 5000, 9999, 10000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn update_byte_at_a_time() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update(&[*b]);
        }
        assert_eq!(
            hex::encode(&h.finalize()),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn unrolled_matches_reference_oracle() {
        // Lengths crossing every padding/block-boundary case, plus large.
        for len in [
            0usize, 1, 3, 31, 32, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128, 129, 1000, 16384,
        ] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 % 251) as u8).collect();
            assert_eq!(digest(&data), digest_reference(&data), "len {len}");
        }
        let data: Vec<u8> = (0u8..=255).cycle().take(16 * 1024).collect();
        assert_eq!(
            hex::encode(&digest(&data)),
            "a1f259d4365ed4320c377ce26f5c8c56dcdc9a89e7b641bfd8eabfbbeac86654"
        );
    }

    #[test]
    fn midstate_round_trips_at_block_boundary() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let mut h = Sha256::new();
        h.update(&data[..128]);
        let m = h.midstate();
        let mut resumed = Sha256::from_midstate(m);
        resumed.update(&data[128..]);
        assert_eq!(resumed.finalize(), digest(&data));
    }

    #[test]
    #[should_panic(expected = "block boundary")]
    fn midstate_off_boundary_panics() {
        let mut h = Sha256::new();
        h.update(b"short");
        let _ = h.midstate();
    }
}
