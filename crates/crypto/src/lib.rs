//! Symmetric cryptography substrate for the Alpenhorn reproduction.
//!
//! Alpenhorn's protocols need a small set of symmetric primitives:
//!
//! * SHA-256 and HMAC-SHA256 — the keyed hash families `H1`/`H2`/`H3` used by
//!   the keywheel (§5 of the paper), mailbox-ID hashing, and commitments.
//! * HKDF — key derivation for onion layers and hybrid IBE encryption.
//! * ChaCha20-Poly1305 — the AEAD used for onion layers in the mixnet and for
//!   the symmetric part of hybrid IBE encryption of friend requests.
//! * Constant-time comparison and secure erasure — forward secrecy requires
//!   that old keys are destroyed (§3.3, §4.4).
//! * A deterministic, seedable CSPRNG — used by servers for shuffles and
//!   noise, and by the simulation harness for reproducible experiments.
//!
//! Everything in this crate is implemented from scratch and validated against
//! published test vectors (NIST FIPS 180-4, RFC 4231, RFC 5869, RFC 8439).
//! The implementations favour clarity over raw speed; measured throughputs
//! are reported by the benchmark harness and used by the evaluation's cost
//! model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod hex;
pub mod hkdf;
pub mod hmac;
pub mod poly1305;
pub mod rng;
pub mod sha256;
pub mod zeroize;

pub use aead::{open, seal, AeadError, KEY_LEN as AEAD_KEY_LEN, NONCE_LEN, TAG_LEN};
pub use chacha20::ChaCha20;
pub use ct::ct_eq;
pub use hkdf::Hkdf;
pub use hmac::{HmacKey, HmacSha256};
pub use rng::ChaChaRng;
pub use sha256::{Midstate, Sha256};
pub use zeroize::{SecretBytes, Zeroize};

/// Output length of SHA-256 (and HMAC-SHA256) in bytes.
pub const HASH_LEN: usize = 32;

/// Convenience helper: one-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; HASH_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Convenience helper: one-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; HASH_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}
