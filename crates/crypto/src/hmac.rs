//! HMAC-SHA256 (RFC 2104), implemented from scratch on top of [`crate::sha256`].
//!
//! The Alpenhorn keywheel (§5 of the paper) is defined in terms of a keyed
//! family of cryptographic hash functions "such as HMAC-SHA256"; this module
//! is that family. It is validated against the RFC 4231 test vectors.
//!
//! Keying an HMAC costs two SHA-256 compressions (the `key ^ ipad` and
//! `key ^ opad` blocks). [`HmacKey`] pays that cost once and captures the two
//! chaining values as [`Midstate`]s, so every subsequent MAC under the same
//! key costs only the message and finalization compressions — two instead of
//! four for short messages, which is what the keywheel ratchet, HKDF-Expand,
//! and the mixnet's per-mailbox noise streams all compute in their hot loops.

use crate::sha256::{Midstate, Sha256};

/// HMAC block size for SHA-256.
const BLOCK_LEN: usize = 64;

/// A reusable HMAC-SHA256 key: the ipad/opad midstates, precomputed.
///
/// # Examples
///
/// ```
/// use alpenhorn_crypto::hmac::{hmac, HmacKey};
///
/// let key = HmacKey::new(b"key");
/// assert_eq!(key.mac(b"message"), hmac(b"key", b"message"));
/// ```
#[derive(Clone, Copy)]
pub struct HmacKey {
    /// State after absorbing `key ^ ipad`.
    inner: Midstate,
    /// State after absorbing `key ^ opad`.
    outer: Midstate,
}

impl HmacKey {
    /// Precomputes the ipad/opad states for `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256(key);
            block_key[..digest.len()].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0x36u8; BLOCK_LEN];
        let mut opad = [0x5cu8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] ^= block_key[i];
            opad[i] ^= block_key[i];
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey {
            inner: inner.midstate(),
            outer: outer.midstate(),
        }
    }

    /// Starts an incremental MAC under this key (no per-message keying cost).
    pub fn mac_stream(&self) -> HmacSha256 {
        HmacSha256 {
            inner: Sha256::from_midstate(self.inner),
            outer: self.outer,
        }
    }

    /// One-shot MAC of `data` under this key.
    pub fn mac(&self, data: &[u8]) -> [u8; 32] {
        let mut mac = self.mac_stream();
        mac.update(data);
        mac.finalize()
    }

    /// Verifies `tag` against the MAC of `data` in constant time.
    pub fn verify(&self, data: &[u8], tag: &[u8]) -> bool {
        crate::ct::ct_eq(&self.mac(data), tag)
    }
}

impl crate::zeroize::Zeroize for HmacKey {
    fn zeroize(&mut self) {
        self.inner.zeroize();
        self.outer.zeroize();
    }
}

/// Incremental HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use alpenhorn_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 32);
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Midstate keyed with `key ^ opad`, expanded at finalization.
    outer: Midstate,
}

impl HmacSha256 {
    /// Creates a new MAC instance keyed with `key` (any length).
    ///
    /// For repeated MACs under one key, build an [`HmacKey`] once and use
    /// [`HmacKey::mac_stream`] instead; it skips the two keying compressions.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).mac_stream()
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the MAC computation and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::from_midstate(self.outer);
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Verifies `tag` against the MAC of the absorbed data in constant time.
    pub fn verify(self, tag: &[u8]) -> bool {
        let expected = self.finalize();
        crate::ct::ct_eq(&expected, tag)
    }
}

/// One-shot HMAC-SHA256 of `data` under `key`.
pub fn hmac(key: &[u8], data: &[u8]) -> [u8; 32] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // Test vectors from RFC 4231.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hex::encode(&hmac(&key, data)),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            hex::encode(&hmac(key, data)),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hex::encode(&hmac(&key, &data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1u8..=25).collect();
        let data = [0xcdu8; 50];
        assert_eq!(
            hex::encode(&hmac(&key, &data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hex::encode(&hmac(&key, data)),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hex::encode(&hmac(&key, data)),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let key = b"alpenhorn keywheel key";
        let data = b"round 25 dial token intent 3";
        let mut mac = HmacSha256::new(key);
        for chunk in data.chunks(3) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), hmac(key, data));
    }

    #[test]
    fn cached_key_matches_fresh_keying() {
        for key_len in [0usize, 1, 32, 63, 64, 65, 131] {
            let key: Vec<u8> = (0..key_len).map(|i| i as u8).collect();
            let cached = HmacKey::new(&key);
            for data_len in [0usize, 1, 31, 64, 200] {
                let data: Vec<u8> = (0..data_len).map(|i| (i * 7) as u8).collect();
                assert_eq!(
                    cached.mac(&data),
                    hmac(&key, &data),
                    "key {key_len} data {data_len}"
                );
            }
        }
    }

    #[test]
    fn cached_key_is_reusable() {
        let key = HmacKey::new(b"reused key");
        let a1 = key.mac(b"message a");
        let b1 = key.mac(b"message b");
        let a2 = key.mac(b"message a");
        assert_eq!(a1, a2);
        assert_ne!(a1, b1);
        assert!(key.verify(b"message a", &a1));
        assert!(!key.verify(b"message a", &b1));
    }

    #[test]
    fn verify_accepts_correct_and_rejects_wrong_tag() {
        let key = b"k";
        let data = b"d";
        let tag = hmac(key, data);
        let mut mac = HmacSha256::new(key);
        mac.update(data);
        assert!(mac.verify(&tag));

        let mut bad = tag;
        bad[0] ^= 1;
        let mut mac = HmacSha256::new(key);
        mac.update(data);
        assert!(!mac.verify(&bad));
    }
}
