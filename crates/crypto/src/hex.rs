//! Minimal hexadecimal encoding/decoding used for test vectors, fingerprints,
//! and human-readable key displays (the paper's API shows keys to users as
//! strings such as `"e27scvh08m..."`).

/// Encodes bytes as a lowercase hexadecimal string.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble in range"));
        out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble in range"));
    }
    out
}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// The input length is odd.
    OddLength,
    /// The input contains a non-hexadecimal character at this byte offset.
    InvalidCharacter(usize),
}

impl core::fmt::Display for HexError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HexError::OddLength => write!(f, "hex string has odd length"),
            HexError::InvalidCharacter(i) => write!(f, "invalid hex character at offset {i}"),
        }
    }
}

impl std::error::Error for HexError {}

/// Decodes a hexadecimal string (upper or lower case) into bytes.
pub fn decode(s: &str) -> Result<Vec<u8>, HexError> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let nibble = |c: u8, i: usize| -> Result<u8, HexError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(HexError::InvalidCharacter(i)),
        }
    };
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for i in (0..bytes.len()).step_by(2) {
        out.push((nibble(bytes[i], i)? << 4) | nibble(bytes[i + 1], i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn encode_known() {
        assert_eq!(encode(&[0x00, 0xff, 0x10]), "00ff10");
        assert_eq!(encode(&[]), "");
    }

    #[test]
    fn decode_upper_and_lower() {
        assert_eq!(decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn decode_errors() {
        assert_eq!(decode("abc"), Err(HexError::OddLength));
        assert_eq!(decode("zz"), Err(HexError::InvalidCharacter(0)));
        assert_eq!(decode("aaqq"), Err(HexError::InvalidCharacter(2)));
    }
}
