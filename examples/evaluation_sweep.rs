//! Regenerates the paper's entire evaluation section (§8) in one run,
//! printing Markdown tables suitable for EXPERIMENTS.md.
//!
//! Run with `cargo run --release --example evaluation_sweep`.
//! (Use `--release`: the calibration times real pairing operations.)

use alpenhorn_mixnet::NoiseConfig;
use alpenhorn_sim::costmodel::MeasuredCosts;
use alpenhorn_sim::experiments::crypto_sensitivity::request_size_table;
use alpenhorn_sim::experiments::{
    client_cpu_table, crypto_sensitivity_table, figure_10, figure_6, figure_7, figure_8, figure_9,
};
use alpenhorn_sim::harness::SmallDeployment;
use alpenhorn_sim::{CostModel, Table, Workload};

// The paper-reference model is available for side-by-side columns inside the
// figure tables themselves (Figures 8 and 9 include it automatically).

fn main() {
    println!("# Alpenhorn evaluation sweep\n");
    println!("Calibrating per-operation costs on this machine (this takes a moment)...\n");
    let measured = MeasuredCosts::measure(64);
    let model = CostModel::new(measured);

    println!("## Calibrated per-operation costs\n");
    let mut calib = Table::new(
        "Measured per-operation costs",
        &["operation", "this machine", "paper prototype"],
    );
    calib.push_row(vec![
        "IBE decrypt (ms)".into(),
        format!("{:.2}", measured.ibe_decrypt * 1e3),
        format!("{:.2}", MeasuredCosts::paper_reference().ibe_decrypt * 1e3),
    ]);
    calib.push_row(vec![
        "IBE encrypt (ms)".into(),
        format!("{:.2}", measured.ibe_encrypt * 1e3),
        format!("{:.2}", MeasuredCosts::paper_reference().ibe_encrypt * 1e3),
    ]);
    calib.push_row(vec![
        "onion peel (us)".into(),
        format!("{:.1}", measured.onion_peel * 1e6),
        format!("{:.1}", MeasuredCosts::paper_reference().onion_peel * 1e6),
    ]);
    calib.push_row(vec![
        "keywheel hash (us)".into(),
        format!("{:.2}", measured.keywheel_hash * 1e6),
        format!(
            "{:.2}",
            MeasuredCosts::paper_reference().keywheel_hash * 1e6
        ),
    ]);
    calib.push_row(vec![
        "PKG extract (ms)".into(),
        format!("{:.2}", measured.pkg_extract * 1e3),
        format!("{:.2}", MeasuredCosts::paper_reference().pkg_extract * 1e3),
    ]);
    println!("{}", calib.render_markdown());

    println!("{}", figure_6(&model, 3).render_markdown());
    println!("{}", figure_7(&model, 3).render_markdown());
    println!("{}", figure_8(&model).render_markdown());
    println!("{}", figure_9(&model).render_markdown());
    println!("{}", figure_10(&model).render_markdown());
    println!("{}", client_cpu_table(&measured).render_markdown());
    println!("{}", request_size_table().render_markdown());
    println!("{}", crypto_sensitivity_table(&measured).render_markdown());

    // Differential-privacy parameter check (§8.1).
    let mut dp = Table::new(
        "Section 8.1: differential-privacy accounting",
        &[
            "protocol",
            "mu",
            "b",
            "actions at (eps=ln2, delta=1e-4)",
            "paper",
        ],
    );
    let add = NoiseConfig::paper_add_friend();
    dp.push_row(vec![
        "add-friend".into(),
        format!("{}", add.mu),
        format!("{}", add.b),
        add.dp()
            .max_actions(core::f64::consts::LN_2, 1e-4)
            .to_string(),
        "900".into(),
    ]);
    let dial = NoiseConfig::paper_dialing();
    dp.push_row(vec![
        "dialing".into(),
        format!("{}", dial.mu),
        format!("{}", dial.b),
        dial.dp()
            .max_actions(core::f64::consts::LN_2, 1e-4)
            .to_string(),
        "26000".into(),
    ]);
    println!("{}", dp.render_markdown());

    // Zipf headline number (§8.4).
    println!(
        "Top-10 share of requests at s=2, 1M users: **{:.1}%** (paper: 94.2%)\n",
        Workload::skewed(1_000_000, 2.0).top_k_share(10) * 100.0
    );

    // Scaled-down end-to-end ground truth.
    println!("## Scaled-down end-to-end runs (real clients, in-process cluster)\n");
    let mut ete = Table::new(
        "End-to-end rounds",
        &[
            "clients",
            "add-friend server time (ms)",
            "avg mailbox scan (ms)",
            "dialing server time (ms)",
        ],
    );
    for clients in [8usize, 32] {
        let mut deployment = SmallDeployment::new(clients, 99);
        for i in (0..clients).step_by(2) {
            let target = deployment.identity((i + 1) % clients);
            deployment.clients[i].add_friend(target, None);
        }
        let (add_result, _) = deployment.run_add_friend_round();
        let (dial_result, _) = deployment.run_dialing_round();
        ete.push_row(vec![
            clients.to_string(),
            format!("{:.1}", add_result.server_time.as_secs_f64() * 1e3),
            format!("{:.1}", add_result.client_scan_time.as_secs_f64() * 1e3),
            format!("{:.1}", dial_result.server_time.as_secs_f64() * 1e3),
        ]);
    }
    println!("{}", ete.render_markdown());
    println!("Sweep complete.");
}
