//! Quickstart: bootstrap a private conversation between two users who only
//! know each other's email address.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example stands up a complete in-process Alpenhorn deployment (3 PKGs +
//! a 3-server mixnet + entry server + CDN) behind the loopback transport,
//! registers Alice and Bob over the RPC API, runs the add-friend protocol,
//! and then the dialing protocol, printing the session key both sides derive.
//! Swap [`alpenhorn::LoopbackTransport`] for [`alpenhorn::TcpTransport`] and
//! the same client code talks to a networked `alpenhornd` daemon.

use alpenhorn::{Client, ClientConfig, ClientEvent, Identity, LoopbackTransport, Round};
use alpenhorn_coordinator::{Cluster, ClusterConfig};

fn main() {
    // 1. Stand up the servers. In a real deployment these run on separate
    //    machines operated by independent parties; only one needs to be
    //    honest. The loopback transport speaks the same RPC API a remote
    //    `alpenhornd` daemon serves over TCP.
    let mut net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(7)));
    let (num_pkgs, pkg_keys) = net.with_cluster(|c| (c.num_pkgs(), c.pkg_verifying_keys()));
    println!("cluster: {num_pkgs} PKGs, 3 mixnet servers");

    // 2. Register two users (the paper's `Register(email)`).
    let mut alice = Client::new(
        Identity::new("alice@example.com").unwrap(),
        pkg_keys.clone(),
        ClientConfig::default(),
        [1u8; 32],
    );
    let mut bob = Client::new(
        Identity::new("bob@gmail.com").unwrap(),
        pkg_keys,
        ClientConfig::default(),
        [2u8; 32],
    );
    alice.register(&mut net).expect("alice registers");
    bob.register(&mut net).expect("bob registers");
    println!("registered {} and {}", alice.identity(), bob.identity());

    // 3. Alice adds Bob as a friend knowing only his email address
    //    (the paper's `AddFriend("bob@gmail.com", nil)`).
    alice.add_friend(bob.identity().clone(), None);

    // 4. Run two add-friend rounds: Alice's request, then Bob's confirmation.
    let mut confirmed_round = Round(0);
    for round in [Round(1), Round(2)] {
        net.with_cluster(|c| c.begin_add_friend_round(round, 2))
            .unwrap();
        alice.participate_add_friend(&mut net).unwrap();
        bob.participate_add_friend(&mut net).unwrap();
        net.with_cluster(|c| c.close_add_friend_round(round))
            .unwrap();
        for (name, client) in [("alice", &mut alice), ("bob", &mut bob)] {
            for event in client.process_add_friend_mailbox(&mut net).unwrap() {
                println!("  [{name}] {event:?}");
                if let ClientEvent::FriendConfirmed { dialing_round, .. } = event {
                    confirmed_round = dialing_round;
                }
            }
        }
    }
    println!("friendship confirmed; keywheel starts at {confirmed_round}");

    // 5. Alice calls Bob with intent 0 (the paper's `Call("bob@gmail.com", 0)`).
    alice.call(bob.identity().clone(), 0).unwrap();

    // 6. Run dialing rounds until the keywheel start round; every client sends
    //    exactly one (possibly cover) request per round.
    let mut alice_key = None;
    let mut bob_key = None;
    for r in 1..=confirmed_round.as_u64() {
        let round = Round(r);
        net.with_cluster(|c| c.begin_dialing_round(round, 2))
            .unwrap();
        if let Some(ClientEvent::OutgoingCallPlaced { session_key, .. }) =
            alice.participate_dialing(&mut net).unwrap()
        {
            alice_key = Some(session_key);
        }
        bob.participate_dialing(&mut net).unwrap();
        net.with_cluster(|c| c.close_dialing_round(round)).unwrap();
        alice.process_dialing_mailbox(&mut net).unwrap();
        for event in bob.process_dialing_mailbox(&mut net).unwrap() {
            if let ClientEvent::IncomingCall {
                from, session_key, ..
            } = event
            {
                println!("  [bob] incoming call from {from}");
                bob_key = Some(session_key);
            }
        }
    }

    let alice_key = alice_key.expect("alice placed her call");
    let bob_key = bob_key.expect("bob received the call");
    assert_eq!(alice_key, bob_key, "both sides derive the same session key");
    println!(
        "shared session key: {}...",
        alpenhorn_crypto::hex::encode(&alice_key.as_bytes()[..8])
    );
    println!("quickstart complete: hand this key to your messaging protocol");
}
