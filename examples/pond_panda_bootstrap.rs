//! Bootstrapping Pond's PANDA with Alpenhorn (§8.5 of the paper).
//!
//! Run with `cargo run --example pond_panda_bootstrap`.
//!
//! Pond establishes relationships with PANDA, which assumes the two users
//! already share a secret and provides a GUI to type it in. The paper built a
//! standalone command-line Alpenhorn client that lets two users friend and
//! call each other and then *prints* the resulting shared secret, which the
//! users paste into PANDA — eliminating the out-of-band secret exchange.
//! This example is that standalone client, driven for two users in one
//! process over the loopback transport.

use alpenhorn::{Client, ClientConfig, ClientEvent, Identity, LoopbackTransport, Round};
use alpenhorn_coordinator::{Cluster, ClusterConfig};
use alpenhorn_crypto::hex;

fn main() {
    let mut net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(23)));
    let pkg_keys = net.with_cluster(|c| c.pkg_verifying_keys());
    let users = ["laurel@example.org", "hardy@example.org"];
    let mut clients: Vec<Client> = users
        .iter()
        .enumerate()
        .map(|(i, email)| {
            let mut c = Client::new(
                Identity::new(email).unwrap(),
                pkg_keys.clone(),
                ClientConfig::default(),
                [40 + i as u8; 32],
            );
            c.register(&mut net).unwrap();
            println!("$ alpenhorn register {email}   # confirmation email round-trip done");
            c
        })
        .collect();

    println!("$ alpenhorn addfriend hardy@example.org");
    let (initiator, rest) = clients.split_first_mut().unwrap();
    initiator.add_friend(rest[0].identity().clone(), None);

    let mut keywheel_start = Round(0);
    for r in 1..=2u64 {
        let round = Round(r);
        let count = clients.len();
        net.with_cluster(|c| c.begin_add_friend_round(round, count))
            .unwrap();
        for c in clients.iter_mut() {
            c.participate_add_friend(&mut net).unwrap();
        }
        net.with_cluster(|c| c.close_add_friend_round(round))
            .unwrap();
        for c in clients.iter_mut() {
            for e in c.process_add_friend_mailbox(&mut net).unwrap() {
                if let ClientEvent::FriendConfirmed { dialing_round, .. } = e {
                    keywheel_start = dialing_round;
                }
            }
        }
    }

    println!("$ alpenhorn call hardy@example.org --intent 0");
    clients[0]
        .call(Identity::new("hardy@example.org").unwrap(), 0)
        .unwrap();

    let mut secrets = Vec::new();
    for r in 1..=keywheel_start.as_u64() {
        let round = Round(r);
        let count = clients.len();
        net.with_cluster(|c| c.begin_dialing_round(round, count))
            .unwrap();
        for c in clients.iter_mut() {
            if let Some(ClientEvent::OutgoingCallPlaced { session_key, .. }) =
                c.participate_dialing(&mut net).unwrap()
            {
                secrets.push(("laurel (caller)", session_key));
            }
        }
        net.with_cluster(|c| c.close_dialing_round(round)).unwrap();
        for c in clients.iter_mut() {
            for e in c.process_dialing_mailbox(&mut net).unwrap() {
                if let ClientEvent::IncomingCall { session_key, .. } = e {
                    secrets.push(("hardy (callee)", session_key));
                }
            }
        }
    }

    assert_eq!(secrets.len(), 2, "both sides obtained the secret");
    assert_eq!(secrets[0].1, secrets[1].1, "secrets match");
    println!();
    println!("Paste this shared secret into Pond's PANDA dialog on both machines:");
    for (who, key) in &secrets {
        println!("  {who}: {}", hex::encode(key.as_bytes()));
    }
    println!();
    println!("No out-of-band secret exchange was needed; only the email addresses.");
}
