//! A miniature metadata-private messaging application: Alpenhorn bootstraps
//! the conversation, and a Vuvuzela-style dead-drop protocol carries it.
//!
//! Run with `cargo run --example messaging_app`.
//!
//! This mirrors §8.5 of the paper, where Alpenhorn replaced Vuvuzela's
//! original dialing protocol: `/addfriend` and `/call` commands drive the
//! Alpenhorn client, and the resulting session key seeds the conversation
//! layer with no out-of-band key exchange at all. The clients reach the
//! deployment only through the [`alpenhorn::Transport`] RPC API.

use alpenhorn::{Client, ClientConfig, ClientEvent, Identity, LoopbackTransport, Round};
use alpenhorn_coordinator::{Cluster, ClusterConfig};
use alpenhorn_vuvuzela::integration::{command_add_friend, command_call};
use alpenhorn_vuvuzela::{ConversationSession, DeadDropServer};

/// Runs one add-friend round for both clients, returning their events.
fn add_friend_round(
    net: &mut LoopbackTransport,
    round: Round,
    clients: &mut [&mut Client],
) -> Vec<Vec<ClientEvent>> {
    net.with_cluster(|c| c.begin_add_friend_round(round, clients.len()))
        .unwrap();
    for c in clients.iter_mut() {
        c.participate_add_friend(net).unwrap();
    }
    net.with_cluster(|c| c.close_add_friend_round(round))
        .unwrap();
    clients
        .iter_mut()
        .map(|c| c.process_add_friend_mailbox(net).unwrap())
        .collect()
}

/// Runs one dialing round for both clients, returning their events.
fn dialing_round(
    net: &mut LoopbackTransport,
    round: Round,
    clients: &mut [&mut Client],
) -> Vec<Vec<ClientEvent>> {
    net.with_cluster(|c| c.begin_dialing_round(round, clients.len()))
        .unwrap();
    let mut events: Vec<Vec<ClientEvent>> = clients
        .iter_mut()
        .map(|c| c.participate_dialing(net).unwrap().into_iter().collect())
        .collect();
    net.with_cluster(|c| c.close_dialing_round(round)).unwrap();
    for (c, ev) in clients.iter_mut().zip(events.iter_mut()) {
        ev.extend(c.process_dialing_mailbox(net).unwrap());
    }
    events
}

fn main() {
    let mut net = LoopbackTransport::new(Cluster::new(ClusterConfig::test(11)));
    let pkg_keys = net.with_cluster(|c| c.pkg_verifying_keys());
    let mut alice = Client::new(
        Identity::new("alice@example.com").unwrap(),
        pkg_keys.clone(),
        ClientConfig::default(),
        [10u8; 32],
    );
    let mut bob = Client::new(
        Identity::new("bob@gmail.com").unwrap(),
        pkg_keys,
        ClientConfig::default(),
        [11u8; 32],
    );
    alice.register(&mut net).unwrap();
    bob.register(&mut net).unwrap();

    // The chat UI's /addfriend command.
    println!("alice> /addfriend bob@gmail.com");
    command_add_friend(&mut alice, "bob@gmail.com").unwrap();

    let mut keywheel_start = Round(0);
    for r in 1..=2 {
        let events = add_friend_round(&mut net, Round(r), &mut [&mut alice, &mut bob]);
        for e in events.concat() {
            if let ClientEvent::FriendConfirmed { dialing_round, .. } = e {
                keywheel_start = dialing_round;
            }
        }
    }
    println!("system> alice and bob are now friends");

    // The chat UI's /call command, with intent 1 ("let's chat soon").
    println!("alice> /call bob@gmail.com");
    command_call(&mut alice, "bob@gmail.com", 1).unwrap();

    let mut alice_session = None;
    let mut bob_session = None;
    for r in 1..=keywheel_start.as_u64() {
        let events = dialing_round(&mut net, Round(r), &mut [&mut alice, &mut bob]);
        for e in &events[0] {
            if let Some(s) = ConversationSession::from_event(e) {
                alice_session = Some(s);
            }
        }
        for e in &events[1] {
            if let Some(s) = ConversationSession::from_event(e) {
                println!("bob> accepting call from {} (intent {})", s.peer, s.intent);
                bob_session = Some(s);
            }
        }
    }
    let mut alice_session = alice_session.expect("alice's call was placed");
    let mut bob_session = bob_session.expect("bob received the call");

    // Now the conversation proper: fixed-size messages through dead drops.
    let transcript = [
        ("alice", "hey bob, this line never touched a key server"),
        ("bob", "and nobody knows we're talking. nice."),
        ("alice", "same time tomorrow?"),
        ("bob", "it's a date"),
    ];
    for chunk in transcript.chunks(2) {
        let mut server = DeadDropServer::new();
        let alice_msg = chunk[0].1.as_bytes();
        let bob_msg = chunk.get(1).map(|(_, m)| m.as_bytes()).unwrap_or(b"(idle)");
        let round = alice_session.send(&mut server, alice_msg).unwrap();
        bob_session.send(&mut server, bob_msg).unwrap();
        let exchanged = server.exchange();
        let drop_id = alice_session.conversation.dead_drop(round);
        let pair = &exchanged[&drop_id];
        println!(
            "alice sees: {}",
            String::from_utf8_lossy(&alice_session.receive(round, &pair[0]).unwrap())
        );
        println!(
            "bob sees:   {}",
            String::from_utf8_lossy(&bob_session.receive(round, &pair[1]).unwrap())
        );
    }
    println!("conversation complete");
}
