pub use alpenhorn as client;
